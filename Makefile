PYTHON ?= python
PYTHONPATH := src

# Scratch directory for benchmark run output.  Recorded baselines live
# under benchmarks/BENCH_*.json; the per-run JSON the pytest-benchmark
# plugin writes is transient and must never land in the repo root.
BENCH_DIR ?= .bench

# `make serve` demo knobs.
RESULT ?= demo-study
PORT ?= 8080

# `make fuzz` knobs.
FUZZ_SEED ?= 0
FUZZ_ROUNDS ?= 25

.PHONY: test bench bench-all bench-check bench-stream bench-serve bench-qa \
	bench-scaling bench-columnar bench-campaign bench-campaign-scale \
	bench-mitigate bench-ingest fuzz fuzz-smoke serve clean

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# The end-to-end pipeline benchmark (collection + analysis over the
# 6-service subset) — the number the fast-path work is measured by.
bench:
	@mkdir -p $(BENCH_DIR)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/test_bench_pipeline.py --benchmark-only \
		--benchmark-json=$(BENCH_DIR)/BENCH_pipeline.json -q

# Streaming throughput (flows/sec through the bus + sharded analyzers).
bench-stream:
	@mkdir -p $(BENCH_DIR)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/test_bench_stream.py --benchmark-only \
		--benchmark-json=$(BENCH_DIR)/BENCH_stream.json -q

# Serving throughput + latency: closed-loop load against the live HTTP
# server (warm-cache >= 1,000 req/s acceptance bar, p50/p99 recorded),
# checked against the recorded baseline (first run records it).
bench-serve:
	@mkdir -p $(BENCH_DIR)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/test_bench_serve.py --benchmark-only \
		--benchmark-json=$(BENCH_DIR)/BENCH_serve.json -q
	$(PYTHON) benchmarks/check_regression.py $(BENCH_DIR)/BENCH_serve.json \
		--baseline benchmarks/BENCH_serve.json

# Executor scaling (serial/thread/process at 1-4 workers), binary-codec
# vs JSONL load, and cold-vs-warm cache speedup.  Runs without
# --benchmark-only so the direct acceptance asserts (codec faster than
# JSON, warm cache >= 5x) execute too; checked against the recorded
# baseline (first run records it).
bench-scaling:
	@mkdir -p $(BENCH_DIR)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/test_bench_scaling.py \
		--benchmark-json=$(BENCH_DIR)/BENCH_scaling.json -q
	$(PYTHON) benchmarks/check_regression.py $(BENCH_DIR)/BENCH_scaling.json \
		--baseline benchmarks/BENCH_scaling.json --tolerance 0.50

# Columnar aggregation engine vs the row-wise reference over a large
# synthetic study (480 cells, 240k leak events).  Runs without
# --benchmark-only so the direct acceptance assert executes too:
# columnar must be >= 5x (recorded number targets >= 10x) and
# byte-identical; checked against the recorded baseline (first run
# records it).
bench-columnar:
	@mkdir -p $(BENCH_DIR)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/test_bench_columnar.py \
		--benchmark-json=$(BENCH_DIR)/BENCH_columnar.json -q
	$(PYTHON) benchmarks/check_regression.py $(BENCH_DIR)/BENCH_columnar.json \
		--baseline benchmarks/BENCH_columnar.json --tolerance 0.50

# Campaign engine: simulation throughput (sessions/sec, serial vs the
# process pool) and shard-merge throughput over a 10k-user synthetic
# campaign.  Runs without --benchmark-only so the direct acceptance
# asserts execute too: byte-identity against the serial reference
# everywhere, and process >= 2x serial on multi-core hosts; checked
# against the recorded baseline (first run records it).
bench-campaign:
	@mkdir -p $(BENCH_DIR)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/test_bench_campaign.py \
		--benchmark-json=$(BENCH_DIR)/BENCH_campaign.json -q
	$(PYTHON) benchmarks/check_regression.py $(BENCH_DIR)/BENCH_campaign.json \
		--baseline benchmarks/BENCH_campaign.json --tolerance 0.50

# The million-user reduction bench: master- vs worker-side reduction
# over KIND_CAGG partials covering 1,000,000 users, users/sec and peak
# RSS recorded.  Runs without --benchmark-only so the direct acceptance
# asserts execute too: byte-identity between both reduce paths, and
# worker-reduce >= 2x master-reduce at 4 workers on multi-core hosts;
# checked against the recorded baseline (first run records it).
bench-campaign-scale:
	@mkdir -p $(BENCH_DIR)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/test_bench_campaign_scale.py \
		--benchmark-json=$(BENCH_DIR)/BENCH_campaign_scale.json -q
	$(PYTHON) benchmarks/check_regression.py $(BENCH_DIR)/BENCH_campaign_scale.json \
		--baseline benchmarks/BENCH_campaign_scale.json --tolerance 0.50

# Mitigation data plane: inline decision latency (p50/p99) and
# collection throughput with the policy on vs off.  Runs without
# --benchmark-only so the direct acceptance asserts execute too:
# decision p50 under budget, residual-leak invariant, and the hard
# < 5% off-overhead bar (min-of-rounds).
bench-mitigate:
	@mkdir -p $(BENCH_DIR)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/test_bench_mitigate.py \
		--benchmark-json=$(BENCH_DIR)/BENCH_mitigate.json -q
	$(PYTHON) benchmarks/check_regression.py $(BENCH_DIR)/BENCH_mitigate.json \
		--baseline benchmarks/BENCH_mitigate.json --tolerance 0.50

# Ingest under load: mixed read/upload traffic against the live server
# with a background analysis worker.  Runs without --benchmark-only so
# the direct acceptance assert executes too: read p50 under concurrent
# ingest must stay within 20% of the read-only baseline; checked
# against the recorded baseline (first run records it).
bench-ingest:
	@mkdir -p $(BENCH_DIR)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/test_bench_ingest.py \
		--benchmark-json=$(BENCH_DIR)/BENCH_ingest.json -q
	$(PYTHON) benchmarks/check_regression.py $(BENCH_DIR)/BENCH_ingest.json \
		--baseline benchmarks/BENCH_ingest.json --tolerance 0.50

# Fuzzing-harness throughput (scenario generation + oracle scenarios/sec).
bench-qa:
	@mkdir -p $(BENCH_DIR)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/test_bench_qa.py --benchmark-only \
		--benchmark-json=$(BENCH_DIR)/BENCH_qa.json -q
	$(PYTHON) benchmarks/check_regression.py $(BENCH_DIR)/BENCH_qa.json \
		--baseline benchmarks/BENCH_qa.json

# Differential fuzzing with fault injection.  Every seed collects one
# randomized world and requires batch == stream == serve byte-for-byte,
# under injected crashes, torn journal tails, and transport faults.
fuzz:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro fuzz \
		--seed $(FUZZ_SEED) --rounds $(FUZZ_ROUNDS) --faults

# The fixed 20-seed corpus CI runs on every push (faults on, < 2 min).
fuzz-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro fuzz --seed 0 --rounds 20 --faults

# Serve the recommender API over a demo study (collects the 3-service
# subset on first use; override RESULT= to serve your own results).
serve:
	@test -f $(RESULT)/manifest.json || \
		PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro collect \
			--services weather,grubhub,cnn --out $(RESULT)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro serve --result $(RESULT) --port $(PORT)

# Every benchmark, including the full 50-service study fixtures.
bench-all:
	@mkdir -p $(BENCH_DIR)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks --benchmark-only \
		--benchmark-json=$(BENCH_DIR)/BENCH_all.json -q

# Run the pipeline bench and fail on >20% mean regression against the
# recorded baseline (benchmarks/BENCH_baseline.json; first run records it).
bench-check: bench bench-scaling bench-columnar bench-campaign \
		bench-campaign-scale bench-mitigate bench-ingest
	$(PYTHON) benchmarks/check_regression.py $(BENCH_DIR)/BENCH_pipeline.json

clean:
	rm -rf $(BENCH_DIR)
	rm -f repro-fail-*.json
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
