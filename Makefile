PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench bench-all bench-check bench-stream clean

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# The end-to-end pipeline benchmark (collection + analysis over the
# 6-service subset) — the number the fast-path work is measured by.
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/test_bench_pipeline.py --benchmark-only \
		--benchmark-json=BENCH_pipeline.json -q

# Streaming throughput (flows/sec through the bus + sharded analyzers).
bench-stream:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/test_bench_stream.py --benchmark-only \
		--benchmark-json=BENCH_stream.json -q

# Every benchmark, including the full 50-service study fixtures.
bench-all:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks --benchmark-only \
		--benchmark-json=BENCH_all.json -q

# Run the pipeline bench and fail on >20% mean regression against the
# recorded baseline (benchmarks/BENCH_baseline.json; first run records it).
bench-check: bench
	$(PYTHON) benchmarks/check_regression.py BENCH_pipeline.json

clean:
	rm -f BENCH_pipeline.json BENCH_all.json BENCH_stream.json
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
