"""Setuptools shim.

`pip install -e .` needs the `wheel` package (PEP 660 editable wheels);
on fully offline machines without it, `python setup.py develop` performs
the equivalent legacy editable install using only setuptools.
"""

from setuptools import setup

setup()
