"""Flow-level records produced by traffic capture.

A :class:`Flow` models one TCP connection between the handset and a
server, as seen by the interception proxy (the reproduction's stand-in
for Meddle).  Each flow carries zero or more :class:`HttpTransaction`
records — the decrypted request/response pairs — plus byte and packet
accounting used by the paper's Figure 1b (flows) and Figure 1c (bytes).

These records are deliberately plain (dataclasses of strings, ints and
bytes) so they serialize losslessly to the JSONL trace format and can be
consumed by the PII detector without importing the HTTP client stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

# Rough per-packet envelope used to convert payload sizes into packet
# counts: TCP/IP headers plus typical TLS record overhead.
_MSS = 1400
_HEADER_OVERHEAD = 40


@dataclass
class TlsInfo:
    """TLS session metadata attached to an encrypted flow.

    ``pinned`` marks servers that certificate-pin (the proxy cannot
    decrypt these, mirroring the paper's exclusion of Facebook/Twitter);
    ``intercepted`` records whether the MITM succeeded.
    """

    sni: str
    version: str = "TLSv1.2"
    cipher: str = "ECDHE-RSA-AES128-GCM-SHA256"
    pinned: bool = False
    intercepted: bool = True

    def to_dict(self) -> dict:
        return {
            "sni": self.sni,
            "version": self.version,
            "cipher": self.cipher,
            "pinned": self.pinned,
            "intercepted": self.intercepted,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TlsInfo":
        return cls(
            sni=data["sni"],
            version=data.get("version", "TLSv1.2"),
            cipher=data.get("cipher", "ECDHE-RSA-AES128-GCM-SHA256"),
            pinned=bool(data.get("pinned", False)),
            intercepted=bool(data.get("intercepted", True)),
        )


@dataclass
class CapturedRequest:
    """An HTTP request as recorded by the proxy."""

    method: str
    url: str
    headers: list = field(default_factory=list)  # list[tuple[str, str]]
    body: bytes = b""

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Return the first header value matching ``name`` (case-insensitive)."""
        wanted = name.lower()
        for key, value in self.headers:
            if key.lower() == wanted:
                return value
        return default

    @property
    def size(self) -> int:
        """Approximate on-the-wire request size in bytes."""
        total = len(self.method) + len(self.url) + 12 + len(self.body)
        for k, v in self.headers:
            total += len(k) + len(v) + 4
        return total

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "url": self.url,
            "headers": [[k, v] for k, v in self.headers],
            "body": self.body.decode("latin-1"),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CapturedRequest":
        return cls(
            method=data["method"],
            url=data["url"],
            headers=[tuple(h) for h in data.get("headers", [])],
            body=data.get("body", "").encode("latin-1"),
        )


@dataclass
class CapturedResponse:
    """An HTTP response as recorded by the proxy."""

    status: int
    reason: str = ""
    headers: list = field(default_factory=list)
    body: bytes = b""

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Return the first header value matching ``name`` (case-insensitive)."""
        wanted = name.lower()
        for key, value in self.headers:
            if key.lower() == wanted:
                return value
        return default

    @property
    def size(self) -> int:
        """Approximate on-the-wire response size in bytes."""
        total = len(self.reason) + 15 + len(self.body)
        for k, v in self.headers:
            total += len(k) + len(v) + 4
        return total

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "reason": self.reason,
            "headers": [[k, v] for k, v in self.headers],
            "body": self.body.decode("latin-1"),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CapturedResponse":
        return cls(
            status=data["status"],
            reason=data.get("reason", ""),
            headers=[tuple(h) for h in data.get("headers", [])],
            body=data.get("body", "").encode("latin-1"),
        )


@dataclass
class HttpTransaction:
    """One request/response exchange inside a flow."""

    timestamp: float
    request: CapturedRequest
    response: Optional[CapturedResponse] = None

    @property
    def size(self) -> int:
        total = self.request.size
        if self.response is not None:
            total += self.response.size
        return total

    def to_dict(self) -> dict:
        return {
            "timestamp": self.timestamp,
            "request": self.request.to_dict(),
            "response": self.response.to_dict() if self.response else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HttpTransaction":
        response = data.get("response")
        return cls(
            timestamp=data["timestamp"],
            request=CapturedRequest.from_dict(data["request"]),
            response=CapturedResponse.from_dict(response) if response else None,
        )


@dataclass
class Flow:
    """One TCP connection observed by the proxy.

    ``tags`` carries provenance labels attached during capture and
    filtering — e.g. ``"background"`` for OS-service traffic, or the
    originating process name — which the experiment harness uses to
    discard non-foreground flows exactly as §3.2 of the paper does.
    """

    flow_id: int
    ts_start: float
    client_ip: str
    client_port: int
    server_ip: str
    server_port: int
    hostname: str
    scheme: str = "http"
    ts_end: float = 0.0
    tls: Optional[TlsInfo] = None
    transactions: list = field(default_factory=list)
    tags: set = field(default_factory=set)
    bytes_up: int = 0
    bytes_down: int = 0

    @property
    def encrypted(self) -> bool:
        return self.tls is not None

    @property
    def decrypted(self) -> bool:
        """True when transaction payloads are visible to the analysis."""
        return self.tls is None or self.tls.intercepted

    @property
    def total_bytes(self) -> int:
        return self.bytes_up + self.bytes_down

    @property
    def packets(self) -> int:
        """Estimated packet count from byte totals (for reporting only)."""
        payload = self.total_bytes
        if payload == 0:
            return 2  # bare handshake
        return max(2, (payload + _MSS - 1) // _MSS + 2)

    def add_transaction(
        self,
        txn: HttpTransaction,
        bytes_up: Optional[int] = None,
        bytes_down: Optional[int] = None,
    ) -> None:
        """Append a transaction and update byte accounting and timestamps.

        ``bytes_up``/``bytes_down`` override the sizes computed from the
        stored messages — the proxy passes true wire sizes here when it
        truncates large response bodies for storage.
        """
        self.transactions.append(txn)
        if bytes_up is None:
            bytes_up = txn.request.size + _HEADER_OVERHEAD
        if bytes_down is None:
            bytes_down = (txn.response.size + _HEADER_OVERHEAD) if txn.response else 0
        self.bytes_up += bytes_up
        self.bytes_down += bytes_down
        if txn.timestamp > self.ts_end:
            self.ts_end = txn.timestamp

    def account_opaque(self, bytes_up: int, bytes_down: int) -> None:
        """Record undecryptable (pinned-TLS) payload volume."""
        if bytes_up < 0 or bytes_down < 0:
            raise ValueError("byte counts cannot be negative")
        self.bytes_up += bytes_up
        self.bytes_down += bytes_down

    def iter_transactions(self) -> Iterator[HttpTransaction]:
        return iter(self.transactions)

    def to_dict(self) -> dict:
        return {
            "flow_id": self.flow_id,
            "ts_start": self.ts_start,
            "ts_end": self.ts_end,
            "client_ip": self.client_ip,
            "client_port": self.client_port,
            "server_ip": self.server_ip,
            "server_port": self.server_port,
            "hostname": self.hostname,
            "scheme": self.scheme,
            "tls": self.tls.to_dict() if self.tls else None,
            "transactions": [t.to_dict() for t in self.transactions],
            "tags": sorted(self.tags),
            "bytes_up": self.bytes_up,
            "bytes_down": self.bytes_down,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Flow":
        flow = cls(
            flow_id=data["flow_id"],
            ts_start=data["ts_start"],
            client_ip=data["client_ip"],
            client_port=data["client_port"],
            server_ip=data["server_ip"],
            server_port=data["server_port"],
            hostname=data["hostname"],
            scheme=data.get("scheme", "http"),
            ts_end=data.get("ts_end", 0.0),
            tls=TlsInfo.from_dict(data["tls"]) if data.get("tls") else None,
            tags=set(data.get("tags", [])),
        )
        for txn_data in data.get("transactions", []):
            flow.transactions.append(HttpTransaction.from_dict(txn_data))
        flow.bytes_up = data.get("bytes_up", 0)
        flow.bytes_down = data.get("bytes_down", 0)
        return flow
