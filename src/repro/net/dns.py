"""Deterministic DNS resolution for the simulated network.

Hostnames in the simulated world resolve to stable IPv4 addresses derived
from a keyed hash of the name, so that repeated runs (and separate
components) agree on addressing without global registration.  A resolver
instance additionally keeps a TTL cache and resolution counters, which
the experiment harness uses to account for lookup traffic.
"""

from __future__ import annotations

import hashlib

from .clock import SimClock
from .inet import int_to_ipv4, is_valid_ipv4

DEFAULT_TTL = 300.0


class DnsError(Exception):
    """Raised when a name cannot be resolved (e.g. NXDOMAIN overrides)."""


def stable_address(hostname: str, namespace: str = "repro") -> str:
    """Derive a deterministic public IPv4 address for ``hostname``.

    The mapping is a keyed SHA-256 hash truncated to 32 bits, nudged out
    of reserved ranges.  Subdomains of one registrable domain hash to
    different addresses, matching the multi-CDN reality of A&A networks.
    """
    digest = hashlib.sha256(f"{namespace}:{hostname.lower()}".encode()).digest()
    value = int.from_bytes(digest[:4], "big")
    first = value >> 24
    # Fold reserved / private first octets into a safe public range.
    if first in (0, 10, 127) or first >= 224 or first == 192 or first == 172:
        value = (value & 0x00FFFFFF) | (23 << 24)
    return int_to_ipv4(value)


class Resolver:
    """A caching stub resolver over the deterministic address space.

    Supports static overrides (pin a name to an address, or to ``None``
    for NXDOMAIN) so tests can model outages and split-horizon setups.
    """

    def __init__(self, clock: SimClock, ttl: float = DEFAULT_TTL) -> None:
        if ttl <= 0:
            raise ValueError(f"ttl must be positive: {ttl}")
        self._clock = clock
        self._ttl = ttl
        self._cache: dict[str, tuple[str, float]] = {}
        self._overrides: dict[str, str | None] = {}
        self.queries = 0
        self.cache_hits = 0

    def add_override(self, hostname: str, address: str | None) -> None:
        """Pin ``hostname`` to ``address``, or to NXDOMAIN when None."""
        if address is not None and not is_valid_ipv4(address):
            raise DnsError(f"override is not a valid IPv4 address: {address!r}")
        self._overrides[hostname.lower()] = address

    def resolve(self, hostname: str) -> str:
        """Resolve ``hostname``, consulting the TTL cache first."""
        if not hostname:
            raise DnsError("cannot resolve empty hostname")
        name = hostname.lower().rstrip(".")
        self.queries += 1
        cached = self._cache.get(name)
        if cached is not None:
            address, expires = cached
            if not self._clock.expired(expires):
                self.cache_hits += 1
                return address
            del self._cache[name]
        if name in self._overrides:
            override = self._overrides[name]
            if override is None:
                raise DnsError(f"NXDOMAIN: {hostname}")
            address = override
        else:
            address = stable_address(name)
        self._cache[name] = (address, self._clock.deadline(self._ttl))
        return address

    def flush(self) -> None:
        """Drop every cached entry (e.g. after an airplane-mode toggle)."""
        self._cache.clear()

    @property
    def cache_size(self) -> int:
        return len(self._cache)
