"""Compact binary encoding for flows, traces, and session records.

The JSONL trace format is convenient to eyeball but expensive to parse:
every flow line re-tokenizes strings, escapes bodies through latin-1,
and round-trips numbers through decimal text.  This codec is the fast
twin — length-prefixed, struct-packed, zero text escaping — used for:

- on-disk traces (:meth:`repro.net.trace.Trace.dump` and
  :meth:`repro.experiment.dataset.Dataset.save` write it by default;
  the JSON reader is kept for back-compat and both formats are
  auto-detected on load);
- worker task shipping for the process-pool execution engine
  (:mod:`repro.par`), where a session record must cross a process
  boundary cheaply;
- content addressing: :func:`record_content_hash` fingerprints a
  session for the persistent analysis cache (:mod:`repro.core.cache`).

Wire format.  All integers are little-endian.  Strings are
``u32 length + UTF-8 bytes``; byte strings are ``u32 length + raw``.
Files start with a versioned magic header (``RPRB`` + version byte +
kind byte) so a reader can reject foreign or future files outright;
bare blobs (IPC, hashing) omit the header.  Decoding is strict: every
read is bounds-checked and the buffer must be consumed exactly, so a
truncated or garbage-appended file fails loudly instead of yielding a
silently short trace.

The decoder is written as flat functions threading an integer offset
through ``struct.unpack_from`` — no per-field object or slice for
scalars.  That is what actually beats the C-accelerated ``json``
parser; a naive method-per-field reader does not.

Determinism: encoding any value twice yields identical bytes, and
``encode(decode(encode(x))) == encode(x)``.  Sets (flow tags) are
written sorted; dicts that carry semantic order (ground truth — the
matcher builds its scan plan in registration order) are written in
insertion order and decoded back into the same order.
"""

from __future__ import annotations

import hashlib
import struct
from pathlib import Path
from typing import Union

from ..ioutil import atomic_write_bytes
from .flow import CapturedRequest, CapturedResponse, Flow, HttpTransaction, TlsInfo
from .trace import SessionMeta, Trace

MAGIC = b"RPRB"
VERSION = 1

KIND_TRACE = 1
KIND_RECORD = 2
KIND_ABATCH = 3  # columnar analysis batch (repro.analysis.columnar)
KIND_BUNDLE = 4  # upload bundle: u32 record count + records back-to-back
KIND_CAGG = 5  # campaign aggregate partial (repro.campaign.engine)

HEADER_SIZE = len(MAGIC) + 2  # magic + version byte + kind byte

_U32 = struct.Struct("<I")
_I32 = struct.Struct("<i")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_FLOW_HEAD = struct.Struct("<qdd")  # flow_id, ts_start, ts_end
_FLOW_TAIL = struct.Struct("<qq")  # bytes_up, bytes_down


class CodecError(Exception):
    """Raised on malformed, truncated, or foreign binary data."""


# -- encoding -----------------------------------------------------------------
#
# Encoders append to a shared bytearray; `buf += small_bytes` is the
# fastest pure-Python append idiom.


def _put_str(buf: bytearray, value: str) -> None:
    data = value.encode("utf-8")
    buf += _U32.pack(len(data))
    buf += data


def _put_bytes(buf: bytearray, data: bytes) -> None:
    buf += _U32.pack(len(data))
    buf += data


def _put_headers(buf: bytearray, headers: list) -> None:
    buf += _U32.pack(len(headers))
    for name, value in headers:
        _put_str(buf, name)
        _put_str(buf, value)


def _put_transaction(buf: bytearray, txn: HttpTransaction) -> None:
    buf += _F64.pack(txn.timestamp)
    request = txn.request
    _put_str(buf, request.method)
    _put_str(buf, request.url)
    _put_headers(buf, request.headers)
    _put_bytes(buf, request.body)
    response = txn.response
    if response is None:
        buf += b"\x00"
    else:
        buf += b"\x01"
        buf += _I32.pack(response.status)
        _put_str(buf, response.reason)
        _put_headers(buf, response.headers)
        _put_bytes(buf, response.body)


def _put_flow(buf: bytearray, flow: Flow) -> None:
    try:
        buf += _FLOW_HEAD.pack(flow.flow_id, flow.ts_start, flow.ts_end)
        _put_str(buf, flow.client_ip)
        # u32, not u16: the simulated proxy hands out ephemeral ports
        # from an unwrapped counter, so large studies exceed 65535.
        buf += _U32.pack(flow.client_port)
        _put_str(buf, flow.server_ip)
        buf += _U32.pack(flow.server_port)
        _put_str(buf, flow.hostname)
        _put_str(buf, flow.scheme)
        tls = flow.tls
        if tls is None:
            buf += b"\x00"
        else:
            buf += b"\x01"
            _put_str(buf, tls.sni)
            _put_str(buf, tls.version)
            _put_str(buf, tls.cipher)
            buf += b"\x01" if tls.pinned else b"\x00"
            buf += b"\x01" if tls.intercepted else b"\x00"
        buf += _U32.pack(len(flow.transactions))
        for txn in flow.transactions:
            _put_transaction(buf, txn)
        tags = sorted(flow.tags)
        buf += _U32.pack(len(tags))
        for tag in tags:
            _put_str(buf, tag)
        buf += _FLOW_TAIL.pack(flow.bytes_up, flow.bytes_down)
    except struct.error as exc:
        raise CodecError(f"cannot encode flow {flow.flow_id}: {exc}") from exc


def _put_meta(buf: bytearray, meta: SessionMeta) -> None:
    _put_str(buf, meta.service)
    _put_str(buf, meta.os_name)
    _put_str(buf, meta.medium)
    _put_str(buf, meta.category)
    buf += _F64.pack(meta.duration)
    _put_str(buf, meta.device)
    _put_str(buf, meta.session_id)


def _put_trace(buf: bytearray, trace: Trace) -> None:
    _put_meta(buf, trace.meta)
    buf += _U32.pack(len(trace.flows))
    for flow in trace.flows:
        _put_flow(buf, flow)


def encode_flow(flow: Flow) -> bytes:
    """Serialize one flow to a bare binary blob."""
    buf = bytearray()
    _put_flow(buf, flow)
    return bytes(buf)


def encode_trace(trace: Trace) -> bytes:
    """Serialize one trace to a bare binary blob."""
    buf = bytearray()
    _put_trace(buf, trace)
    return bytes(buf)


def encode_record(record) -> bytes:
    """Serialize a :class:`~repro.experiment.dataset.SessionRecord`.

    Ground-truth entries are written in dict insertion order — the
    matcher registers encoded forms in that order, and the scan plan
    (hence which encoding a merged observation reports first) follows
    registration order, so preserving it keeps a decoded record's
    analysis byte-identical to the original's.
    """
    buf = bytearray()
    _put_str(buf, record.service)
    _put_str(buf, record.os_name)
    _put_str(buf, record.medium)
    buf += _F64.pack(record.duration)
    buf += _U32.pack(len(record.ground_truth))
    for pii_type, values in record.ground_truth.items():
        _put_str(buf, pii_type.value)
        buf += _U32.pack(len(values))
        for value in values:
            _put_str(buf, value)
    _put_trace(buf, record.trace)
    return bytes(buf)


# -- decoding -----------------------------------------------------------------
#
# Decoders thread an integer offset; struct.unpack_from bounds-checks
# scalars, and variable-length reads check explicitly.  struct.error is
# converted to CodecError at the public entry points.


def _get_str(buf: bytes, pos: int):
    (size,) = _U32.unpack_from(buf, pos)
    pos += 4
    end = pos + size
    if end > len(buf):
        raise CodecError(
            f"truncated data: string of {size} byte(s) at offset {pos} "
            f"overruns buffer of {len(buf)}"
        )
    try:
        return buf[pos:end].decode("utf-8"), end
    except UnicodeDecodeError as exc:
        raise CodecError(f"bad UTF-8 string at offset {pos}: {exc}") from exc


def _get_bytes(buf: bytes, pos: int):
    (size,) = _U32.unpack_from(buf, pos)
    pos += 4
    end = pos + size
    if end > len(buf):
        raise CodecError(
            f"truncated data: blob of {size} byte(s) at offset {pos} "
            f"overruns buffer of {len(buf)}"
        )
    return buf[pos:end], end


def _get_headers(buf: bytes, pos: int):
    (count,) = _U32.unpack_from(buf, pos)
    pos += 4
    headers = []
    append = headers.append
    get_str = _get_str
    for _ in range(count):
        name, pos = get_str(buf, pos)
        value, pos = get_str(buf, pos)
        append((name, value))
    return headers, pos


def _get_transaction(buf: bytes, pos: int):
    (timestamp,) = _F64.unpack_from(buf, pos)
    pos += 8
    method, pos = _get_str(buf, pos)
    url, pos = _get_str(buf, pos)
    headers, pos = _get_headers(buf, pos)
    body, pos = _get_bytes(buf, pos)
    request = CapturedRequest(method=method, url=url, headers=headers, body=body)
    has_response = buf[pos]
    pos += 1
    response = None
    if has_response:
        (status,) = _I32.unpack_from(buf, pos)
        pos += 4
        reason, pos = _get_str(buf, pos)
        resp_headers, pos = _get_headers(buf, pos)
        resp_body, pos = _get_bytes(buf, pos)
        response = CapturedResponse(
            status=status, reason=reason, headers=resp_headers, body=resp_body
        )
    return HttpTransaction(timestamp=timestamp, request=request, response=response), pos


def _get_flow(buf: bytes, pos: int):
    flow_id, ts_start, ts_end = _FLOW_HEAD.unpack_from(buf, pos)
    pos += _FLOW_HEAD.size
    client_ip, pos = _get_str(buf, pos)
    (client_port,) = _U32.unpack_from(buf, pos)
    pos += 4
    server_ip, pos = _get_str(buf, pos)
    (server_port,) = _U32.unpack_from(buf, pos)
    pos += 4
    hostname, pos = _get_str(buf, pos)
    scheme, pos = _get_str(buf, pos)
    flow = Flow(
        flow_id=flow_id,
        ts_start=ts_start,
        ts_end=ts_end,
        client_ip=client_ip,
        client_port=client_port,
        server_ip=server_ip,
        server_port=server_port,
        hostname=hostname,
        scheme=scheme,
    )
    has_tls = buf[pos]
    pos += 1
    if has_tls:
        sni, pos = _get_str(buf, pos)
        version, pos = _get_str(buf, pos)
        cipher, pos = _get_str(buf, pos)
        pinned = buf[pos] != 0
        intercepted = buf[pos + 1] != 0
        pos += 2
        flow.tls = TlsInfo(
            sni=sni, version=version, cipher=cipher,
            pinned=pinned, intercepted=intercepted,
        )
    (txn_count,) = _U32.unpack_from(buf, pos)
    pos += 4
    transactions = []
    append = transactions.append
    for _ in range(txn_count):
        txn, pos = _get_transaction(buf, pos)
        append(txn)
    flow.transactions = transactions
    (tag_count,) = _U32.unpack_from(buf, pos)
    pos += 4
    tags = set()
    for _ in range(tag_count):
        tag, pos = _get_str(buf, pos)
        tags.add(tag)
    flow.tags = tags
    flow.bytes_up, flow.bytes_down = _FLOW_TAIL.unpack_from(buf, pos)
    pos += _FLOW_TAIL.size
    return flow, pos


def _get_meta(buf: bytes, pos: int):
    service, pos = _get_str(buf, pos)
    os_name, pos = _get_str(buf, pos)
    medium, pos = _get_str(buf, pos)
    category, pos = _get_str(buf, pos)
    (duration,) = _F64.unpack_from(buf, pos)
    pos += 8
    device, pos = _get_str(buf, pos)
    session_id, pos = _get_str(buf, pos)
    meta = SessionMeta(
        service=service,
        os_name=os_name,
        medium=medium,
        category=category,
        duration=duration,
        device=device,
        session_id=session_id,
    )
    return meta, pos


def _get_trace(buf: bytes, pos: int):
    meta, pos = _get_meta(buf, pos)
    (flow_count,) = _U32.unpack_from(buf, pos)
    pos += 4
    flows = []
    append = flows.append
    for _ in range(flow_count):
        flow, pos = _get_flow(buf, pos)
        append(flow)
    return Trace(meta=meta, flows=flows), pos


def _expect_end(buf: bytes, pos: int) -> None:
    if pos != len(buf):
        raise CodecError(
            f"{len(buf) - pos} byte(s) of trailing garbage after offset {pos}"
        )


def decode_flow(data: bytes) -> Flow:
    """Parse a blob produced by :func:`encode_flow` (strict)."""
    try:
        flow, pos = _get_flow(data, 0)
    except (struct.error, IndexError) as exc:
        raise CodecError(f"truncated flow data: {exc}") from exc
    _expect_end(data, pos)
    return flow


def decode_trace(data: bytes) -> Trace:
    """Parse a blob produced by :func:`encode_trace` (strict)."""
    try:
        trace, pos = _get_trace(data, 0)
    except (struct.error, IndexError) as exc:
        raise CodecError(f"truncated trace data: {exc}") from exc
    _expect_end(data, pos)
    return trace


def _get_record(buf: bytes, pos: int):
    from ..experiment.dataset import SessionRecord
    from ..pii.types import PiiType

    service, pos = _get_str(buf, pos)
    os_name, pos = _get_str(buf, pos)
    medium, pos = _get_str(buf, pos)
    (duration,) = _F64.unpack_from(buf, pos)
    pos += 8
    (gt_count,) = _U32.unpack_from(buf, pos)
    pos += 4
    ground_truth: dict = {}
    for _ in range(gt_count):
        code, pos = _get_str(buf, pos)
        try:
            pii_type = PiiType(code)
        except ValueError as exc:
            raise CodecError(f"unknown PII type in record: {exc}") from exc
        (value_count,) = _U32.unpack_from(buf, pos)
        pos += 4
        values = []
        for _ in range(value_count):
            value, pos = _get_str(buf, pos)
            values.append(value)
        ground_truth[pii_type] = values
    trace, pos = _get_trace(buf, pos)
    record = SessionRecord(
        service=service,
        os_name=os_name,
        medium=medium,
        trace=trace,
        ground_truth=ground_truth,
        duration=duration,
    )
    return record, pos


def decode_record(data: bytes):
    """Parse a blob produced by :func:`encode_record` (strict)."""
    try:
        record, pos = _get_record(data, 0)
    except (struct.error, IndexError) as exc:
        raise CodecError(f"truncated record data: {exc}") from exc
    _expect_end(data, pos)
    return record


def encode_bundle(records) -> bytes:
    """Serialize a sequence of session records as one upload bundle.

    A bundle is ``u32 count`` followed by the records back-to-back in
    the given order; order is preserved through decode so an uploaded
    dataset analyzes in the same sequence the offline pipeline would.
    """
    records = list(records)
    buf = bytearray(_U32.pack(len(records)))
    for record in records:
        buf += encode_record(record)
    return bytes(buf)


def decode_bundle(data: bytes) -> list:
    """Parse a blob produced by :func:`encode_bundle` (strict)."""
    try:
        (count,) = _U32.unpack_from(data, 0)
        pos = 4
        records = []
        for _ in range(count):
            record, pos = _get_record(data, pos)
            records.append(record)
    except (struct.error, IndexError) as exc:
        raise CodecError(f"truncated bundle data: {exc}") from exc
    _expect_end(data, pos)
    return records


def record_content_hash(record) -> str:
    """SHA-256 of the record's canonical binary form (cache addressing)."""
    return hashlib.sha256(encode_record(record)).hexdigest()


# -- campaign aggregates ------------------------------------------------------
#
# KIND_CAGG carries a CampaignAggregate partial: the inter-process
# reduction payload for campaign shards (replacing the to_dict pickle
# path) and the on-disk checkpoint format for resumable runs.  Layout
# follows the columnar batch conventions: one interned string table up
# front, then integer/float columns referencing it by u32 id.  Floats
# (Moments Shewchuk partials, min/max) are written as raw f64, so a
# decoded aggregate's state — hence its ``canonical_bytes`` — is
# bit-identical to the original's.


def _put_moments(buf: bytearray, moments) -> None:
    buf += _I64.pack(moments.count)
    buf += _U32.pack(len(moments._sum))
    for value in moments._sum:
        buf += _F64.pack(value)
    buf += _U32.pack(len(moments._sumsq))
    for value in moments._sumsq:
        buf += _F64.pack(value)
    for bound in (moments._min, moments._max):
        if bound is None:
            buf += b"\x00"
        else:
            buf += b"\x01"
            buf += _F64.pack(bound)


def _get_moments(buf: bytes, pos: int):
    from ..analysis.stats import Moments

    moments = Moments()
    (moments.count,) = _I64.unpack_from(buf, pos)
    pos += 8
    for name in ("_sum", "_sumsq"):
        (count,) = _U32.unpack_from(buf, pos)
        pos += 4
        end = pos + 8 * count
        if end > len(buf):
            raise CodecError(
                f"truncated data: {count} float partial(s) at offset {pos} "
                f"overrun buffer of {len(buf)}"
            )
        setattr(moments, name, list(struct.unpack_from(f"<{count}d", buf, pos)))
        pos = end
    bounds = []
    for _ in range(2):
        present = buf[pos]
        pos += 1
        if present:
            (value,) = _F64.unpack_from(buf, pos)
            pos += 8
            bounds.append(value)
        else:
            bounds.append(None)
    moments._min, moments._max = bounds
    return moments, pos


def _put_i64_column(buf: bytearray, values: list) -> None:
    buf += _U32.pack(len(values))
    buf += struct.pack(f"<{len(values)}q", *values)


def _get_i64_column(buf: bytes, pos: int):
    (count,) = _U32.unpack_from(buf, pos)
    pos += 4
    end = pos + 8 * count
    if end > len(buf):
        raise CodecError(
            f"truncated data: {count} i64 value(s) at offset {pos} "
            f"overrun buffer of {len(buf)}"
        )
    return list(struct.unpack_from(f"<{count}q", buf, pos)), end


def _put_bootstrap(buf: bytearray, sums) -> None:
    buf += _U32.pack(sums.replicates)
    buf += _I64.pack(sums.count)
    buf += _I64.pack(sums.total)
    buf += struct.pack(f"<{sums.replicates}q", *sums.sums)
    buf += struct.pack(f"<{sums.replicates}q", *sums.counts)


def _get_bootstrap(buf: bytes, pos: int):
    from ..analysis.stats import BootstrapSums

    (replicates,) = _U32.unpack_from(buf, pos)
    pos += 4
    if replicates < 1:
        raise CodecError(f"bad bootstrap replicate count {replicates} at offset {pos}")
    sums = BootstrapSums(replicates)
    (sums.count,) = _I64.unpack_from(buf, pos)
    pos += 8
    (sums.total,) = _I64.unpack_from(buf, pos)
    pos += 8
    end = pos + 16 * replicates
    if end > len(buf):
        raise CodecError(
            f"truncated data: {replicates} bootstrap replicate(s) at offset {pos} "
            f"overrun buffer of {len(buf)}"
        )
    sums.sums = list(struct.unpack_from(f"<{replicates}q", buf, pos))
    pos += 8 * replicates
    sums.counts = list(struct.unpack_from(f"<{replicates}q", buf, pos))
    pos += 8 * replicates
    return sums, pos


def encode_campaign(agg) -> bytes:
    """Serialize a :class:`~repro.campaign.engine.CampaignAggregate`.

    Cohorts are written in label-sorted order and every set/group in
    its sorted form (matching ``to_dict``), so encoding is canonical:
    equal aggregates encode to equal bytes regardless of fold order.
    """
    from ..analysis.columnar import MOMENT_KEYS
    from ..campaign.engine import USER_METRIC_KEYS

    strings: dict = {}

    def intern(value: str) -> int:
        index = strings.get(value)
        if index is None:
            index = strings[value] = len(strings)
        return index

    body = bytearray()
    body += _I64.pack(agg.seed)
    body += _U32.pack(len(agg.dims))
    for dim in agg.dims:
        body += _U32.pack(intern(dim))
    body += _U32.pack(agg.replicates)

    cohorts = agg.ordered_cohorts()
    body += _U32.pack(len(cohorts))
    for cohort in cohorts:
        body += _U32.pack(intern(cohort.label))
        body += _U32.pack(cohort.replicates)
        body += _I64.pack(cohort.users)
        body += _I64.pack(cohort.users_leaking)
        body += _I64.pack(cohort.sessions)

        study = cohort.study
        metas = study.ordered_services()
        body += _U32.pack(len(metas))
        for meta in metas:
            body += _U32.pack(intern(meta.slug))
            body += _U32.pack(intern(meta.category))
            body += _U32.pack(intern(meta.domain))
            body += _I32.pack(meta.rank)
            body += _U32.pack(meta.order)
            body += _U32.pack(len(meta.oses))
            for os_name in meta.oses:
                body += _U32.pack(intern(os_name))

        cells = study.ordered_cells()
        body += _U32.pack(len(cells))
        for cell in cells:
            body += _U32.pack(intern(cell.service))
            body += _U32.pack(intern(cell.os_name))
            body += _U32.pack(intern(cell.medium))
            body += _U32.pack(cell.order)
            body += _I64.pack(cell.flows_total)
            body += _I64.pack(cell.aa_flows)
            body += _I64.pack(cell.aa_bytes)
            domains = sorted(cell.aa_domains)
            body += _U32.pack(len(domains))
            for domain in domains:
                body += _U32.pack(intern(domain))
            groups = sorted(
                (domain, host, pii.value, count)
                for (domain, host, pii), count in cell.leak_groups.items()
            )
            body += _U32.pack(len(groups))
            for domain, host, pii_value, count in groups:
                body += _U32.pack(intern(domain))
                body += _U32.pack(intern(host))
                body += _U32.pack(intern(pii_value))
                body += _I64.pack(count)
        for key in MOMENT_KEYS:
            _put_moments(body, study.moments[key])

        for key in USER_METRIC_KEYS:
            _put_moments(body, cohort.user_moments[key])
        for key in USER_METRIC_KEYS:
            _put_bootstrap(body, cohort.bootstrap[key])

    table = list(strings)
    head = bytearray(_U32.pack(len(table)))
    for value in table:
        _put_str(head, value)
    return bytes(head + body)


def _get_campaign(buf: bytes, pos: int):
    from ..analysis.columnar import (
        _PII_BY_VALUE,
        MOMENT_KEYS,
        CellAggregate,
        ServiceMeta,
        StudyAggregate,
    )
    from ..campaign.engine import USER_METRIC_KEYS, CampaignAggregate, CohortAggregate

    (table_size,) = _U32.unpack_from(buf, pos)
    pos += 4
    table = []
    for _ in range(table_size):
        value, pos = _get_str(buf, pos)
        table.append(value)

    def ref(pos: int):
        (index,) = _U32.unpack_from(buf, pos)
        if index >= table_size:
            raise CodecError(
                f"string id {index} out of table range {table_size} at offset {pos}"
            )
        return table[index], pos + 4

    (seed,) = _I64.unpack_from(buf, pos)
    pos += 8
    (dim_count,) = _U32.unpack_from(buf, pos)
    pos += 4
    dims = []
    for _ in range(dim_count):
        dim, pos = ref(pos)
        dims.append(dim)
    (replicates,) = _U32.unpack_from(buf, pos)
    pos += 4
    agg = CampaignAggregate(seed, tuple(dims), replicates)

    (cohort_count,) = _U32.unpack_from(buf, pos)
    pos += 4
    for _ in range(cohort_count):
        label, pos = ref(pos)
        (cohort_replicates,) = _U32.unpack_from(buf, pos)
        pos += 4
        cohort = CohortAggregate(label, cohort_replicates)
        (cohort.users,) = _I64.unpack_from(buf, pos)
        pos += 8
        (cohort.users_leaking,) = _I64.unpack_from(buf, pos)
        pos += 8
        (cohort.sessions,) = _I64.unpack_from(buf, pos)
        pos += 8

        study = StudyAggregate()
        (meta_count,) = _U32.unpack_from(buf, pos)
        pos += 4
        for _ in range(meta_count):
            slug, pos = ref(pos)
            category, pos = ref(pos)
            domain, pos = ref(pos)
            (rank,) = _I32.unpack_from(buf, pos)
            pos += 4
            (order,) = _U32.unpack_from(buf, pos)
            pos += 4
            (os_count,) = _U32.unpack_from(buf, pos)
            pos += 4
            oses = []
            for _ in range(os_count):
                os_name, pos = ref(pos)
                oses.append(os_name)
            study.services[slug] = ServiceMeta(
                slug, category, domain, rank, tuple(oses), order
            )
        (cell_count,) = _U32.unpack_from(buf, pos)
        pos += 4
        for _ in range(cell_count):
            service, pos = ref(pos)
            os_name, pos = ref(pos)
            medium, pos = ref(pos)
            (order,) = _U32.unpack_from(buf, pos)
            pos += 4
            cell = CellAggregate(service, os_name, medium, order)
            (cell.flows_total,) = _I64.unpack_from(buf, pos)
            pos += 8
            (cell.aa_flows,) = _I64.unpack_from(buf, pos)
            pos += 8
            (cell.aa_bytes,) = _I64.unpack_from(buf, pos)
            pos += 8
            (domain_count,) = _U32.unpack_from(buf, pos)
            pos += 4
            domains = set()
            for _ in range(domain_count):
                domain, pos = ref(pos)
                domains.add(domain)
            cell.aa_domains = domains
            (group_count,) = _U32.unpack_from(buf, pos)
            pos += 4
            groups: dict = {}
            for _ in range(group_count):
                domain, pos = ref(pos)
                host, pos = ref(pos)
                pii_value, pos = ref(pos)
                (count,) = _I64.unpack_from(buf, pos)
                pos += 8
                pii = _PII_BY_VALUE.get(pii_value)
                if pii is None:
                    raise CodecError(f"unknown PII type {pii_value!r} in aggregate")
                groups[(domain, host, pii)] = count
            cell.leak_groups = groups
            study.cells[cell.key] = cell
        moments = {}
        for key in MOMENT_KEYS:
            moments[key], pos = _get_moments(buf, pos)
        study.moments = moments
        cohort.study = study

        user_moments = {}
        for key in USER_METRIC_KEYS:
            user_moments[key], pos = _get_moments(buf, pos)
        cohort.user_moments = user_moments
        bootstrap = {}
        for key in USER_METRIC_KEYS:
            bootstrap[key], pos = _get_bootstrap(buf, pos)
        cohort.bootstrap = bootstrap
        agg.cohorts[label] = cohort
    return agg, pos


def decode_campaign(data: bytes):
    """Parse a blob produced by :func:`encode_campaign` (strict)."""
    try:
        agg, pos = _get_campaign(data, 0)
    except (struct.error, IndexError) as exc:
        raise CodecError(f"truncated campaign data: {exc}") from exc
    _expect_end(data, pos)
    return agg


# -- files --------------------------------------------------------------------


def _header(kind: int) -> bytes:
    return MAGIC + bytes((VERSION, kind))


def frame(kind: int, payload: bytes) -> bytes:
    """Wrap a bare payload in the versioned magic header."""
    return _header(kind) + payload


def unframe(data: bytes, kind: int, source="<bytes>") -> bytes:
    """Strip and validate the header, returning the bare payload.

    Raises :class:`CodecError` on foreign magic, unsupported version,
    or a payload kind other than ``kind`` — same strictness the typed
    readers (:func:`read_trace`, :func:`read_record`) apply.
    """
    return _check_header(data, kind, source)


def is_binary(prefix: bytes) -> bool:
    """True when ``prefix`` (>= 4 bytes of a file) is codec-framed."""
    return prefix[: len(MAGIC)] == MAGIC


def _check_header(data: bytes, kind: int, source) -> bytes:
    if len(data) < HEADER_SIZE or data[: len(MAGIC)] != MAGIC:
        raise CodecError(f"{source}: not a repro binary file (bad magic)")
    version = data[len(MAGIC)]
    if version != VERSION:
        raise CodecError(
            f"{source}: unsupported binary format version {version} "
            f"(expected {VERSION})"
        )
    found_kind = data[len(MAGIC) + 1]
    if found_kind != kind:
        raise CodecError(
            f"{source}: wrong payload kind {found_kind} (expected {kind})"
        )
    return data[HEADER_SIZE:]


def write_trace(path: Union[str, Path], trace: Trace) -> None:
    """Atomically write a trace as a framed binary file."""
    atomic_write_bytes(path, _header(KIND_TRACE) + encode_trace(trace))


def read_trace(path: Union[str, Path]) -> Trace:
    """Read a framed binary trace file written by :func:`write_trace`."""
    path = Path(path)
    data = path.read_bytes()
    return decode_trace(_check_header(data, KIND_TRACE, path))


def write_record(path: Union[str, Path], record) -> None:
    """Atomically write a session record as a framed binary file."""
    atomic_write_bytes(path, _header(KIND_RECORD) + encode_record(record))


def read_record(path: Union[str, Path]):
    """Read a framed binary record file written by :func:`write_record`."""
    path = Path(path)
    data = path.read_bytes()
    return decode_record(_check_header(data, KIND_RECORD, path))


def write_campaign(path: Union[str, Path], agg) -> None:
    """Atomically write a campaign aggregate as a framed binary file."""
    atomic_write_bytes(path, _header(KIND_CAGG) + encode_campaign(agg))


def read_campaign(path: Union[str, Path]):
    """Read a framed campaign file written by :func:`write_campaign`."""
    path = Path(path)
    data = path.read_bytes()
    return decode_campaign(_check_header(data, KIND_CAGG, path))


def write_bundle(path: Union[str, Path], records) -> None:
    """Atomically write an upload bundle as a framed binary file."""
    atomic_write_bytes(path, _header(KIND_BUNDLE) + encode_bundle(records))


def read_bundle(path: Union[str, Path]) -> list:
    """Read a framed binary bundle file written by :func:`write_bundle`."""
    path = Path(path)
    data = path.read_bytes()
    return decode_bundle(_check_header(data, KIND_BUNDLE, path))
