"""Flow-level network substrate: clock, addressing, DNS, flows, traces."""

from .clock import ClockError, SimClock
from .codec import (
    CodecError,
    decode_flow,
    decode_record,
    decode_trace,
    encode_flow,
    encode_record,
    encode_trace,
    record_content_hash,
)
from .dns import DnsError, Resolver, stable_address
from .flow import CapturedRequest, CapturedResponse, Flow, HttpTransaction, TlsInfo
from .inet import (
    AddressError,
    format_ipv4,
    format_mac,
    is_private_ipv4,
    is_valid_ipv4,
    is_valid_mac,
    parse_ipv4,
    parse_mac,
    random_mac,
    random_public_ipv4,
)
from .har import HarFormatError, dump_har, har_to_trace, load_har, trace_to_har
from .trace import SessionMeta, Trace, TraceFormatError, merge_traces

__all__ = [
    "AddressError",
    "CapturedRequest",
    "CapturedResponse",
    "ClockError",
    "CodecError",
    "DnsError",
    "decode_flow",
    "decode_record",
    "decode_trace",
    "encode_flow",
    "encode_record",
    "encode_trace",
    "record_content_hash",
    "Flow",
    "HttpTransaction",
    "Resolver",
    "SessionMeta",
    "SimClock",
    "TlsInfo",
    "Trace",
    "TraceFormatError",
    "HarFormatError",
    "dump_har",
    "har_to_trace",
    "load_har",
    "trace_to_har",
    "format_ipv4",
    "format_mac",
    "is_private_ipv4",
    "is_valid_ipv4",
    "is_valid_mac",
    "merge_traces",
    "parse_ipv4",
    "parse_mac",
    "random_mac",
    "random_public_ipv4",
    "stable_address",
]
