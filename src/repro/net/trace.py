"""Trace container and JSONL serialization.

A :class:`Trace` is the unit of capture in the study: every flow recorded
while one service was exercised on one OS over one medium (app or web).
Traces carry the session metadata the analysis needs (service, OS,
medium, duration) and serialize to a line-oriented JSON format — one
metadata line followed by one line per flow — so large datasets stream
without loading everything at once.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from ..ioutil import atomic_write_text
from .flow import Flow

FORMAT_VERSION = 1


class TraceFormatError(Exception):
    """Raised when a trace file is malformed or has a bad version."""


@dataclass
class SessionMeta:
    """Identifies the experiment session a trace belongs to."""

    service: str
    os_name: str  # "android" | "ios"
    medium: str  # "app" | "web"
    category: str = ""
    duration: float = 240.0
    device: str = ""
    session_id: str = ""

    def to_dict(self) -> dict:
        return {
            "service": self.service,
            "os": self.os_name,
            "medium": self.medium,
            "category": self.category,
            "duration": self.duration,
            "device": self.device,
            "session_id": self.session_id,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SessionMeta":
        return cls(
            service=data["service"],
            os_name=data["os"],
            medium=data["medium"],
            category=data.get("category", ""),
            duration=data.get("duration", 240.0),
            device=data.get("device", ""),
            session_id=data.get("session_id", ""),
        )


@dataclass
class Trace:
    """All flows captured during one experiment session."""

    meta: SessionMeta
    flows: list = field(default_factory=list)

    def add(self, flow: Flow) -> None:
        self.flows.append(flow)

    def __len__(self) -> int:
        return len(self.flows)

    def __iter__(self) -> Iterator[Flow]:
        return iter(self.flows)

    @property
    def total_bytes(self) -> int:
        return sum(flow.total_bytes for flow in self.flows)

    def hostnames(self) -> set:
        """Unique server hostnames contacted in this trace."""
        return {flow.hostname for flow in self.flows}

    def filtered(self, predicate) -> "Trace":
        """Return a new trace containing only flows matching ``predicate``."""
        kept = Trace(meta=self.meta)
        for flow in self.flows:
            if predicate(flow):
                kept.add(flow)
        return kept

    def without_tags(self, *tags: str) -> "Trace":
        """Drop flows carrying any of ``tags`` (background filtering)."""
        dropped = set(tags)
        return self.filtered(lambda flow: not (flow.tags & dropped))

    # -- serialization ----------------------------------------------------

    def dump(self, path: Union[str, Path], fmt: str = "binary") -> None:
        """Write the trace to ``path``.

        ``fmt`` selects the on-disk format: ``"binary"`` (default) is the
        struct-packed codec from :mod:`repro.net.codec` — markedly faster
        to load; ``"json"`` is the original line-oriented JSON, kept for
        interoperability and eyeballing.  :meth:`load` auto-detects
        either.  The write is atomic (temp sibling + rename): a killed
        collection never leaves a truncated trace on disk.
        """
        if fmt == "binary":
            from . import codec

            codec.write_trace(path, self)
            return
        if fmt != "json":
            raise ValueError(f"unknown trace format {fmt!r} (binary|json)")
        header = {"version": FORMAT_VERSION, "meta": self.meta.to_dict()}
        lines = [json.dumps(header)]
        lines.extend(json.dumps(flow.to_dict()) for flow in self.flows)
        atomic_write_text(path, "\n".join(lines) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        """Read a trace previously written by :meth:`dump` (either format).

        The first bytes are sniffed: codec-framed files go through the
        binary reader, anything else through the JSONL reader, so callers
        never need to know how a trace was saved.
        """
        from . import codec

        path = Path(path)
        with path.open("rb") as probe:
            prefix = probe.read(len(codec.MAGIC))
        if codec.is_binary(prefix):
            try:
                return codec.read_trace(path)
            except codec.CodecError as exc:
                raise TraceFormatError(f"bad binary trace {path}: {exc}") from exc
        return cls._load_json(path)

    @classmethod
    def _load_json(cls, path: Path) -> "Trace":
        with path.open("r", encoding="utf-8") as handle:
            header_line = handle.readline()
            if not header_line.strip():
                raise TraceFormatError(f"empty trace file: {path}")
            try:
                header = json.loads(header_line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(f"bad trace header in {path}: {exc}") from exc
            version = header.get("version")
            if version != FORMAT_VERSION:
                raise TraceFormatError(
                    f"unsupported trace version {version!r} in {path} "
                    f"(expected {FORMAT_VERSION})"
                )
            trace = cls(meta=SessionMeta.from_dict(header["meta"]))
            for line_no, line in enumerate(handle, start=2):
                if not line.strip():
                    continue
                try:
                    trace.add(Flow.from_dict(json.loads(line)))
                except (json.JSONDecodeError, KeyError) as exc:
                    raise TraceFormatError(
                        f"bad flow record at {path}:{line_no}: {exc}"
                    ) from exc
        return trace


def merge_traces(traces: Iterable[Trace], meta: Optional[SessionMeta] = None) -> Trace:
    """Concatenate several traces into one, renumbering flow ids.

    Used when a session is captured in segments (e.g. across a VPN
    reconnect).  The resulting trace takes ``meta`` if given, otherwise
    the metadata of the first input trace.
    """
    merged: Optional[Trace] = None
    next_id = 0
    for trace in traces:
        if merged is None:
            merged = Trace(meta=meta if meta is not None else trace.meta)
        for flow in trace.flows:
            flow.flow_id = next_id
            next_id += 1
            merged.add(flow)
    if merged is None:
        raise ValueError("merge_traces requires at least one trace")
    return merged
