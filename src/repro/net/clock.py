"""Simulated monotonic clock.

Every component in the reproduction shares a single :class:`SimClock` so
that experiment timelines are deterministic and independent of wall-clock
time.  The paper's methodology is time-based (four-minute manual
sessions), so the clock is the backbone of the experiment runner: session
scripts advance it as they interact with a service, and every captured
flow is stamped with the simulated time at which it was observed.
"""

from __future__ import annotations


class ClockError(Exception):
    """Raised on invalid clock manipulation (e.g. moving time backwards)."""


class SimClock:
    """A monotonic simulated clock measured in seconds.

    The clock only moves forward, via :meth:`advance` or :meth:`sleep`
    (an alias that reads better in interaction scripts).  Components that
    need timestamps hold a reference to the clock and call :meth:`now`.

    >>> clock = SimClock()
    >>> clock.advance(1.5)
    >>> clock.now()
    1.5
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start before zero: {start}")
        self._now = float(start)

    def now(self) -> float:
        """Return the current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds``.

        Raises :class:`ClockError` if ``seconds`` is negative: simulated
        time, like real time, never runs backwards.
        """
        if seconds < 0:
            raise ClockError(f"cannot advance clock by negative time: {seconds}")
        self._now += seconds

    def sleep(self, seconds: float) -> None:
        """Alias for :meth:`advance`, for readable interaction scripts."""
        self.advance(seconds)

    def deadline(self, seconds_from_now: float) -> float:
        """Return the absolute time ``seconds_from_now`` in the future."""
        if seconds_from_now < 0:
            raise ClockError(f"deadline must be in the future: {seconds_from_now}")
        return self._now + seconds_from_now

    def expired(self, deadline: float) -> bool:
        """Return True once the clock has reached ``deadline``."""
        return self._now >= deadline

    def __repr__(self) -> str:
        return f"SimClock(t={self._now:.3f}s)"
