"""IPv4 and MAC address helpers.

Small, dependency-free address utilities used across the flow layer, the
DNS resolver, and the device substrate.  Addresses are represented as
plain strings in canonical form; these helpers validate, generate, and
classify them.
"""

from __future__ import annotations

import random
from typing import Iterable

_PRIVATE_BLOCKS = (
    ((10, 0, 0, 0), 8),
    ((172, 16, 0, 0), 12),
    ((192, 168, 0, 0), 16),
)


class AddressError(ValueError):
    """Raised for malformed IPv4 or MAC addresses."""


def parse_ipv4(address: str) -> tuple[int, int, int, int]:
    """Parse a dotted-quad IPv4 address into a 4-tuple of octets.

    Raises :class:`AddressError` on malformed input (wrong number of
    parts, non-numeric parts, octets out of range, or leading-zero
    octets, which are ambiguous between decimal and octal readings).
    """
    parts = address.split(".")
    if len(parts) != 4:
        raise AddressError(f"expected 4 octets in {address!r}")
    octets = []
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"non-numeric octet {part!r} in {address!r}")
        if len(part) > 1 and part[0] == "0":
            raise AddressError(f"leading zero in octet {part!r} of {address!r}")
        value = int(part)
        if value > 255:
            raise AddressError(f"octet {value} out of range in {address!r}")
        octets.append(value)
    return tuple(octets)  # type: ignore[return-value]


def format_ipv4(octets: Iterable[int]) -> str:
    """Format a 4-tuple of octets as a dotted-quad string."""
    quad = list(octets)
    if len(quad) != 4 or any(o < 0 or o > 255 for o in quad):
        raise AddressError(f"invalid octets: {quad}")
    return ".".join(str(o) for o in quad)


def is_valid_ipv4(address: str) -> bool:
    """Return True if ``address`` is a well-formed dotted-quad IPv4."""
    try:
        parse_ipv4(address)
    except AddressError:
        return False
    return True


def ipv4_to_int(address: str) -> int:
    """Convert a dotted-quad address to its 32-bit integer value."""
    a, b, c, d = parse_ipv4(address)
    return (a << 24) | (b << 16) | (c << 8) | d


def int_to_ipv4(value: int) -> str:
    """Convert a 32-bit integer to a dotted-quad address."""
    if value < 0 or value > 0xFFFFFFFF:
        raise AddressError(f"value out of 32-bit range: {value}")
    return format_ipv4(((value >> 24) & 0xFF, (value >> 16) & 0xFF, (value >> 8) & 0xFF, value & 0xFF))


def is_private_ipv4(address: str) -> bool:
    """Return True for RFC 1918 private addresses."""
    value = ipv4_to_int(address)
    for block, prefix in _PRIVATE_BLOCKS:
        base = ipv4_to_int(format_ipv4(block))
        mask = (0xFFFFFFFF << (32 - prefix)) & 0xFFFFFFFF
        if (value & mask) == base:
            return True
    return False


def random_public_ipv4(rng: random.Random) -> str:
    """Draw a random, non-private, non-reserved IPv4 address."""
    while True:
        value = rng.getrandbits(32)
        address = int_to_ipv4(value)
        first = value >> 24
        if first in (0, 10, 127) or first >= 224:
            continue
        if is_private_ipv4(address):
            continue
        return address


def parse_mac(address: str) -> bytes:
    """Parse a colon-separated MAC address into 6 raw bytes."""
    parts = address.split(":")
    if len(parts) != 6:
        raise AddressError(f"expected 6 octets in MAC {address!r}")
    try:
        raw = bytes(int(part, 16) for part in parts)
    except ValueError as exc:
        raise AddressError(f"non-hex octet in MAC {address!r}") from exc
    if any(len(part) != 2 for part in parts):
        raise AddressError(f"octets must be two hex digits in MAC {address!r}")
    return raw


def format_mac(raw: bytes) -> str:
    """Format 6 raw bytes as a lowercase colon-separated MAC address."""
    if len(raw) != 6:
        raise AddressError(f"MAC must be 6 bytes, got {len(raw)}")
    return ":".join(f"{b:02x}" for b in raw)


def is_valid_mac(address: str) -> bool:
    """Return True if ``address`` is a well-formed MAC address."""
    try:
        parse_mac(address)
    except AddressError:
        return False
    return True


def random_mac(rng: random.Random, oui: tuple[int, int, int] | None = None) -> str:
    """Generate a random unicast, locally-administered MAC address.

    ``oui`` optionally fixes the first three octets (vendor prefix); the
    device substrate uses real-looking vendor prefixes per handset model.
    """
    if oui is not None:
        head = bytes(oui)
        if len(head) != 3 or any(b < 0 or b > 255 for b in oui):
            raise AddressError(f"invalid OUI: {oui}")
    else:
        first = (rng.getrandbits(8) & 0xFC) | 0x02  # unicast + locally administered
        head = bytes([first, rng.getrandbits(8), rng.getrandbits(8)])
    tail = bytes(rng.getrandbits(8) for _ in range(3))
    return format_mac(head + tail)
