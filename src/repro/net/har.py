"""HAR 1.2 export for captured traces.

HTTP Archive is the lingua franca of web-traffic tooling; exporting a
:class:`~repro.net.trace.Trace` as HAR lets the captures be inspected in
browser dev-tools, har-analyzers, or compared against real captures.
Only decrypted transactions can be exported (opaque pinned flows carry
no message payloads); they are noted in the log comment.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..http.cookies import parse_cookie_header
from ..http.url import UrlError, parse_url
from .trace import Trace

HAR_VERSION = "1.2"
CREATOR = {"name": "repro", "version": "1.0.0"}


def _iso(timestamp: float) -> str:
    """Render simulated seconds as an ISO-8601 offset from epoch zero."""
    whole = int(timestamp)
    millis = int(round((timestamp - whole) * 1000))
    hours, rem = divmod(whole, 3600)
    minutes, seconds = divmod(rem, 60)
    return f"1970-01-01T{hours:02d}:{minutes:02d}:{seconds:02d}.{millis:03d}Z"


def _query_entries(url_text: str) -> list:
    try:
        url = parse_url(url_text)
    except UrlError:
        return []
    return [{"name": k, "value": v} for k, v in url.query_pairs()]


def _header_entries(headers: list) -> list:
    return [{"name": name, "value": value} for name, value in headers]


def _cookie_entries(headers: list) -> list:
    out = []
    for name, value in headers:
        if name.lower() == "cookie":
            out.extend(
                {"name": k, "value": v} for k, v in parse_cookie_header(value)
            )
    return out


def _request_entry(request) -> dict:
    entry = {
        "method": request.method,
        "url": request.url,
        "httpVersion": "HTTP/1.1",
        "headers": _header_entries(request.headers),
        "queryString": _query_entries(request.url),
        "cookies": _cookie_entries(request.headers),
        "headersSize": -1,
        "bodySize": len(request.body),
    }
    if request.body:
        entry["postData"] = {
            "mimeType": request.header("Content-Type", "") or "application/octet-stream",
            "text": request.body.decode("latin-1"),
        }
    return entry


def _response_entry(response) -> dict:
    if response is None:
        return {
            "status": 0, "statusText": "", "httpVersion": "HTTP/1.1",
            "headers": [], "cookies": [], "content": {"size": 0, "mimeType": ""},
            "redirectURL": "", "headersSize": -1, "bodySize": -1,
        }
    return {
        "status": response.status,
        "statusText": response.reason,
        "httpVersion": "HTTP/1.1",
        "headers": _header_entries(response.headers),
        "cookies": [],
        "content": {
            "size": len(response.body),
            "mimeType": response.header("Content-Type", "") or "",
            "text": response.body.decode("latin-1"),
        },
        "redirectURL": response.header("Location", "") or "",
        "headersSize": -1,
        "bodySize": len(response.body),
    }


def trace_to_har(trace: Trace) -> dict:
    """Convert a trace to a HAR 1.2 ``log`` document."""
    entries = []
    opaque = 0
    for flow in trace:
        if not flow.decrypted:
            opaque += 1
            continue
        for txn in flow.transactions:
            entries.append(
                {
                    "startedDateTime": _iso(txn.timestamp),
                    "time": 1.0,
                    "request": _request_entry(txn.request),
                    "response": _response_entry(txn.response),
                    "cache": {},
                    "timings": {"send": 0, "wait": 1, "receive": 0},
                    "serverIPAddress": flow.server_ip,
                    "connection": str(flow.flow_id),
                    "comment": f"scheme={flow.scheme} host={flow.hostname}",
                }
            )
    meta = trace.meta
    comment = (
        f"service={meta.service} os={meta.os_name} medium={meta.medium}"
        + (f"; {opaque} opaque (pinned/passthrough) flows omitted" if opaque else "")
    )
    return {
        "log": {
            "version": HAR_VERSION,
            "creator": dict(CREATOR),
            "pages": [],
            "entries": entries,
            "comment": comment,
        }
    }


def dump_har(trace: Trace, path: Union[str, Path]) -> None:
    """Write the trace to ``path`` as a HAR file."""
    with Path(path).open("w", encoding="utf-8") as handle:
        json.dump(trace_to_har(trace), handle, indent=1)


# -- import (the other direction) ----------------------------------------------


class HarFormatError(Exception):
    """Raised when a HAR document cannot be interpreted."""


def _parse_iso_offset(text: str) -> float:
    """Best-effort HAR timestamp -> seconds-since-start-of-day float."""
    try:
        clock_part = text.split("T", 1)[1].rstrip("Z").split("+")[0].split("-")[0]
        hours, minutes, seconds = clock_part.split(":")
        return int(hours) * 3600 + int(minutes) * 60 + float(seconds)
    except (IndexError, ValueError):
        return 0.0


def har_to_trace(document: dict, meta=None):
    """Convert a HAR 1.x ``log`` into a :class:`~repro.net.trace.Trace`.

    This is how *real* captures (mitmproxy's ``hardump``, browser
    dev-tools exports) enter the pipeline: the resulting trace feeds
    :class:`~repro.pii.detector.PiiDetector` and the categorizer exactly
    like simulated traffic.  Entries are grouped into flows by
    ``connection`` id when present, else by (scheme, host).
    """
    from .flow import CapturedRequest, CapturedResponse, Flow, TlsInfo
    from .trace import SessionMeta

    try:
        entries = document["log"]["entries"]
    except (KeyError, TypeError) as exc:
        raise HarFormatError(f"not a HAR document: {exc}") from exc
    if meta is None:
        meta = SessionMeta(service="imported", os_name="unknown", medium="unknown")

    from .trace import Trace

    trace = Trace(meta=meta)
    flows: dict = {}
    next_id = 0
    for entry in entries:
        request_data = entry.get("request", {})
        url_text = request_data.get("url", "")
        try:
            url = parse_url(url_text)
        except UrlError:
            continue  # non-HTTP entries (websockets, data URLs)
        if not url.is_absolute:
            continue
        host, scheme = url.host, url.scheme
        key = entry.get("connection") or f"{scheme}://{host}"
        flow = flows.get(key)
        if flow is None:
            flow = Flow(
                flow_id=next_id,
                ts_start=_parse_iso_offset(entry.get("startedDateTime", "")),
                client_ip="0.0.0.0",
                client_port=0,
                server_ip=entry.get("serverIPAddress") or "0.0.0.0",
                server_port=url.effective_port,
                hostname=host,
                scheme=scheme,
                tls=TlsInfo(sni=host) if scheme == "https" else None,
            )
            flows[key] = flow
            trace.add(flow)
            next_id += 1

        headers = [
            (h.get("name", ""), h.get("value", ""))
            for h in request_data.get("headers", [])
        ]
        post = request_data.get("postData") or {}
        body = post.get("text", "").encode("latin-1", errors="replace")
        request = CapturedRequest(
            method=request_data.get("method", "GET"),
            url=url_text,
            headers=headers,
            body=body,
        )
        response_data = entry.get("response") or {}
        response = None
        if response_data.get("status"):
            content = response_data.get("content") or {}
            response = CapturedResponse(
                status=int(response_data["status"]),
                reason=response_data.get("statusText", ""),
                headers=[
                    (h.get("name", ""), h.get("value", ""))
                    for h in response_data.get("headers", [])
                ],
                body=(content.get("text") or "").encode("latin-1", errors="replace"),
            )
        from .flow import HttpTransaction

        flow.add_transaction(
            HttpTransaction(
                timestamp=_parse_iso_offset(entry.get("startedDateTime", "")),
                request=request,
                response=response,
            )
        )
    return trace


def load_har(path, meta=None):
    """Read a HAR file from disk into a trace."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return har_to_trace(json.load(handle), meta=meta)
