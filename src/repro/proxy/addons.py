"""Bundled proxy addons.

Small mitmproxy-style addons used by the experiment harness: traffic
tagging, host blocking, and a live counter useful in tests and examples.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..http.message import Request, Response
from ..net.flow import Flow


class HostTagger:
    """Tag flows to specific hosts at connect time.

    The runner uses this to label OS-service traffic (Google Play
    Services, iCloud, …) so §3.2-style background filtering can drop it.
    """

    def __init__(self, tag: str, hostnames: Iterable) -> None:
        self.tag = tag
        self._exact: set = set()
        self._suffixes: list = []
        for name in hostnames:
            name = name.lower()
            if name.startswith("*."):
                self._suffixes.append(name[1:])  # keep the dot
            else:
                self._exact.add(name)

    def matches(self, hostname: str) -> bool:
        hostname = hostname.lower()
        if hostname in self._exact:
            return True
        return any(hostname.endswith(suffix) for suffix in self._suffixes)

    def tcp_connect(self, flow: Flow) -> None:
        if self.matches(flow.hostname):
            flow.tags.add(self.tag)


class FlowCounter:
    """Count connections, requests, and responses passing the proxy."""

    def __init__(self) -> None:
        self.connects = 0
        self.requests = 0
        self.responses = 0

    def tcp_connect(self, flow: Flow) -> None:
        self.connects += 1

    def request(self, flow: Flow, request: Request) -> None:
        self.requests += 1

    def response(self, flow: Flow, request: Request, response: Response) -> None:
        self.responses += 1


class RequestLogger:
    """Invoke a callback for each decrypted request (tests, debugging)."""

    def __init__(self, callback: Callable) -> None:
        self.callback = callback

    def request(self, flow: Flow, request: Request) -> None:
        self.callback(flow, request)


class StreamCapture:
    """Export captured flows live into the streaming analysis bus.

    Bridges the proxy's capture lifecycle to stream events (see
    :mod:`repro.stream.bus`): ``capture_start`` becomes a
    ``session_start`` event carrying the device's ground-truth PII,
    each flow is published once it is *final*, and ``capture_stop``
    becomes ``session_end``.

    A flow keeps accumulating transactions until its connection closes,
    so flows are held pending and flushed as the longest closed prefix
    in ``flow_id`` (connect) order — the publish order is a function of
    which flows exist, never of close timing.  Whatever is still open
    when the capture stops can no longer change and is flushed then.

    Ground truth must be staged before ``start_capture`` (the runner's
    ``phone_setup`` hook runs at exactly the right moment — after
    provisioning and sign-in, before capture):

    >>> capture = StreamCapture(analyzer.publish)
    >>> runner.run_session(spec, os, medium, phone_setup=capture.stage_phone)
    """

    def __init__(self, publish: Callable) -> None:
        from ..stream.bus import flow_event, session_end_event, session_start_event

        self._publish = publish
        self._flow_event = flow_event
        self._session_end_event = session_end_event
        self._session_start_event = session_start_event
        self._staged_truth: dict = {}
        self._session = None  # (service, os, medium) while a capture runs
        self._pending: list = []  # flows in connect order, not yet published
        self._closed: set = set()  # flow_ids whose connection closed

    # -- staging -------------------------------------------------------------

    def stage_ground_truth(self, truth: dict) -> None:
        """Provide the next session's ground truth ahead of capture."""
        self._staged_truth = truth

    def stage_phone(self, phone) -> None:
        """Runner ``phone_setup`` hook: stage the phone's ground truth."""
        self.stage_ground_truth(phone.ground_truth())

    # -- proxy callbacks -----------------------------------------------------

    def capture_start(self, meta) -> None:
        self._session = (meta.service, meta.os_name, meta.medium)
        self._pending = []
        self._closed = set()
        self._publish(self._session_start_event(meta, self._staged_truth))

    def tcp_connect(self, flow: Flow) -> None:
        if self._session is not None:
            self._pending.append(flow)

    def tcp_close(self, flow: Flow) -> None:
        if self._session is None:
            return
        self._closed.add(flow.flow_id)
        self._flush_closed_prefix()

    def capture_stop(self, trace) -> None:
        if self._session is None:
            return
        # Remaining open flows can't change once the capture is over.
        for flow in self._pending:
            self._publish(self._flow_event(self._session, flow))
        self._publish(self._session_end_event(self._session))
        self._session = None
        self._pending = []
        self._closed = set()
        self._staged_truth = {}

    def _flush_closed_prefix(self) -> None:
        flushed = 0
        for flow in self._pending:
            if flow.flow_id not in self._closed:
                break
            self._publish(self._flow_event(self._session, flow))
            self._closed.discard(flow.flow_id)
            flushed += 1
        if flushed:
            del self._pending[:flushed]
