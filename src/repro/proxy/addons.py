"""Bundled proxy addons.

Small mitmproxy-style addons used by the experiment harness: traffic
tagging, host blocking, and a live counter useful in tests and examples.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..http.message import Request, Response
from ..net.flow import Flow


class HostTagger:
    """Tag flows to specific hosts at connect time.

    The runner uses this to label OS-service traffic (Google Play
    Services, iCloud, …) so §3.2-style background filtering can drop it.
    """

    def __init__(self, tag: str, hostnames: Iterable) -> None:
        self.tag = tag
        self._exact: set = set()
        self._suffixes: list = []
        for name in hostnames:
            name = name.lower()
            if name.startswith("*."):
                self._suffixes.append(name[1:])  # keep the dot
            else:
                self._exact.add(name)

    def matches(self, hostname: str) -> bool:
        hostname = hostname.lower()
        if hostname in self._exact:
            return True
        return any(hostname.endswith(suffix) for suffix in self._suffixes)

    def tcp_connect(self, flow: Flow) -> None:
        if self.matches(flow.hostname):
            flow.tags.add(self.tag)


class FlowCounter:
    """Count connections, requests, and responses passing the proxy."""

    def __init__(self) -> None:
        self.connects = 0
        self.requests = 0
        self.responses = 0

    def tcp_connect(self, flow: Flow) -> None:
        self.connects += 1

    def request(self, flow: Flow, request: Request) -> None:
        self.requests += 1

    def response(self, flow: Flow, request: Request, response: Response) -> None:
        self.responses += 1


class RequestLogger:
    """Invoke a callback for each decrypted request (tests, debugging)."""

    def __init__(self, callback: Callable) -> None:
        self.callback = callback

    def request(self, flow: Flow, request: Request) -> None:
        self.callback(flow, request)
