"""Meddle-style interception proxy.

The paper captures traffic by tunneling handsets through Meddle (a VPN)
and decrypting TLS with mitmproxy.  :class:`InterceptionProxy` plays
both roles: it is a :class:`~repro.http.transport.Transport` factory
that sits between client sessions and the simulated network, records
every connection as a :class:`~repro.net.flow.Flow` in the active
:class:`~repro.net.trace.Trace`, and MITMs TLS with certificates minted
by its own CA.

Semantics mirror the real setup:

- Decryption works only if the device has installed (trusts) the proxy
  CA, which :meth:`repro.device.phone.Phone.connect_vpn` arranges.
- Apps that ship certificate pins abort the handshake under MITM (the
  reason the paper excludes Facebook/Twitter).  Hosts can be added to
  ``passthrough_hosts`` to tunnel them un-decrypted; their flows are
  then recorded with byte counts but no transaction payloads.
- mitmproxy-style addons get ``request``/``response``/``tcp_connect``/
  ``tcp_close`` callbacks plus ``capture_start``/``capture_stop``
  lifecycle hooks, and may tag flows (used for background-traffic
  labeling and for live export into the streaming analysis bus).
- A ``rewrite_request`` stage runs between the client and the network
  on decryptable flows: an addon may return a replacement
  :class:`~repro.http.message.Request` (forwarded and recorded in place
  of the original), a :class:`~repro.http.message.Response`
  (short-circuit: the network never sees the request), or a
  ``(Request, Response)`` pair (record the rewritten request *and*
  short-circuit).  Rewrite callbacks are transactional per addon: one
  that raises is logged to ``addon_errors`` and its rewrite is
  discarded, so a broken rewriter can never corrupt a flow mid-rewrite.
"""

from __future__ import annotations

from typing import Optional

from ..http.message import Request, Response, serialize_request, serialize_response
from ..http.transport import Network, NetworkError
from ..net.clock import SimClock
from ..net.dns import Resolver
from ..net.flow import CapturedRequest, CapturedResponse, Flow, HttpTransaction, TlsInfo
from ..net.trace import SessionMeta, Trace
from ..tls.certs import PROXY_CA, CaStore
from ..tls.handshake import HandshakeError, negotiate


class CaptureError(Exception):
    """Raised on invalid capture lifecycle operations."""


# Every addon callback the proxy resolves at registration time.
_ADDON_EVENTS = (
    "tcp_connect",
    "tcp_close",
    "rewrite_request",
    "request",
    "response",
    "capture_start",
    "capture_stop",
)


def _captured_request(request: Request) -> CapturedRequest:
    return CapturedRequest(
        method=request.method,
        url=str(request.url),
        headers=request.headers.items(),
        body=request.body,
    )


def _captured_response(response: Response) -> CapturedResponse:
    return CapturedResponse(
        status=response.status,
        reason=response.reason,
        headers=response.headers.items(),
        body=response.body,
    )


class InterceptionProxy:
    """Recording VPN/MITM proxy for one simulated network."""

    def __init__(
        self,
        network: Network,
        clock: SimClock,
        resolver: Optional[Resolver] = None,
        intercept_tls: bool = True,
        max_stored_body: Optional[int] = 2048,
    ) -> None:
        self.network = network
        self.clock = clock
        self.resolver = resolver if resolver is not None else Resolver(clock)
        self.intercept_tls = intercept_tls
        # Response bodies larger than this are truncated in the stored
        # trace (byte accounting still uses true wire sizes) — the same
        # trick mitmproxy uses to keep long captures in memory.
        self.max_stored_body = max_stored_body
        self.ca_issuer = PROXY_CA
        self.passthrough_hosts: set = set()
        self.addons: list = []
        # Addon callbacks that raise are isolated (mitmproxy semantics:
        # a broken addon logs an error, it does not kill the proxy).
        # Each entry is (event, callback qualname, repr(exception)).
        self.addon_errors: list = []
        self._callbacks: dict = {}  # event name -> [bound callbacks]
        self._trace: Optional[Trace] = None
        self._next_flow_id = 0
        self._next_port = 40000

    # -- capture lifecycle -------------------------------------------------

    @property
    def capturing(self) -> bool:
        return self._trace is not None

    def start_capture(self, meta: SessionMeta) -> None:
        """Begin recording flows into a fresh trace."""
        if self._trace is not None:
            raise CaptureError("capture already in progress")
        self._trace = Trace(meta=meta)
        self._emit("capture_start", meta)

    def stop_capture(self) -> Trace:
        """Stop recording and return the completed trace."""
        if self._trace is None:
            raise CaptureError("no capture in progress")
        trace, self._trace = self._trace, None
        self._emit("capture_stop", trace)
        return trace

    def add_addon(self, addon) -> None:
        """Register a mitmproxy-style addon (duck-typed callbacks)."""
        self.addons.append(addon)
        # Resolve callbacks once at registration: _emit runs twice per
        # transaction, so a getattr per addon per event adds up.
        for event in _ADDON_EVENTS:
            callback = getattr(addon, event, None)
            if callback is not None:
                self._callbacks.setdefault(event, []).append(callback)

    def remove_addon(self, addon) -> None:
        """Unregister an addon and drop its resolved callbacks."""
        if addon not in self.addons:
            return
        self.addons.remove(addon)
        self._callbacks = {}
        for remaining in self.addons:
            for event in _ADDON_EVENTS:
                callback = getattr(remaining, event, None)
                if callback is not None:
                    self._callbacks.setdefault(event, []).append(callback)

    _MAX_ADDON_ERRORS = 1000

    def _emit(self, event: str, *args) -> None:
        for callback in self._callbacks.get(event, ()):
            try:
                callback(*args)
            except Exception as exc:
                if len(self.addon_errors) < self._MAX_ADDON_ERRORS:
                    name = getattr(callback, "__qualname__", repr(callback))
                    self.addon_errors.append((event, name, repr(exc)))

    def _record_addon_error(self, event: str, callback, exc: Exception) -> None:
        if len(self.addon_errors) < self._MAX_ADDON_ERRORS:
            name = getattr(callback, "__qualname__", repr(callback))
            self.addon_errors.append((event, name, repr(exc)))

    def _apply_rewrites(self, flow: Flow, request: Request):
        """Run the request-rewrite stage; returns ``(request, response)``.

        ``response`` is ``None`` unless an addon short-circuited the
        dispatch.  Each addon is transactional: a callback that raises
        is recorded in ``addon_errors`` and the request it was handed
        stays in effect, so a partial rewrite never reaches the wire.
        With no rewrite addons registered this is a single dict lookup —
        the mitigation-off hot path stays unchanged.
        """
        callbacks = self._callbacks.get("rewrite_request")
        if not callbacks:
            return request, None
        for callback in callbacks:
            try:
                result = callback(flow, request)
            except Exception as exc:
                self._record_addon_error("rewrite_request", callback, exc)
                continue
            if result is None:
                continue
            if isinstance(result, Response):
                return request, result
            if isinstance(result, tuple):
                rewritten, response = result
                if rewritten is not None:
                    request = rewritten
                return request, response
            request = result
        return request, None

    # -- transport factory ---------------------------------------------------

    def transport_for(
        self,
        ca_store: CaStore,
        client_ip: str = "10.11.0.2",
        tags: Optional[set] = None,
    ) -> "ProxyTransport":
        """Build the transport a tunneled device uses.

        ``ca_store`` is the *device's* trust store — decryption succeeds
        only if it trusts this proxy's CA.  ``tags`` are attached to every
        flow from this transport (e.g. ``{"background"}``).
        """
        return ProxyTransport(self, ca_store, client_ip, tags or set())

    # -- internals used by ProxyConnection ----------------------------------

    def _open_flow(
        self, host: str, port: int, scheme: str, client_ip: str, tags: set
    ) -> Flow:
        server_ip = self.resolver.resolve(host)
        self._next_port += 1
        flow = Flow(
            flow_id=self._next_flow_id,
            ts_start=self.clock.now(),
            client_ip=client_ip,
            client_port=self._next_port,
            server_ip=server_ip,
            server_port=port,
            hostname=host.lower(),
            scheme=scheme,
            ts_end=self.clock.now(),
            tags=set(tags),
        )
        self._next_flow_id += 1
        if self._trace is not None:
            self._trace.add(flow)
        self._emit("tcp_connect", flow)
        return flow


class ProxyTransport:
    """Transport bound to one device's trust store and address."""

    def __init__(self, proxy: InterceptionProxy, ca_store: CaStore, client_ip: str, tags: set) -> None:
        self.proxy = proxy
        self.ca_store = ca_store
        self.client_ip = client_ip
        self.tags = tags

    def connect(self, host: str, port: int, scheme: str, enforce_pins: bool = False) -> "ProxyConnection":
        proxy = self.proxy
        if not proxy.network.knows(host):
            raise NetworkError(f"no route to host {host!r}")
        flow = proxy._open_flow(host, port, scheme, self.client_ip, self.tags)

        if scheme == "https":
            profile = proxy.network.tls_profile(host)
            intercept = proxy.intercept_tls and host.lower() not in proxy.passthrough_hosts
            try:
                result = negotiate(
                    profile,
                    self.ca_store,
                    proxy.clock.now(),
                    intercept=intercept,
                    enforce_pins=enforce_pins,
                )
            except HandshakeError as exc:
                flow.tls = TlsInfo(sni=host, pinned=profile.app_pins is not None, intercepted=False)
                flow.tags.add("tls-failed")
                raise NetworkError(f"TLS handshake failed for {host}: {exc}") from exc
            flow.tls = TlsInfo(
                sni=result.sni,
                version=result.version,
                cipher=result.cipher,
                pinned=result.pinned,
                intercepted=result.intercepted,
            )
        return ProxyConnection(proxy, flow)


class ProxyConnection:
    """One recorded connection through the proxy."""

    def __init__(self, proxy: InterceptionProxy, flow: Flow) -> None:
        self.proxy = proxy
        self.flow = flow
        self._closed = False

    def send(self, request: Request) -> Response:
        if self._closed:
            raise NetworkError("send on closed connection")
        if request.host != self.flow.hostname:
            raise NetworkError(
                f"request host {request.host!r} does not match connection "
                f"host {self.flow.hostname!r}"
            )
        proxy = self.proxy
        decryptable = self.flow.tls is None or self.flow.tls.intercepted

        short_circuit = None
        if decryptable:
            request, short_circuit = proxy._apply_rewrites(self.flow, request)
            proxy._emit("request", self.flow, request)
        if short_circuit is not None:
            response = short_circuit
        else:
            response = proxy.network.dispatch(request)
        if decryptable:
            proxy._emit("response", self.flow, request, response)
            captured_response = _captured_response(response)
            wire_down = captured_response.size + 40
            limit = proxy.max_stored_body
            if limit is not None and len(captured_response.body) > limit:
                captured_response.body = captured_response.body[:limit]
            txn = HttpTransaction(
                timestamp=proxy.clock.now(),
                request=_captured_request(request),
                response=captured_response,
            )
            self.flow.add_transaction(txn, bytes_down=wire_down)
        else:
            # Pinned / passthrough: payload is opaque, count bytes only.
            self.flow.account_opaque(
                len(serialize_request(request)), len(serialize_response(response))
            )
            self.flow.ts_end = proxy.clock.now()
        return response

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.proxy._emit("tcp_close", self.flow)
