"""Meddle/mitmproxy substrate: recording VPN proxy with TLS interception."""

from .addons import FlowCounter, HostTagger, RequestLogger
from .meddle import CaptureError, InterceptionProxy, ProxyConnection, ProxyTransport

__all__ = [
    "CaptureError",
    "FlowCounter",
    "HostTagger",
    "InterceptionProxy",
    "ProxyConnection",
    "ProxyTransport",
    "RequestLogger",
]
