"""Adblock Plus filter-list engine.

The paper categorizes third-party flows as advertising & analytics by
matching destination domains against EasyList (§3.2 "Domain
Categorization").  This module implements the portions of the ABP filter
syntax that EasyList's network rules use:

- ``!`` comments and ``[Adblock Plus x.y]`` headers
- domain-anchored rules ``||example.com^``
- start/end anchors ``|`` and plain substring rules with ``*`` wildcards
- the separator token ``^``
- exception rules ``@@...``
- the options we need: ``third-party``/``~third-party``, resource types
  (``script``, ``image``, ``subdocument``, ``xmlhttprequest``, ``other``),
  and ``domain=a.com|~b.com`` restrictions

Element-hiding rules (``##``) are recognized and skipped — they act on
page DOM, which does not exist in a traffic trace.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .psl import same_party

_RESOURCE_TYPES = {"script", "image", "subdocument", "xmlhttprequest", "stylesheet", "other"}


class FilterSyntaxError(ValueError):
    """Raised for rules the parser cannot interpret."""


@dataclass
class FilterOptions:
    """Parsed ``$option`` constraints for one rule."""

    third_party: Optional[bool] = None
    resource_types: set = field(default_factory=set)
    inverse_types: set = field(default_factory=set)
    include_domains: set = field(default_factory=set)
    exclude_domains: set = field(default_factory=set)

    def permits(self, is_third_party: bool, resource_type: str, page_domain: str) -> bool:
        if self.third_party is not None and is_third_party != self.third_party:
            return False
        rtype = resource_type or "other"
        if self.resource_types and rtype not in self.resource_types:
            return False
        if self.inverse_types and rtype in self.inverse_types:
            return False
        page = page_domain.lower()
        if self.include_domains and not _domain_in(page, self.include_domains):
            return False
        if self.exclude_domains and _domain_in(page, self.exclude_domains):
            return False
        return True


def _domain_in(host: str, domains: set) -> bool:
    return any(host == d or host.endswith("." + d) for d in domains)


@dataclass
class Filter:
    """One parsed network rule."""

    raw: str
    pattern: re.Pattern
    exception: bool
    options: FilterOptions
    # Index metadata (see repro.trackerdb.index): the ``||`` anchor
    # domain if any, whether the address part can only ever depend on
    # the request host (pure ``||domain^`` rules), and a lowercase
    # literal shingle every match of a non-anchored rule must contain.
    anchor_domain: Optional[str] = None
    host_only: bool = False
    shingle: str = ""

    def matches(
        self,
        url: str,
        is_third_party: bool = True,
        resource_type: str = "other",
        page_domain: str = "",
    ) -> bool:
        if not self.options.permits(is_third_party, resource_type, page_domain):
            return False
        return self.pattern.search(url) is not None


def _pattern_to_regex(pattern: str) -> re.Pattern:
    """Translate an ABP address pattern to a compiled regex."""
    out = []
    i = 0
    anchored_start = False
    if pattern.startswith("||"):
        # Domain anchor: scheme plus any subdomain chain.
        out.append(r"^[a-z][a-z0-9+.-]*://([^/?#]*\.)?")
        pattern = pattern[2:]
        anchored_start = True
    elif pattern.startswith("|"):
        out.append("^")
        pattern = pattern[1:]
        anchored_start = True
    if not anchored_start:
        out.append("")
    anchored_end = pattern.endswith("|")
    if anchored_end:
        pattern = pattern[:-1]
    for char in pattern:
        if char == "*":
            out.append(".*")
        elif char == "^":
            # Separator: anything but letter/digit/_-.% — or end of URL.
            out.append(r"(?:[^\w.%-]|$)")
        else:
            out.append(re.escape(char))
    if anchored_end:
        out.append("$")
    return re.compile("".join(out), re.IGNORECASE)


def _parse_options(blob: str) -> FilterOptions:
    options = FilterOptions()
    for raw in blob.split(","):
        token = raw.strip()
        if not token:
            continue
        lowered = token.lower()
        if lowered == "third-party":
            options.third_party = True
        elif lowered == "~third-party":
            options.third_party = False
        elif lowered in _RESOURCE_TYPES:
            options.resource_types.add(lowered)
        elif lowered.startswith("~") and lowered[1:] in _RESOURCE_TYPES:
            options.inverse_types.add(lowered[1:])
        elif lowered.startswith("domain="):
            for dom in token[len("domain=") :].split("|"):
                dom = dom.strip().lower()
                if not dom:
                    continue
                if dom.startswith("~"):
                    options.exclude_domains.add(dom[1:])
                else:
                    options.include_domains.add(dom)
        else:
            # Unknown options make the rule unenforceable; EasyList
            # consumers conventionally drop such rules.
            raise FilterSyntaxError(f"unsupported option {token!r}")
    return options


_ANCHOR_BREAK = re.compile(r"[\^/*|?]")
_HOSTNAME_RE = re.compile(r"[a-z0-9.-]+\Z")


def _index_metadata(body: str) -> tuple:
    """Derive ``(anchor_domain, host_only, shingle)`` for one rule body.

    - ``anchor_domain``: for ``||domain...`` rules, the anchor; such a
      rule can only match URLs whose request host is the anchor or a
      subdomain of it (the compiled regex confines the anchor to the
      authority component).
    - ``host_only``: true for pure ``||domain^`` / ``||domain`` rules,
      whose address match is fully determined by the request host.
    - ``shingle``: for non-anchored rules, a lowercase literal substring
      (up to 8 bytes, from the longest wildcard-free segment) that any
      matching URL must contain — the index's cheap prescreen.
    """
    if body.startswith("||"):
        core = body[2:]
        cut = _ANCHOR_BREAK.search(core)
        anchor = core[: cut.start()] if cut else core
        rest = core[cut.start() :] if cut else ""
        # The anchor is a true domain anchor only when a separator
        # terminates it (``^``, ``/``, or the end anchor ``|``): then the
        # request host must be the anchor or a subdomain of it.  A bare
        # ``||ads`` also matches hosts merely *starting* with "ads", so
        # it falls through to the shingle bucket below.
        if anchor and rest and rest[0] in "^/|" and _HOSTNAME_RE.match(anchor.lower()):
            return (anchor.lower(), rest == "^", "")
    segments = [s for s in re.split(r"[\^*|]", body) if s]
    if not segments:
        return (None, False, "")
    longest = max(segments, key=len)
    return (None, False, longest.lower()[:8])


def parse_filter(line: str) -> Optional[Filter]:
    """Parse one list line; returns None for comments/unsupported rules."""
    raw = line.strip()
    if not raw or raw.startswith("!") or raw.startswith("["):
        return None
    if "##" in raw or "#@#" in raw or "#?#" in raw:
        return None  # element hiding — no network effect
    exception = raw.startswith("@@")
    body = raw[2:] if exception else raw
    options = FilterOptions()
    if "$" in body:
        body, _, option_blob = body.rpartition("$")
        try:
            options = _parse_options(option_blob)
        except FilterSyntaxError:
            return None
    if not body:
        return None
    anchor_domain, host_only, shingle = _index_metadata(body)
    return Filter(
        raw=raw,
        pattern=_pattern_to_regex(body),
        exception=exception,
        options=options,
        anchor_domain=anchor_domain,
        host_only=host_only,
        shingle=shingle,
    )


_VERDICT_CACHE_MAX = 8192
_MISS = object()


class FilterList:
    """A compiled filter list with EasyList matching semantics.

    ``match`` consults a candidate index (see
    :mod:`repro.trackerdb.index`) so a URL only probes the rules that
    could possibly fire, and memoizes per-host verdicts when the
    candidate set is host-pure.  ``match_linear`` keeps the original
    whole-list scan as the reference the index is verified against.
    """

    def __init__(self, filters: Iterable) -> None:
        self.blocking: list = []
        self.exceptions: list = []
        for item in filters:
            if item is None:
                continue
            if item.exception:
                self.exceptions.append(item)
            else:
                self.blocking.append(item)
        self._index = None
        self._verdicts: dict = {}

    @classmethod
    def parse(cls, text: str) -> "FilterList":
        """Compile a list from raw EasyList text."""
        return cls(parse_filter(line) for line in text.splitlines())

    def __len__(self) -> int:
        return len(self.blocking) + len(self.exceptions)

    def _ensure_index(self) -> tuple:
        if self._index is None:
            from .index import FilterIndex

            self._index = (
                FilterIndex(self.exceptions),
                FilterIndex(self.blocking),
            )
        return self._index

    def match(
        self,
        url: str,
        page_host: str = "",
        resource_type: str = "other",
    ) -> Optional[Filter]:
        """Return the blocking rule that fires for ``url``, if any.

        ``page_host`` is the host of the page/app context the request
        came from; third-partyness is derived from it.  Exception rules
        (``@@``) veto matching blocking rules, as in ABP.
        """
        request_host = _host_of(url)
        if page_host:
            third_party = not same_party(request_host, page_host)
        else:
            third_party = True
        from .psl import domain_key

        page_domain = domain_key(page_host) if page_host else ""
        exception_index, blocking_index = self._ensure_index()
        url_lower = url.lower()
        exception_rules, exceptions_pure = exception_index.candidates(
            url_lower, request_host
        )
        blocking_rules, blocking_pure = blocking_index.candidates(
            url_lower, request_host
        )
        cacheable = exceptions_pure and blocking_pure
        if cacheable:
            key = (request_host, third_party, resource_type, page_domain)
            cached = self._verdicts.get(key, _MISS)
            if cached is not _MISS:
                return cached
        verdict: Optional[Filter] = None
        for rule in exception_rules:
            if rule.matches(url, third_party, resource_type, page_domain):
                break
        else:
            for rule in blocking_rules:
                if rule.matches(url, third_party, resource_type, page_domain):
                    verdict = rule
                    break
        if cacheable:
            if len(self._verdicts) >= _VERDICT_CACHE_MAX:
                self._verdicts.clear()
            self._verdicts[key] = verdict
        return verdict

    def match_linear(
        self,
        url: str,
        page_host: str = "",
        resource_type: str = "other",
    ) -> Optional[Filter]:
        """Reference path: probe every rule in list order (seed engine)."""
        request_host = _host_of(url)
        if page_host:
            third_party = not same_party(request_host, page_host)
        else:
            third_party = True
        from .psl import domain_key

        page_domain = domain_key(page_host) if page_host else ""
        for rule in self.exceptions:
            if rule.matches(url, third_party, resource_type, page_domain):
                return None
        for rule in self.blocking:
            if rule.matches(url, third_party, resource_type, page_domain):
                return rule
        return None

    def matches(self, url: str, page_host: str = "", resource_type: str = "other") -> bool:
        return self.match(url, page_host, resource_type) is not None


def _host_of(url: str) -> str:
    rest = url.split("://", 1)[-1]
    host = rest.split("/", 1)[0].split("?", 1)[0]
    return host.split(":", 1)[0].lower()
