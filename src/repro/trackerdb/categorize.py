"""Flow categorization: first-party, A&A third-party, other third-party.

Implements §3.2 "Domain Categorization": first-party flows are the ones
whose destination belongs to the service's own domains; the remaining
third-party flows are labeled advertising & analytics when they match
EasyList; OS-service flows (tagged by the capture addon or matched by
hostname) are excluded from analysis entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..net.flow import Flow
from .abpfilter import FilterList
from .easylist import bundled_easylist
from .psl import domain_key

FIRST_PARTY = "first_party"
THIRD_PARTY_AA = "third_party_aa"
THIRD_PARTY_OTHER = "third_party_other"
OS_SERVICE = "os_service"


@dataclass(frozen=True)
class FlowCategory:
    """Categorization verdict for one flow."""

    label: str
    domain: str  # registrable domain of the destination
    matched_rule: Optional[str] = None  # EasyList rule text when A&A

    @property
    def is_first_party(self) -> bool:
        return self.label == FIRST_PARTY

    @property
    def is_aa(self) -> bool:
        return self.label == THIRD_PARTY_AA

    @property
    def is_third_party(self) -> bool:
        return self.label in (THIRD_PARTY_AA, THIRD_PARTY_OTHER)

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "domain": self.domain,
            "matched_rule": self.matched_rule,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FlowCategory":
        return cls(
            label=data["label"],
            domain=data["domain"],
            matched_rule=data.get("matched_rule"),
        )


class Categorizer:
    """Categorizes flows for one service under test.

    ``first_party_domains`` are the registrable domains manually
    identified as belonging to the service (the paper's weather.com +
    imwx.com example).  ``sso_domains`` are single-sign-on providers,
    which the leak policy treats like the first party for credentials.
    """

    def __init__(
        self,
        first_party_domains: Iterable,
        filter_list: Optional[FilterList] = None,
        os_service_hosts: Iterable = (),
        sso_domains: Iterable = (),
    ) -> None:
        self.first_party_domains = {domain_key(d) for d in first_party_domains}
        if not self.first_party_domains:
            raise ValueError("a service needs at least one first-party domain")
        self.filter_list = filter_list if filter_list is not None else bundled_easylist()
        self.os_service_hosts = {h.lower() for h in os_service_hosts}
        self.sso_domains = {domain_key(d) for d in sso_domains}

    def primary_domain(self) -> str:
        return sorted(self.first_party_domains)[0]

    def is_first_party_host(self, hostname: str) -> bool:
        return domain_key(hostname) in self.first_party_domains

    def is_sso_host(self, hostname: str) -> bool:
        return domain_key(hostname) in self.sso_domains

    def categorize_host(self, hostname: str, url: str = "") -> FlowCategory:
        """Categorize by destination host (and URL for path rules)."""
        host = hostname.lower()
        domain = domain_key(host)
        if host in self.os_service_hosts:
            return FlowCategory(label=OS_SERVICE, domain=domain)
        if domain in self.first_party_domains:
            return FlowCategory(label=FIRST_PARTY, domain=domain)
        page_host = self.primary_domain()
        target = url or f"https://{host}/"
        rule = self.filter_list.match(target, page_host=page_host)
        if rule is not None:
            return FlowCategory(label=THIRD_PARTY_AA, domain=domain, matched_rule=rule.raw)
        return FlowCategory(label=THIRD_PARTY_OTHER, domain=domain)

    def categorize_flow(self, flow: Flow) -> FlowCategory:
        """Categorize a captured flow (tags win over hostname matching)."""
        if "os-service" in flow.tags or "background" in flow.tags:
            return FlowCategory(label=OS_SERVICE, domain=domain_key(flow.hostname))
        url = ""
        if flow.transactions:
            url = flow.transactions[0].request.url
        return self.categorize_host(flow.hostname, url=url)

    def split(self, flows: Iterable) -> dict:
        """Bucket flows by category label."""
        buckets: dict = {
            FIRST_PARTY: [],
            THIRD_PARTY_AA: [],
            THIRD_PARTY_OTHER: [],
            OS_SERVICE: [],
        }
        for flow in flows:
            buckets[self.categorize_flow(flow).label].append(flow)
        return buckets
