"""Candidate-rule indexing for ABP filter lists.

The seed engine answered ``FilterList.match`` by trying every rule's
regex against the URL.  Real EasyList has tens of thousands of rules, and
even the bundled list pays ~100 regex probes per flow; §3.2's domain
categorization runs once per captured flow, so this is squarely on the
hot path.

The index exploits the structure :func:`repro.trackerdb.abpfilter
._index_metadata` extracts per rule:

- **Domain-anchored rules** (``||domain…`` terminated by a separator)
  can only match URLs whose request host is the anchor or one of its
  subdomains.  They are bucketed by anchor; a lookup walks the host's
  dot-suffix chain (``a.b.c`` → ``a.b.c``, ``b.c``, ``c``) and collects
  the rules hanging off each suffix.
- **Everything else** keeps a lowercase literal *shingle* (≤8 bytes from
  the longest wildcard-free segment).  A rule is a candidate only when
  its shingle occurs in the lowered URL — a C-speed substring test.

Candidates preserve list order, so "first matching rule wins" semantics
are unchanged; the equivalence tests assert the indexed engine agrees
with the retained linear scan (``FilterList.match_linear``) on every
bundled rule.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple


class FilterIndex:
    """Candidate lookup over one ordered group of filters."""

    def __init__(self, filters: Iterable) -> None:
        self._anchored: dict = {}  # anchor domain -> [(order, rule)]
        self._generic: list = []  # [(order, rule)]  (shingle may be "")
        for order, rule in enumerate(filters):
            if rule.anchor_domain is not None:
                self._anchored.setdefault(rule.anchor_domain, []).append(
                    (order, rule)
                )
            else:
                self._generic.append((order, rule))

    def candidates(self, url_lower: str, request_host: str) -> Tuple[list, bool]:
        """Rules that could match ``url_lower`` for ``request_host``.

        Returns ``(rules, host_pure)`` where ``rules`` is in original
        list order and ``host_pure`` is true when every candidate's
        address match is fully determined by the request host — the
        precondition for memoizing the verdict per host.
        """
        picked: List[tuple] = []
        host_pure = True
        anchored = self._anchored
        if anchored:
            suffix = request_host
            while True:
                bucket = anchored.get(suffix)
                if bucket:
                    for entry in bucket:
                        picked.append(entry)
                        if not entry[1].host_only:
                            host_pure = False
                dot = suffix.find(".")
                if dot < 0:
                    break
                suffix = suffix[dot + 1 :]
        for entry in self._generic:
            shingle = entry[1].shingle
            if not shingle or shingle in url_lower:
                picked.append(entry)
                host_pure = False
        picked.sort()
        return ([rule for _, rule in picked], host_pure)
