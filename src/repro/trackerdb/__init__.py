"""EasyList substrate: ABP filters, public-suffix logic, categorization."""

from .abpfilter import Filter, FilterList, FilterOptions, parse_filter
from .categorize import (
    FIRST_PARTY,
    OS_SERVICE,
    THIRD_PARTY_AA,
    THIRD_PARTY_OTHER,
    Categorizer,
    FlowCategory,
)
from .easylist import EASYLIST_TEXT, bundled_easylist
from .index import FilterIndex
from .psl import DomainError, domain_key, public_suffix, registrable_domain, same_party

__all__ = [
    "Categorizer",
    "DomainError",
    "EASYLIST_TEXT",
    "FIRST_PARTY",
    "Filter",
    "FilterIndex",
    "FilterList",
    "FilterOptions",
    "FlowCategory",
    "OS_SERVICE",
    "THIRD_PARTY_AA",
    "THIRD_PARTY_OTHER",
    "bundled_easylist",
    "domain_key",
    "parse_filter",
    "public_suffix",
    "registrable_domain",
    "same_party",
]
