"""Public-suffix handling and registrable-domain (eTLD+1) extraction.

First/third-party decisions in the study hinge on registrable domains:
``ads.weather.com`` is first-party to ``weather.com``, while
``doubleclick.net`` is not.  We embed the slice of the public suffix
list relevant to the simulated world (common gTLDs and ccTLD second
levels) rather than shipping the full Mozilla list.
"""

from __future__ import annotations

from functools import lru_cache

# Plain suffixes: a domain label sequence ending in one of these has its
# registrable domain one label further left.
_SUFFIXES = {
    "com", "net", "org", "edu", "gov", "mil", "int", "info", "biz", "io",
    "co", "tv", "me", "mobi", "app", "dev", "news", "example", "test",
    "local", "ai", "ly", "fm", "us", "uk", "de", "fr", "jp", "cn", "au",
    "ca", "in", "br", "ru", "es", "it", "nl", "se", "no",
    # second-level public suffixes
    "co.uk", "org.uk", "ac.uk", "gov.uk", "com.au", "net.au", "org.au",
    "co.jp", "ne.jp", "or.jp", "com.br", "com.cn", "co.in", "co.nz",
}

_MAX_SUFFIX_LABELS = max(s.count(".") + 1 for s in _SUFFIXES)


class DomainError(ValueError):
    """Raised for hostnames with no registrable domain (bare suffixes, IPs)."""


def is_ip_literal(hostname: str) -> bool:
    """True for dotted-quad IPv4 literals (no PSL semantics apply)."""
    parts = hostname.split(".")
    return len(parts) == 4 and all(p.isdigit() for p in parts)


def public_suffix(hostname: str) -> str:
    """Return the longest matching public suffix of ``hostname``.

    Unknown TLDs fall back to the final label, mirroring the PSL's
    implicit ``*`` rule.
    """
    name = hostname.lower().rstrip(".")
    labels = name.split(".")
    for take in range(min(_MAX_SUFFIX_LABELS, len(labels)), 0, -1):
        candidate = ".".join(labels[-take:])
        if candidate in _SUFFIXES:
            return candidate
    return labels[-1]


def registrable_domain(hostname: str) -> str:
    """Return the eTLD+1 of ``hostname``.

    Raises :class:`DomainError` when the hostname *is* a public suffix
    or an IP literal — callers treat those as their own party.
    """
    name = hostname.lower().rstrip(".")
    if not name:
        raise DomainError("empty hostname")
    if is_ip_literal(name):
        raise DomainError(f"IP literal has no registrable domain: {name}")
    suffix = public_suffix(name)
    if name == suffix:
        raise DomainError(f"hostname is a bare public suffix: {name}")
    suffix_labels = suffix.count(".") + 1
    labels = name.split(".")
    if len(labels) < suffix_labels + 1:
        raise DomainError(f"hostname too short for suffix {suffix!r}: {name}")
    return ".".join(labels[-(suffix_labels + 1) :])


@lru_cache(maxsize=16384)
def same_party(host_a: str, host_b: str) -> bool:
    """True when two hostnames share a registrable domain."""
    try:
        return registrable_domain(host_a) == registrable_domain(host_b)
    except DomainError:
        return host_a.lower() == host_b.lower()


@lru_cache(maxsize=16384)
def domain_key(hostname: str) -> str:
    """Registrable domain, falling back to the raw host for odd names.

    This is the grouping key the analysis uses everywhere a "domain" is
    counted (Table 2 groups A&A recipients by registrable domain).
    """
    try:
        return registrable_domain(hostname)
    except DomainError:
        return hostname.lower().rstrip(".")
