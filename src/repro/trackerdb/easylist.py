"""The bundled filter list for the simulated world.

EasyList is an independently curated artifact; this module plays that
role for the reproduction.  The rules below cover the advertising and
analytics organizations in :mod:`repro.services.thirdparty` (a test
asserts the coverage stays complete), exercise the main ABP syntax
features, and deliberately *exclude* CDNs and identity providers —
Gigya-style credential managers are not in EasyList, which is precisely
why the paper had to spot those password flows manually.
"""

from __future__ import annotations

from .abpfilter import FilterList

EASYLIST_TEXT = """\
[Adblock Plus 2.0]
! Title: repro EasyList (simulated-world edition)
! Homepage: https://easylist.github.io/
! ---------------- ad servers and exchanges ----------------
||amobee.com^
||vrvm.com^
||serving-sys.com^
||googlesyndication.com^
||2mdn.net^
||247realmedia.com^
||liftoff.io^
||doubleclick.net^
||adnxs.com^
||rubiconproject.com^
||pubmatic.com^
||openx.net^
||casalemedia.com^
||mopub.com^
||amazon-adsystem.com^$third-party
||taboola.com^
||outbrain.com^
||advertising.com^
||mathtag.com^
||adsrvr.org^
||bidswitch.net^
||smartadserver.com^
||yieldmo.com^
||gumgum.com^
||sharethrough.com^
||indexexchange.com^
||criteo.com^
||adtechus.com^
||contextweb.com^
||lijit.com^
||sonobi.com^
||spotxchange.com^
||tremorhub.com^
||teads.tv^
||stickyadstv.com^
||adform.net^
||zergnet.com^
||revcontent.com^
||mgid.com^
||triplelift.com^
||3lift.net^
||media-net.com^
! ---------------- analytics and measurement ----------------
||google-analytics.com^
||groceryserver.com^
||marinsm.com^
||monetate.net^
||krxd.net^
||cloudinary.com^$third-party
||webtrends.com^
||webtrendslive.com^
||taplytics.com^
||scorecardresearch.com^
||quantserve.com^
||chartbeat.com^
||chartbeat.net^
||crashlytics.com^
||flurry.com^
||adjust.com^
||appsflyer.com^
||branch.io^
||bluekai.com^
||demdex.net^
||omtrdc.net^
||newrelic.com^
||nr-data.net^
||optimizely.com^
||mixpanel.com^
||kochava.com^
! ---------------- verification / viewability ----------------
||moatads.com^
||doubleverify.com^
! ---------------- tag managers ----------------
||thebrighttag.com^
||tiqcdn.com^
||googletagmanager.com^
||googletagservices.com^
! Facebook's social/ads endpoints, but not the site itself when first-party
||facebook.com^$third-party
||facebook.net^$third-party
! ---------------- generic path patterns ----------------
/advert/*$third-party
/adserver/^
&ad_unit=
! ---------------- exceptions ----------------
@@||cloudinary.com/img/product/^
@@||facebook.com/docs/^
"""

_compiled: FilterList = None  # type: ignore[assignment]


def bundled_easylist() -> FilterList:
    """Return the compiled bundled list (cached after first call)."""
    global _compiled
    if _compiled is None:
        _compiled = FilterList.parse(EASYLIST_TEXT)
    return _compiled
