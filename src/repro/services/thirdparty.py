"""The advertising & analytics (A&A) third-party ecosystem.

This registry defines every third-party organization in the simulated
world: the A&A domains the paper's Table 2 reports (amobee, moatads,
google-analytics, …), the password recipients from §4.2 (taplytics,
usablenet, Gigya), and enough additional ad-tech players to give web
pages their characteristic fan-out (RTB exchanges that redirect through
partners, cookie-sync chains, viewability scripts).

Each entry declares which media integrate it (app SDK, web tag, or
both), its role, and its RTB partners.  The concrete traffic behaviour
lives in :mod:`repro.services.adsdk` (app side) and
:mod:`repro.services.webtracker` (web side + server handlers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

# Roles determine server behaviour and list membership.
ANALYTICS = "analytics"  # collect beacons, SDK telemetry
AD_NETWORK = "ad_network"  # serves creatives
AD_EXCHANGE = "ad_exchange"  # RTB: redirects through partners
TAG_MANAGER = "tag_manager"  # loads further tags
VERIFICATION = "verification"  # viewability/fraud scripts
IDENTITY = "identity"  # third-party login/credential management
CDN = "cdn"  # content delivery; NOT advertising & analytics

AA_ROLES = frozenset({ANALYTICS, AD_NETWORK, AD_EXCHANGE, TAG_MANAGER, VERIFICATION})


@dataclass(frozen=True)
class ThirdParty:
    """One third-party organization."""

    name: str
    domain: str  # registrable domain
    role: str
    media: tuple = ("app", "web")  # which platforms integrate it
    hosts: tuple = ()  # concrete hostnames; default derives from domain
    rtb_partners: tuple = ()  # registrable domains of sync partners
    supports_http: bool = False  # offers plaintext endpoints

    @property
    def is_aa(self) -> bool:
        return self.role in AA_ROLES

    @property
    def hostnames(self) -> tuple:
        if self.hosts:
            return self.hosts
        return (self.domain, f"www.{self.domain}")

    @property
    def beacon_host(self) -> str:
        return self.hostnames[0]


_REGISTRY: dict = {}


def _add(party: ThirdParty) -> ThirdParty:
    if party.domain in _REGISTRY:
        raise ValueError(f"duplicate third party {party.domain}")
    _REGISTRY[party.domain] = party
    return party


# --- Table 2 A&A domains (top-20 recipients in the paper) -------------------

AMOBEE = _add(ThirdParty("Amobee", "amobee.com", AD_NETWORK, hosts=("rrtb.amobee.com", "ads.amobee.com"), supports_http=True))
MOATADS = _add(ThirdParty("Moat", "moatads.com", VERIFICATION, hosts=("z.moatads.com", "px.moatads.com")))
VRVM = _add(ThirdParty("Verve", "vrvm.com", AD_NETWORK, media=("app",), hosts=("adcel.vrvm.com",), supports_http=True))
GOOGLE_ANALYTICS = _add(ThirdParty("Google Analytics", "google-analytics.com", ANALYTICS, hosts=("www.google-analytics.com", "ssl.google-analytics.com"), supports_http=True))
FACEBOOK = _add(ThirdParty("Facebook", "facebook.com", AD_NETWORK, hosts=("graph.facebook.com", "connect.facebook.net", "www.facebook.com")))
GROCERYSERVER = _add(ThirdParty("GroceryServer", "groceryserver.com", ANALYTICS, media=("app",), hosts=("api.groceryserver.com",), supports_http=True))
SERVING_SYS = _add(ThirdParty("Sizmek", "serving-sys.com", AD_NETWORK, hosts=("bs.serving-sys.com", "secure-ds.serving-sys.com")))
GOOGLESYNDICATION = _add(ThirdParty("Google Ads", "googlesyndication.com", AD_NETWORK, hosts=("pagead2.googlesyndication.com", "tpc.googlesyndication.com")))
THEBRIGHTTAG = _add(ThirdParty("Signal/BrightTag", "thebrighttag.com", TAG_MANAGER, hosts=("s.thebrighttag.com",)))
TIQCDN = _add(ThirdParty("Tealium", "tiqcdn.com", TAG_MANAGER, hosts=("tags.tiqcdn.com",)))
MARINSM = _add(ThirdParty("Marin Software", "marinsm.com", ANALYTICS, hosts=("tracker.marinsm.com",)))
CRITEO = _add(ThirdParty("Criteo", "criteo.com", AD_EXCHANGE, hosts=("bidder.criteo.com", "sslwidget.criteo.com"), rtb_partners=("bidswitch.net", "adsrvr.org")))
TWOMDN = _add(ThirdParty("DoubleClick CDN", "2mdn.net", AD_NETWORK, hosts=("s0.2mdn.net",)))
MONETATE = _add(ThirdParty("Monetate", "monetate.net", ANALYTICS, hosts=("sb.monetate.net",)))
REALMEDIA = _add(ThirdParty("24/7 Real Media", "247realmedia.com", AD_NETWORK, hosts=("oascentral.247realmedia.com",), supports_http=True))
KRXD = _add(ThirdParty("Krux", "krxd.net", ANALYTICS, hosts=("beacon.krxd.net", "cdn.krxd.net")))
DOUBLEVERIFY = _add(ThirdParty("DoubleVerify", "doubleverify.com", VERIFICATION, hosts=("cdn.doubleverify.com", "tps.doubleverify.com")))
CLOUDINARY = _add(ThirdParty("Cloudinary", "cloudinary.com", ANALYTICS, media=("web",), hosts=("res.cloudinary.com",)))
WEBTRENDS = _add(ThirdParty("Webtrends", "webtrends.com", ANALYTICS, hosts=("s.webtrends.com", "statse.webtrendslive.com")))
LIFTOFF = _add(ThirdParty("Liftoff", "liftoff.io", AD_NETWORK, media=("app",), hosts=("impression-east.liftoff.io",)))

# --- §4.2 password recipients -------------------------------------------------

TAPLYTICS = _add(ThirdParty("Taplytics", "taplytics.com", ANALYTICS, media=("app",), hosts=("api.taplytics.com",)))
USABLENET = _add(ThirdParty("Usablenet", "usablenet.com", IDENTITY, hosts=("ticket.usablenet.com",)))
GIGYA = _add(ThirdParty("Gigya", "gigya.com", IDENTITY, hosts=("accounts.gigya.com", "cdns.gigya.com")))

# --- wider ad-tech ecosystem (volume, RTB fan-out, cookie syncing) ------------

DOUBLECLICK = _add(ThirdParty("DoubleClick", "doubleclick.net", AD_EXCHANGE, hosts=("ad.doubleclick.net", "stats.g.doubleclick.net", "cm.g.doubleclick.net"), rtb_partners=("adnxs.com", "criteo.com", "mathtag.com", "bluekai.com")))
ADNXS = _add(ThirdParty("AppNexus", "adnxs.com", AD_EXCHANGE, hosts=("ib.adnxs.com", "secure.adnxs.com"), rtb_partners=("rubiconproject.com", "adsrvr.org"), supports_http=True))
RUBICON = _add(ThirdParty("Rubicon Project", "rubiconproject.com", AD_EXCHANGE, hosts=("fastlane.rubiconproject.com", "pixel.rubiconproject.com"), rtb_partners=("pubmatic.com",)))
PUBMATIC = _add(ThirdParty("PubMatic", "pubmatic.com", AD_EXCHANGE, hosts=("ads.pubmatic.com", "image2.pubmatic.com"), rtb_partners=("openx.net",)))
OPENX = _add(ThirdParty("OpenX", "openx.net", AD_EXCHANGE, hosts=("u.openx.net",), supports_http=True))
CASALE = _add(ThirdParty("Casale Media", "casalemedia.com", AD_EXCHANGE, hosts=("dsum.casalemedia.com",), rtb_partners=("bidswitch.net",)))
SCORECARD = _add(ThirdParty("comScore", "scorecardresearch.com", ANALYTICS, hosts=("b.scorecardresearch.com", "sb.scorecardresearch.com"), supports_http=True))
QUANTSERVE = _add(ThirdParty("Quantcast", "quantserve.com", ANALYTICS, hosts=("pixel.quantserve.com", "edge.quantserve.com")))
CHARTBEAT = _add(ThirdParty("Chartbeat", "chartbeat.com", ANALYTICS, media=("web",), hosts=("ping.chartbeat.net", "static.chartbeat.com"), supports_http=True))
CRASHLYTICS = _add(ThirdParty("Crashlytics", "crashlytics.com", ANALYTICS, media=("app",), hosts=("settings.crashlytics.com", "reports.crashlytics.com")))
FLURRY = _add(ThirdParty("Flurry", "flurry.com", ANALYTICS, media=("app",), hosts=("data.flurry.com",), supports_http=True))
ADJUST = _add(ThirdParty("Adjust", "adjust.com", ANALYTICS, media=("app",), hosts=("app.adjust.com",)))
APPSFLYER = _add(ThirdParty("AppsFlyer", "appsflyer.com", ANALYTICS, media=("app",), hosts=("t.appsflyer.com",)))
BRANCH = _add(ThirdParty("Branch", "branch.io", ANALYTICS, media=("app",), hosts=("api.branch.io",)))
MOPUB = _add(ThirdParty("MoPub", "mopub.com", AD_NETWORK, media=("app",), hosts=("ads.mopub.com",)))
AMAZON_ADS = _add(ThirdParty("Amazon Ads", "amazon-adsystem.com", AD_EXCHANGE, hosts=("aax.amazon-adsystem.com", "s.amazon-adsystem.com"), rtb_partners=("doubleclick.net",)))
TABOOLA = _add(ThirdParty("Taboola", "taboola.com", AD_NETWORK, media=("web",), hosts=("trc.taboola.com", "cdn.taboola.com")))
OUTBRAIN = _add(ThirdParty("Outbrain", "outbrain.com", AD_NETWORK, media=("web",), hosts=("widgets.outbrain.com", "odb.outbrain.com")))
ADVERTISING_COM = _add(ThirdParty("AOL Advertising", "advertising.com", AD_EXCHANGE, hosts=("adserver.advertising.com", "pixel.advertising.com"), supports_http=True))
MATHTAG = _add(ThirdParty("MediaMath", "mathtag.com", AD_EXCHANGE, hosts=("pixel.mathtag.com", "sync.mathtag.com")))
BLUEKAI = _add(ThirdParty("BlueKai", "bluekai.com", ANALYTICS, media=("web",), hosts=("tags.bluekai.com", "stags.bluekai.com")))
DEMDEX = _add(ThirdParty("Adobe Audience Manager", "demdex.net", ANALYTICS, media=("web",), hosts=("dpm.demdex.net",)))
OMTRDC = _add(ThirdParty("Adobe Analytics", "omtrdc.net", ANALYTICS, hosts=("sc.omtrdc.net",)))
NEWRELIC = _add(ThirdParty("New Relic", "newrelic.com", ANALYTICS, media=("web",), hosts=("js-agent.newrelic.com", "bam.nr-data.net")))
OPTIMIZELY = _add(ThirdParty("Optimizely", "optimizely.com", ANALYTICS, media=("web",), hosts=("cdn.optimizely.com", "logx.optimizely.com")))
MIXPANEL = _add(ThirdParty("Mixpanel", "mixpanel.com", ANALYTICS, hosts=("api.mixpanel.com",)))
KOCHAVA = _add(ThirdParty("Kochava", "kochava.com", ANALYTICS, media=("app",), hosts=("control.kochava.com",)))
ADSRVR = _add(ThirdParty("The Trade Desk", "adsrvr.org", AD_EXCHANGE, hosts=("match.adsrvr.org", "insight.adsrvr.org")))
BIDSWITCH = _add(ThirdParty("BidSwitch", "bidswitch.net", AD_EXCHANGE, hosts=("x.bidswitch.net",)))
SMARTADSERVER = _add(ThirdParty("Smart AdServer", "smartadserver.com", AD_NETWORK, media=("web",), hosts=("ww251.smartadserver.com",), supports_http=True))
YIELDMO = _add(ThirdParty("YieldMo", "yieldmo.com", AD_NETWORK, media=("app",), hosts=("ads.yieldmo.com",)))
GUMGUM = _add(ThirdParty("GumGum", "gumgum.com", AD_NETWORK, media=("web",), hosts=("g2.gumgum.com",)))
SHARETHROUGH = _add(ThirdParty("Sharethrough", "sharethrough.com", AD_NETWORK, media=("web",), hosts=("btlr.sharethrough.com",)))
INDEXEXCHANGE = _add(ThirdParty("Index Exchange", "indexexchange.com", AD_EXCHANGE, media=("web",), hosts=("htlb.indexexchange.com", "as-sec.indexexchange.com")))
GOOGLETAG = _add(ThirdParty("Google Tag Manager", "googletagmanager.com", TAG_MANAGER, media=("web",), hosts=("www.googletagmanager.com",)))
GOOGLETAGSERVICES = _add(ThirdParty("Google Publisher Tag", "googletagservices.com", TAG_MANAGER, media=("web",), hosts=("www.googletagservices.com",)))

# --- long-tail web ad tech (header bidding / native ads, volume only) --------

ADTECHUS = _add(ThirdParty("AOL AdTech", "adtechus.com", AD_NETWORK, media=("web",), hosts=("adserver.adtechus.com",)))
CONTEXTWEB = _add(ThirdParty("PulsePoint", "contextweb.com", AD_EXCHANGE, media=("web",), hosts=("bh.contextweb.com",)))
LIJIT = _add(ThirdParty("Sovrn", "lijit.com", AD_EXCHANGE, media=("web",), hosts=("ap.lijit.com",)))
SONOBI = _add(ThirdParty("Sonobi", "sonobi.com", AD_EXCHANGE, media=("web",), hosts=("apex.go.sonobi.com",)))
SPOTX = _add(ThirdParty("SpotX", "spotxchange.com", AD_EXCHANGE, media=("web",), hosts=("search.spotxchange.com",)))
TREMOR = _add(ThirdParty("Tremor Video", "tremorhub.com", AD_EXCHANGE, media=("web",), hosts=("ads.tremorhub.com",)))
TEADS = _add(ThirdParty("Teads", "teads.tv", AD_NETWORK, media=("web",), hosts=("a.teads.tv",)))
STICKYADS = _add(ThirdParty("StickyADS", "stickyadstv.com", AD_NETWORK, media=("web",), hosts=("ads.stickyadstv.com",)))
ADFORM = _add(ThirdParty("Adform", "adform.net", AD_EXCHANGE, media=("web",), hosts=("track.adform.net",)))
ZERGNET = _add(ThirdParty("ZergNet", "zergnet.com", AD_NETWORK, media=("web",), hosts=("www.zergnet.com",)))
REVCONTENT = _add(ThirdParty("Revcontent", "revcontent.com", AD_NETWORK, media=("web",), hosts=("trends.revcontent.com",)))
MGID = _add(ThirdParty("MGID", "mgid.com", AD_NETWORK, media=("web",), hosts=("servicer.mgid.com",)))
TRIPLELIFT = _add(ThirdParty("TripleLift", "triplelift.com", AD_EXCHANGE, media=("web",), hosts=("tlx.3lift.net", "eb2.3lift.net")))
MEDIANET = _add(ThirdParty("Media.net", "media-net.com", AD_NETWORK, media=("web",), hosts=("contextual.media-net.com",)))

# --- non-A&A third parties (CDNs, fonts; contacted but not trackers) ---------

CLOUDFRONT = _add(ThirdParty("CloudFront", "cloudfront.net", CDN, hosts=("d1cdn.cloudfront.net", "d2cdn.cloudfront.net")))
AKAMAI = _add(ThirdParty("Akamai", "akamaihd.net", CDN, hosts=("assets.akamaihd.net",)))
FASTLY = _add(ThirdParty("Fastly", "fastly.net", CDN, hosts=("global.fastly.net",)))
GOOGLE_FONTS = _add(ThirdParty("Google Fonts", "googleapis-fonts.com", CDN, media=("web",), hosts=("fonts.googleapis-fonts.com",)))
JSDELIVR = _add(ThirdParty("jsDelivr", "jsdelivr.net", CDN, media=("web",), hosts=("cdn.jsdelivr.net",)))


def registry() -> dict:
    """The full third-party registry, keyed by registrable domain."""
    return dict(_REGISTRY)


def get(domain: str) -> ThirdParty:
    try:
        return _REGISTRY[domain]
    except KeyError:
        raise KeyError(f"unknown third party {domain!r}") from None


def aa_domains() -> set:
    """Registrable domains EasyList should flag as A&A."""
    return {party.domain for party in _REGISTRY.values() if party.is_aa}


def all_hostnames() -> set:
    hosts: set = set()
    for party in _REGISTRY.values():
        hosts.update(party.hostnames)
    return hosts


def by_role(role: str) -> list:
    return [party for party in _REGISTRY.values() if party.role == role]
