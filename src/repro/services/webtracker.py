"""Server-side behaviour of the third-party ecosystem.

One handler class per third-party role:

- :class:`AnalyticsHandler` — ``/collect``-style beacons answered with a
  1×1 GIF (or empty JSON for POST), setting a persistent ID cookie on
  web clients;
- :class:`ExchangeHandler` — ad requests that trigger real-time-bidding
  redirect chains through partner exchanges with cookie syncing, ending
  in a creative.  These chains are why the paper sees browsers "redirect
  through several more" A&A domains (§1);
- :class:`ScriptHandler` — tag/measurement JavaScript for web pages;
- :class:`IdentityHandler` — Gigya/Usablenet-style third-party login
  endpoints that receive credentials from first-party pages and apps;
- :class:`OsServiceHandler` — the OS background services (§3.2 filters
  their traffic by domain).

All byte sizes are deterministic (keyed hashes), so runs are exactly
reproducible.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Optional

from ..http.body import encode_json
from ..http.cookies import parse_cookie_header
from ..http.message import Request, Response
from ..http.url import encode_query, parse_url
from .thirdparty import AD_EXCHANGE, ThirdParty, get as get_party

GIF_BODY = b"GIF89a\x01\x00\x01\x00\x80\x00\x00\xff\xff\xff\x00\x00\x00!\xf9"

# Beacon acknowledgements are identical for every hit; encode once.
OK_JSON_BODY = encode_json({"status": "ok"})


# Blobs are pure functions of (seed, low, high) and the same assets are
# served over and over (pages re-embed the same scripts and creatives);
# cache the built bytes.  Small entry cap — blobs run to ~100KB each.
_BLOB_CACHE: dict = {}
_BLOB_CACHE_MAX = 1024


def sized_blob(seed: str, low: int, high: int) -> bytes:
    """Deterministic pseudo-content of a size derived from ``seed``."""
    if low > high:
        raise ValueError(f"empty size range [{low}, {high}]")
    key = (seed, low, high)
    cached = _BLOB_CACHE.get(key)
    if cached is not None:
        return cached
    digest = hashlib.sha256(seed.encode()).digest()
    span = high - low + 1
    size = low + int.from_bytes(digest[:4], "big") % span
    unit = digest * (size // len(digest) + 1)
    blob = unit[:size]
    if len(_BLOB_CACHE) >= _BLOB_CACHE_MAX:
        _BLOB_CACHE.clear()
    _BLOB_CACHE[key] = blob
    return blob


class _CookieMinter:
    """Hands out stable per-party user IDs via Set-Cookie."""

    def __init__(self, party_domain: str) -> None:
        self._domain = party_domain
        self._counter = itertools.count(1)

    def ensure_uid(self, request: Request, response: Response, cookie_name: str = "uid") -> str:
        """Return the client's tracker ID, minting one if absent."""
        cookie_header = request.headers.get("Cookie", "")
        for name, value in parse_cookie_header(cookie_header):
            if name == cookie_name:
                return value
        uid = f"{self._domain.split('.')[0]}-{next(self._counter):08d}"
        response.headers.add(
            "Set-Cookie",
            f"{cookie_name}={uid}; Domain={self._domain}; Path=/; Max-Age=31536000",
        )
        return uid


class AnalyticsHandler:
    """Beacon collector for analytics/verification/tag-manager hosts."""

    def __init__(self, party: ThirdParty) -> None:
        self.party = party
        self._minter = _CookieMinter(party.domain)
        self.beacons_received = 0

    def handle(self, request: Request) -> Response:
        path = request.url.path
        if path.endswith(".js") or "/tag" in path:
            return _script_response(self.party.domain, path)
        if path.startswith("/sync"):
            # Analytics platforms participate in cookie-sync chains too:
            # set our ID, pass the user along.
            response = _next_hop(self.party, dict(request.url.query_pairs()))
            self._minter.ensure_uid(request, response)
            return response
        self.beacons_received += 1
        if request.method == "POST":
            response = Response.build(200, OK_JSON_BODY, "application/json")
        else:
            response = Response.build(200, GIF_BODY, "image/gif")
        self._minter.ensure_uid(request, response)
        return response


class ExchangeHandler:
    """RTB ad exchange: bid, sync cookies through partners, serve creative.

    ``GET /ad?...`` starts a chain: 302 to the first partner's ``/sync``,
    each partner sets its own cookie and forwards to the next, and the
    last hop returns to this exchange's ``/creative``.  The remaining
    chain travels in the ``chain`` query parameter.
    """

    def __init__(self, party: ThirdParty, creative_bytes: tuple = (8_000, 40_000)) -> None:
        self.party = party
        self._minter = _CookieMinter(party.domain)
        self.creative_bytes = creative_bytes
        self.ad_requests = 0
        self.sync_requests = 0
        self.beacons_received = 0

    def _creative(self, seed: str) -> Response:
        body = sized_blob(f"creative:{self.party.domain}:{seed}", *self.creative_bytes)
        return Response.build(200, body, "image/jpeg")

    def handle(self, request: Request) -> Response:
        path = request.url.path
        params = dict(request.url.query_pairs())
        if path.endswith(".js") or "/tag" in path:
            return _script_response(self.party.domain, path)
        if path.startswith("/sync"):
            self.sync_requests += 1
            response = _next_hop(self.party, params)
            self._minter.ensure_uid(request, response, cookie_name=f"{self.party.domain.split('.')[0]}_uid")
            return response
        if path.startswith("/creative"):
            return self._creative(params.get("slot", "0"))
        if not path.startswith("/ad"):
            # SDK configuration fetches and event beacons: tiny replies,
            # not creatives.
            self.beacons_received += 1
            if request.method == "POST":
                response = Response.build(200, OK_JSON_BODY, "application/json")
            else:
                response = Response.build(200, GIF_BODY, "image/gif")
            self._minter.ensure_uid(request, response)
            return response
        # /ad — the RTB entry point
        self.ad_requests += 1
        partners = [p for p in self.party.rtb_partners]
        slot = params.get("slot", "0")
        if partners:
            chain = ",".join(partners)
            first = get_party(partners[0]).beacon_host
            target = (
                f"https://{first}/sync?"
                + encode_query(
                    [("chain", chain), ("origin", self.party.domain), ("slot", slot)]
                )
            )
            response = Response(status=302)
            response.headers.set("Location", target)
        else:
            response = self._creative(slot)
        self._minter.ensure_uid(request, response)
        return response


def _next_hop(current: ThirdParty, params: dict) -> Response:
    """Build the redirect to the next sync partner or back to origin."""
    chain = [d for d in params.get("chain", "").split(",") if d]
    # Drop ourselves from the head of the chain.
    if chain and chain[0] == current.domain:
        chain = chain[1:]
    origin = params.get("origin", "")
    slot = params.get("slot", "0")
    if chain:
        nxt = get_party(chain[0]).beacon_host
        target = f"https://{nxt}/sync?" + encode_query(
            [("chain", ",".join(chain)), ("origin", origin), ("slot", slot)]
        )
    elif origin:
        target = f"https://{get_party(origin).beacon_host}/creative?" + encode_query(
            [("slot", slot)]
        )
    else:
        return Response.build(200, GIF_BODY, "image/gif")
    response = Response(status=302)
    response.headers.set("Location", target)
    return response


class ScriptHandler:
    """Serves measurement/tag JavaScript (CDN-ish hosts)."""

    def __init__(self, party: ThirdParty, script_bytes: tuple = (15_000, 60_000)) -> None:
        self.party = party
        self.script_bytes = script_bytes

    def handle(self, request: Request) -> Response:
        return _script_response(self.party.domain, request.url.path, self.script_bytes)


def _script_response(domain: str, path: str, size: tuple = (15_000, 60_000)) -> Response:
    body = sized_blob(f"script:{domain}:{path}", *size)
    return Response.build(200, body, "application/javascript")


class IdentityHandler:
    """Third-party identity/credential management (Gigya, Usablenet).

    Accepts login POSTs carrying username/password.  Not listed in
    EasyList — these are the §4.2 password recipients that only a PII
    detector (not domain categorization) can surface.
    """

    def __init__(self, party: ThirdParty) -> None:
        self.party = party
        self.logins_received = 0

    def handle(self, request: Request) -> Response:
        if request.method == "POST":
            self.logins_received += 1
            return Response.build(
                200,
                encode_json({"sessionToken": f"tok-{self.logins_received:06d}", "ok": True}),
                "application/json",
            )
        return Response.build(200, encode_json({"service": self.party.name}), "application/json")


class CdnHandler:
    """Plain content CDN (images, fonts, stylesheets)."""

    def __init__(self, party: ThirdParty, asset_bytes: tuple = (5_000, 120_000)) -> None:
        self.party = party
        self.asset_bytes = asset_bytes

    def handle(self, request: Request) -> Response:
        path = request.url.path
        body = sized_blob(f"cdn:{self.party.domain}:{path}", *self.asset_bytes)
        if path.endswith(".js"):
            content_type = "application/javascript"
        elif path.endswith(".css"):
            content_type = "text/css"
        else:
            content_type = "image/jpeg"
        return Response.build(200, body, content_type)


class OsServiceHandler:
    """OS background endpoints (Play Services, iCloud, push keepalives)."""

    def handle(self, request: Request) -> Response:
        return Response.build(200, encode_json({"checkin": "ok"}), "application/json")


def handler_for(party: ThirdParty):
    """Instantiate the right handler class for a third party's role."""
    from .thirdparty import ANALYTICS, AD_NETWORK, CDN, IDENTITY, TAG_MANAGER, VERIFICATION

    if party.role == AD_EXCHANGE:
        return ExchangeHandler(party)
    if party.role == AD_NETWORK:
        # Ad networks serve creatives but don't run sync chains of their
        # own; an ExchangeHandler with no partners models that exactly.
        return ExchangeHandler(party)
    if party.role in (ANALYTICS, VERIFICATION, TAG_MANAGER):
        return AnalyticsHandler(party)
    if party.role == IDENTITY:
        return IdentityHandler(party)
    if party.role == CDN:
        return CdnHandler(party)
    raise ValueError(f"no handler for role {party.role!r}")
