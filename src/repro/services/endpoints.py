"""First-party servers for the simulated online services.

One :class:`FirstPartyHandler` serves every host of a service's
first-party domains: the mobile web site (HTML pages that embed tracker
tags, ad slots, and static resources), the app-facing JSON API, static
assets, and the login endpoint.  Page structure is deterministic per
(service, path) so repeated runs produce identical traffic.
"""

from __future__ import annotations

import hashlib
import itertools

from ..http.body import encode_json
from ..http.message import Request, Response
from ..http.url import encode_query
from .thirdparty import AD_EXCHANGE, get as get_party
from .webtracker import sized_blob


def _det(seed: str, low: int, high: int) -> int:
    """Deterministic integer in [low, high] keyed by ``seed``."""
    if low > high:
        raise ValueError(f"empty range [{low}, {high}]")
    digest = hashlib.sha256(seed.encode()).digest()
    return low + int.from_bytes(digest[4:8], "big") % (high - low + 1)


class FirstPartyHandler:
    """Serves web pages, the app API, and assets for one service."""

    def __init__(self, spec) -> None:
        self.spec = spec
        self._session_counter = itertools.count(1)
        self.api_requests = 0
        self.page_requests = 0
        self.logins = 0

    # -- HTML generation ------------------------------------------------------

    def _page_html(self, path: str) -> bytes:
        spec = self.spec
        web = spec.web
        scheme = "https" if web.https else "http"
        head_parts = [
            "<html><head>",
            f"<title>{spec.name}</title>",
            f'<link rel="stylesheet" href="/static/site.css">',
        ]
        for domain in web.tracker_domains:
            party = get_party(domain)
            head_parts.append(f'<script src="https://{party.beacon_host}/tag.js"></script>')
        body_parts = ["</head><body>", f"<h1>{spec.name}</h1>"]

        seed = f"{spec.slug}:{path}"
        first_party_count = _det(seed + ":fp", *web.first_party_resources)
        for i in range(first_party_count):
            body_parts.append(f'<img src="/static/img-{_slugify(path)}-{i}.jpg">')
        for ci, cdn in enumerate(web.cdn_domains):
            cdn_host = get_party(cdn).beacon_host
            for i in range(_det(f"{seed}:cdn{ci}", 2, 5)):
                body_parts.append(
                    f'<img src="https://{cdn_host}/assets/{spec.slug}/{_slugify(path)}-{i}.jpg">'
                )

        exchanges = list(web.ad_exchange_domains)
        for slot in range(web.ad_slots_per_page):
            if not exchanges:
                break
            exchange = get_party(exchanges[slot % len(exchanges)])
            ad_url = f"https://{exchange.beacon_host}/ad?" + encode_query(
                [("slot", str(slot)), ("pub", spec.domain), ("pg", _slugify(path))]
            )
            body_parts.append(f'<img src="{ad_url}">')

        body_parts.append("</body></html>")
        html = "\n".join(head_parts + body_parts)
        target = _det(seed + ":size", *web.page_bytes)
        if len(html) < target:
            html += "\n<!-- " + "x" * (target - len(html) - 10) + " -->"
        return html.encode()

    # -- request routing ------------------------------------------------------

    def handle(self, request: Request) -> Response:
        path = request.url.path
        if path.startswith("/api/"):
            return self._handle_api(request)
        if path.startswith("/static/"):
            return self._handle_static(path)
        if path in ("/telemetry", "/collect"):
            return Response.build(204)
        if path == "/login" and request.method == "POST":
            return self._handle_web_login()
        self.page_requests += 1
        return Response.build(200, self._page_html(path), "text/html; charset=utf-8")

    def _handle_api(self, request: Request) -> Response:
        self.api_requests += 1
        path = request.url.path
        if path == "/api/login" and request.method == "POST":
            self.logins += 1
            response = Response.build(
                200,
                encode_json({"token": f"sess-{next(self._session_counter):06d}", "ok": True}),
                "application/json",
            )
            response.headers.add(
                "Set-Cookie", f"session={next(self._session_counter):06d}; Path=/"
            )
            return response
        payload = {
            "endpoint": path,
            "items": [
                {"id": i, "title": f"item-{i}", "blurb": "x" * 80}
                for i in range(_det(f"{self.spec.slug}:{path}:items", 3, 12))
            ],
        }
        return Response.build(200, encode_json(payload), "application/json")

    def _handle_static(self, path: str) -> Response:
        if path.endswith(".css"):
            body = sized_blob(f"{self.spec.slug}:{path}", 4_000, 20_000)
            return Response.build(200, body, "text/css")
        body = sized_blob(f"{self.spec.slug}:{path}", 8_000, 60_000)
        return Response.build(200, body, "image/jpeg")

    def _handle_web_login(self) -> Response:
        self.logins += 1
        response = Response(status=302)
        response.headers.set("Location", "/account")
        response.headers.add("Set-Cookie", f"session={next(self._session_counter):06d}; Path=/")
        return response


def _slugify(path: str) -> str:
    return "".join(c if c.isalnum() else "-" for c in path).strip("-") or "home"
