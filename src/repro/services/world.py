"""World assembly: wire every simulated server into one network.

:func:`build_world` constructs the complete measurement environment the
experiment runner operates in: a shared simulated clock, a network with
every first-party, third-party, and OS-service host registered, and the
Meddle-style interception proxy in front of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..device.phone import OS_SERVICE_HOSTS
from ..http.transport import Network
from ..net.clock import SimClock
from ..net.dns import Resolver
from ..proxy.meddle import InterceptionProxy
from ..tls.handshake import ServerTlsProfile
from .catalog import build_catalog
from .endpoints import FirstPartyHandler
from .thirdparty import registry
from .webtracker import OsServiceHandler, handler_for


@dataclass
class World:
    """Everything a study run needs, fully wired."""

    clock: SimClock
    network: Network
    proxy: InterceptionProxy
    services: list
    first_party_handlers: dict = field(default_factory=dict)
    third_party_handlers: dict = field(default_factory=dict)

    def service(self, slug: str):
        for spec in self.services:
            if spec.slug == slug:
                return spec
        raise KeyError(f"unknown service {slug!r}")


def build_world(services: list = None) -> World:
    """Build the network, proxy, and handlers for a catalog.

    ``services`` defaults to the full 50-service catalog; tests pass
    narrower lists for speed.
    """
    clock = SimClock()
    network = Network()
    resolver = Resolver(clock)
    proxy = InterceptionProxy(network, clock, resolver=resolver)

    if services is None:
        services = build_catalog()

    third_party_handlers = {}
    for domain, party in sorted(registry().items()):
        handler = handler_for(party)
        third_party_handlers[domain] = handler
        for host in party.hostnames:
            network.register(host, handler, tls=ServerTlsProfile.standard(host))
        # Any other subdomain of the party resolves to the same handler.
        network.register(f"*.{domain}", handler, tls=ServerTlsProfile.standard(domain))

    first_party_handlers = {}
    for spec in services:
        handler = FirstPartyHandler(spec)
        first_party_handlers[spec.slug] = handler
        for domain in spec.first_party_domains:
            pinned = spec.cert_pinned
            profile = (
                ServerTlsProfile.pinned(domain)
                if pinned
                else ServerTlsProfile.standard(domain)
            )
            network.register(domain, handler, tls=profile)
            network.register(f"*.{domain}", handler, tls=profile)

    os_handler = OsServiceHandler()
    for hosts in OS_SERVICE_HOSTS.values():
        for host in hosts:
            network.register(host, os_handler, tls=ServerTlsProfile.standard(host))

    return World(
        clock=clock,
        network=network,
        proxy=proxy,
        services=list(services),
        first_party_handlers=first_party_handlers,
        third_party_handlers=third_party_handlers,
    )
