"""Service behaviour model: specs and the app/web traffic runtimes.

A :class:`ServiceSpec` describes one of the 50 online services — its
first-party domains, the SDKs its apps embed, the trackers its web pages
carry, and its :class:`LeakSpec` list, which states exactly which PII
type flows to which destination on which platform.  The two runtime
classes replay a scripted user session over either medium:

- :class:`AppRuntime` drives first-party API calls plus SDK
  configuration fetches, event beacons, and in-app ad requests;
- :class:`WebRuntime` drives page loads through the browser engine
  (which fans out to tags, ad slots, and RTB chains) and then fires the
  beacons the page's "JavaScript" would send.

The same interaction script is used for both media — the paper's
identical-operations requirement (§3.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..device.phone import Permission, Phone
from ..device.browser import Browser
from ..http.body import encode_form, encode_json
from ..http.session import ClientSession
from ..http.transport import NetworkError
from ..http.url import encode_query
from ..net.clock import SimClock
from ..pii.encodings import encode_value
from ..pii.recon import KEY_SYNONYMS
from ..pii.types import PiiType
from .adsdk import SdkProfile, profile_for
from .thirdparty import get as get_party

FIRST_PARTY_DEST = "first"

# Default wire parameter name per PII type (the first ReCon synonym).
_DEFAULT_KEYS = {pii_type: synonyms[0] for pii_type, synonyms in KEY_SYNONYMS.items()}


@dataclass(frozen=True)
class LeakSpec:
    """One PII route: a type sent to a destination on given platforms."""

    pii_type: PiiType
    destination: str  # FIRST_PARTY_DEST or a third-party registrable domain
    media: tuple = ("app", "web")
    oses: tuple = ("android", "ios")
    plaintext: bool = False
    encoding: str = "identity"
    cadence: str = "per_action"  # or "once" (login/init only)
    key: str = ""  # wire param name; defaults per type

    def applies(self, medium: str, os_name: str) -> bool:
        return medium in self.media and os_name in self.oses

    @property
    def wire_key(self) -> str:
        return self.key or _DEFAULT_KEYS[self.pii_type]


@dataclass(frozen=True)
class AppConfig:
    """Platform app behaviour for one service."""

    sdk_domains: tuple = ()
    api_calls_per_action: tuple = (2, 4)
    https: bool = True  # first-party API uses HTTPS
    pinned: bool = False  # certificate pinning (excluded services)
    permissions: tuple = (Permission.LOCATION, Permission.PHONE_STATE)

    def sdks(self) -> list:
        return [profile_for(domain) for domain in self.sdk_domains]


@dataclass(frozen=True)
class WebConfig:
    """Web-site behaviour for one service."""

    tracker_domains: tuple = ("google-analytics.com",)
    ad_exchange_domains: tuple = ()
    ad_slots_per_page: int = 2
    # How many times each tracker's beacon fires per user action
    # (viewability pings, scroll events); news sites ping constantly.
    beacons_per_action: int = 1
    first_party_resources: tuple = (6, 14)
    cdn_domains: tuple = ("cloudfront.net",)
    page_bytes: tuple = (30_000, 90_000)
    https: bool = True


@dataclass(frozen=True)
class ServiceSpec:
    """One online service available as app and web site."""

    name: str
    slug: str
    category: str
    rank: int
    domain: str
    extra_domains: tuple = ()
    requires_login: bool = True
    sso_domains: tuple = ()  # single-sign-on providers (policy carve-out)
    app: AppConfig = field(default_factory=AppConfig)
    app_overrides: dict = field(default_factory=dict)  # os_name -> AppConfig
    web: WebConfig = field(default_factory=WebConfig)
    leaks: tuple = ()
    oses: tuple = ("android", "ios")  # platforms the service is tested on

    def app_config(self, os_name: str) -> AppConfig:
        return self.app_overrides.get(os_name, self.app)

    @property
    def first_party_domains(self) -> tuple:
        return (self.domain,) + self.extra_domains

    @property
    def www_host(self) -> str:
        return f"www.{self.domain}"

    @property
    def api_host(self) -> str:
        return f"api.{self.domain}"

    def leaks_for(self, medium: str, os_name: str) -> list:
        return [leak for leak in self.leaks if leak.applies(medium, os_name)]

    @property
    def cert_pinned(self) -> bool:
        return any(cfg.pinned for cfg in (self.app, *self.app_overrides.values()))


class _PiiSource:
    """Resolves leak specs to concrete wire values for one device/user."""

    def __init__(self, phone: Phone, app_slug: Optional[str] = None) -> None:
        self.phone = phone
        self.app_slug = app_slug
        self._truth = phone.ground_truth()

    def values_for(self, pii_type: PiiType) -> list:
        values = self._truth.get(pii_type, [])
        return [v for v in values if v]

    def wire_pairs(self, leak: LeakSpec) -> list:
        """(key, encoded value) pairs for one leak spec."""
        values = self.values_for(leak.pii_type)
        if not values:
            return []
        if leak.pii_type == PiiType.LOCATION:
            # Apps read coordinates through the runtime permission; a
            # denied prompt means no fix to leak.  The browser obtains
            # geolocation via its own (approved) prompt, so web
            # sessions are ungated — matching the OS permission models.
            if self.app_slug is not None and not self.phone.has_permission(
                self.app_slug, Permission.LOCATION
            ):
                return []
            persona = self.phone.persona
            pairs = []
            if persona is not None:
                pairs.append(("lat", f"{persona.latitude:.6f}"))
                pairs.append(("lon", f"{persona.longitude:.6f}"))
                pairs.append(("zip", persona.zip_code))
            return pairs
        if leak.pii_type == PiiType.UNIQUE_ID:
            # Apps send the advertising ID plus platform identifiers.
            pairs = [("adid", encode_value(self.phone.ad_id, leak.encoding))]
            if self.app_slug is not None and self.phone.has_permission(
                self.app_slug, Permission.PHONE_STATE
            ):
                pairs.append(("imei", encode_value(self.phone.imei, leak.encoding)))
                pairs.append(("mac", encode_value(self.phone.wifi_mac, leak.encoding)))
            return pairs
        value = values[0]
        return [(leak.wire_key, encode_value(value, leak.encoding))]


def _beacon_scheme(leak_plaintext: bool, party_supports_http: bool) -> str:
    return "http" if (leak_plaintext and party_supports_http) else "https"


@dataclass
class SessionStats:
    """Counters a runtime reports after replaying a script."""

    actions: int = 0
    requests: int = 0
    pages: int = 0
    login_performed: bool = False


class AppRuntime:
    """Replays a scripted session through a service's native app."""

    def __init__(
        self,
        spec: ServiceSpec,
        phone: Phone,
        clock: SimClock,
        rng: random.Random,
    ) -> None:
        self.spec = spec
        self.phone = phone
        self.clock = clock
        self.rng = rng
        self.config = spec.app_config(phone.os_name)
        self.session = ClientSession(
            phone.transport(),
            user_agent=phone.user_agent("app", app_name=spec.name.replace(" ", "")),
            enforce_pins=self.config.pinned,
            # Analytics/ad SDKs churn connections instead of pooling; a
            # small per-connection budget reproduces the TCP-connection
            # counts apps generate in Figure 1b.
            requests_per_connection=3,
            now_fn=clock.now,
        )
        self.pii = _PiiSource(phone, app_slug=spec.slug)
        self.stats = SessionStats()
        self._action_index = 0

    # -- helpers -----------------------------------------------------------

    def _api_scheme(self) -> str:
        return "https" if self.config.https else "http"

    def _leaks(self, cadence: str) -> list:
        return [
            leak
            for leak in self.spec.leaks_for("app", self.phone.os_name)
            if leak.cadence == cadence
        ]

    def _first_party_pairs(self, cadence: str) -> list:
        pairs = []
        for leak in self._leaks(cadence):
            if leak.destination == FIRST_PARTY_DEST:
                pairs.extend(self.pii.wire_pairs(leak))
        return pairs

    def _sdk_leak_pairs(self, sdk_domain: str, cadence: str) -> list:
        pairs = []
        for leak in self._leaks(cadence):
            if leak.destination == sdk_domain:
                pairs.extend(self.pii.wire_pairs(leak))
        return pairs

    def _sdk_plaintext(self, sdk_domain: str, cadence: str) -> bool:
        return any(
            leak.plaintext
            for leak in self._leaks(cadence)
            if leak.destination == sdk_domain
        )

    def _get(self, url: str) -> None:
        try:
            self.session.get(url)
            self.stats.requests += 1
        except NetworkError:
            pass

    def _post(self, url: str, payload: dict) -> None:
        try:
            self.session.post(url, body=encode_json(payload), content_type="application/json")
            self.stats.requests += 1
        except NetworkError:
            pass

    def _send_beacon(self, sdk: SdkProfile, cadence: str) -> None:
        party = get_party(sdk.domain)
        pairs = [("app", self.spec.slug), ("os", self.phone.os_name), ("sdk_ver", "3.2")]
        pairs += self._sdk_leak_pairs(sdk.domain, cadence)
        plaintext = self._sdk_plaintext(sdk.domain, cadence)
        scheme = _beacon_scheme(plaintext, party.supports_http)
        host = sdk.beacon_host
        if sdk.uses_post:
            self._post(f"{scheme}://{host}{sdk.beacon_path}", dict(pairs))
        else:
            self._get(f"{scheme}://{host}{sdk.beacon_path}?{encode_query(pairs)}")

    def _fetch_ad(self, sdk: SdkProfile) -> None:
        host = sdk.beacon_host
        pairs = [("slot", str(self.rng.randrange(4))), ("app", self.spec.slug)]
        pairs += self._sdk_leak_pairs(sdk.domain, "per_action")
        pairs += self._sdk_leak_pairs(sdk.domain, "ad_fetch")
        # In-app SDKs request creatives directly (no browser to bounce
        # through sync chains) — a structural reason apps touch fewer
        # A&A domains than the web (§4.1).
        self._get(f"https://{host}/creative?{encode_query(pairs)}")

    # -- lifecycle ------------------------------------------------------------

    def launch(self) -> None:
        """App start: permission prompts, config fetches, SDK init."""
        for permission in self.config.permissions:
            self.phone.request_permission(self.spec.slug, permission)
        api = f"{self._api_scheme()}://{self.spec.api_host}"
        self._get(f"{api}/api/config?app_ver=5.1&os={self.phone.os_name}")
        self._get(f"{api}/api/feed?page=0")
        for sdk in self.config.sdks():
            self._get(f"https://{sdk.beacon_host}{sdk.config_path}?app={self.spec.slug}")
            self._send_beacon(sdk, cadence="once")
        self.clock.advance(2.0)

    def login(self) -> None:
        """Sign in with the pre-created account for this service."""
        persona = self.phone.persona
        if persona is None:
            raise RuntimeError("no persona on phone")
        payload = {"login": persona.email, "password": persona.password}
        self._post(f"{self._api_scheme()}://{self.spec.api_host}/api/login", payload)
        self._send_credential_posts("app", persona)
        extra = self._first_party_pairs("once")
        if extra:
            api = f"{self._api_scheme()}://{self.spec.api_host}"
            self._get(f"{api}/api/profile?{encode_query(extra)}")
        self.stats.login_performed = True
        self.clock.advance(3.0)

    def _send_credential_posts(self, medium: str, persona) -> None:
        """Third-party identity logins (Gigya/Usablenet pattern, §4.2).

        Credential leak specs pointing at parties outside the SDK list
        are delivered as dedicated login POSTs.  The loginID is opaque
        (see the calibration note in the catalog module).
        """
        sdk_domains = set(self.config.sdk_domains)
        by_destination: dict = {}
        for leak in self._leaks("once"):
            if leak.destination == FIRST_PARTY_DEST or leak.destination in sdk_domains:
                continue
            if leak.pii_type not in (PiiType.PASSWORD, PiiType.EMAIL, PiiType.USERNAME):
                continue
            by_destination.setdefault(leak.destination, []).append(leak)
        for destination, specs in by_destination.items():
            payload = {"loginID": f"acct-{self.spec.slug}-7f21"}
            for leak in specs:
                if leak.pii_type == PiiType.PASSWORD:
                    payload["password"] = persona.password
                elif leak.pii_type == PiiType.EMAIL:
                    payload["email"] = persona.email
                else:
                    payload["username"] = persona.username
            host = get_party(destination).beacon_host
            self._post(f"https://{host}/accounts/login", payload)

    def perform_action(self, action: str) -> None:
        """One scripted interaction (browse, search, view, …)."""
        self._action_index += 1
        self.stats.actions += 1
        api = f"{self._api_scheme()}://{self.spec.api_host}"
        calls = self.rng.randint(*self.config.api_calls_per_action)
        first_party_pairs = self._first_party_pairs("per_action")
        for i in range(calls):
            pairs = [("action", action), ("seq", str(self._action_index * 10 + i))]
            # First-party PII (e.g. the GPS fix a weather API needs)
            # rides on every API call.
            pairs += first_party_pairs
            self._get(f"{api}/api/{action}?{encode_query(pairs)}")
        for sdk in self.config.sdks():
            for _ in range(sdk.beacons_per_action):
                self._send_beacon(sdk, cadence="per_action")
            if sdk.serves_ads and self._action_index % sdk.ad_refresh_actions == 0:
                self._fetch_ad(sdk)
        self.clock.advance(self.rng.uniform(8.0, 20.0))

    def close(self) -> None:
        self.session.close()


class WebRuntime:
    """Replays the same scripted session through the mobile web site."""

    def __init__(
        self,
        spec: ServiceSpec,
        browser: Browser,
        clock: SimClock,
        rng: random.Random,
    ) -> None:
        self.spec = spec
        self.browser = browser
        self.clock = clock
        self.rng = rng
        self.config = spec.web
        self.browser_session = browser.session(private=True, now_fn=clock.now)
        self.pii = _PiiSource(browser.phone, app_slug=None)
        self.stats = SessionStats()
        self._action_index = 0
        origin = f"https://{spec.www_host}"
        browser.allow_geolocation(origin, True)

    @property
    def phone(self) -> Phone:
        return self.browser.phone

    def _scheme(self) -> str:
        return "https" if self.config.https else "http"

    def _leaks(self, cadence: str) -> list:
        return [
            leak
            for leak in self.spec.leaks_for("web", self.phone.os_name)
            if leak.cadence == cadence
        ]

    def _fire_tracker_beacons(self, page_path: str, cadence: str) -> None:
        """What the page's tag JavaScript does after a load."""
        page_url = f"{self._scheme()}://{self.spec.www_host}{page_path}"
        leaks = self._leaks(cadence)
        repeats = max(1, self.config.beacons_per_action) if cadence == "per_action" else 1
        for domain in self.config.tracker_domains:
            party = get_party(domain)
            base_pairs = [("dl", page_url), ("t", "pageview")]
            plaintext = False
            for leak in leaks:
                if leak.destination == domain:
                    base_pairs += self.pii.wire_pairs(leak)
                    plaintext = plaintext or leak.plaintext
            scheme = _beacon_scheme(plaintext, party.supports_http)
            for seq in range(repeats):
                pairs = base_pairs + [("seq", str(seq))]
                try:
                    self.browser_session.send_beacon(
                        f"{scheme}://{party.beacon_host}/collect?{encode_query(pairs)}"
                    )
                    self.stats.requests += 1
                except NetworkError:
                    pass
        # First-party leaks ride on a first-party telemetry beacon.
        first_pairs = []
        plaintext_first = False
        for leak in leaks:
            if leak.destination == FIRST_PARTY_DEST:
                first_pairs += self.pii.wire_pairs(leak)
                plaintext_first = plaintext_first or leak.plaintext
        if first_pairs:
            scheme = "http" if plaintext_first else self._scheme()
            try:
                self.browser_session.send_beacon(
                    f"{scheme}://{self.spec.www_host}/telemetry?{encode_query(first_pairs)}"
                )
                self.stats.requests += 1
            except NetworkError:
                pass

    def _load(self, path: str) -> None:
        url = f"{self._scheme()}://{self.spec.www_host}{path}"
        try:
            page = self.browser_session.load_page(url)
            self.stats.pages += 1
            self.stats.requests += page.total_requests
        except NetworkError:
            pass

    def open_site(self) -> None:
        self._load("/")
        self._fire_tracker_beacons("/", cadence="once")
        self._fire_tracker_beacons("/", cadence="per_action")
        self.clock.advance(3.0)

    def login(self) -> None:
        persona = self.phone.persona
        if persona is None:
            raise RuntimeError("no persona on phone")
        self._load("/login")
        fields = [("login", persona.email), ("password", persona.password)]
        target = f"{self._scheme()}://{self.spec.www_host}/login"
        try:
            self.browser_session.submit_form(target, fields)
            self.stats.requests += 1
        except NetworkError:
            pass
        # Third-party identity logins (Gigya pattern): the first-party
        # login page quietly posts credentials to the credential manager.
        tracker_domains = set(self.config.tracker_domains)
        by_destination: dict = {}
        for leak in self._leaks("once"):
            if leak.destination == FIRST_PARTY_DEST or leak.destination in tracker_domains:
                continue
            if leak.pii_type not in (PiiType.PASSWORD, PiiType.EMAIL, PiiType.USERNAME):
                continue
            by_destination.setdefault(leak.destination, []).append(leak)
        for destination, specs in by_destination.items():
            form = [("loginID", f"acct-{self.spec.slug}-7f21")]
            for leak in specs:
                if leak.pii_type == PiiType.PASSWORD:
                    form.append(("password", persona.password))
                elif leak.pii_type == PiiType.EMAIL:
                    form.append(("email", persona.email))
                else:
                    form.append(("username", persona.username))
            host = get_party(destination).beacon_host
            try:
                self.browser_session.submit_form(f"https://{host}/accounts/login", form)
                self.stats.requests += 1
            except NetworkError:
                pass
        self.stats.login_performed = True
        self.clock.advance(3.0)

    def perform_action(self, action: str) -> None:
        self._action_index += 1
        self.stats.actions += 1
        if action == "search":
            path = f"/search?q=coffee+shops&page={self._action_index}"
        else:
            path = f"/{action}/{self._action_index}"
        self._load(path)
        self._fire_tracker_beacons(path, cadence="per_action")
        self.clock.advance(self.rng.uniform(8.0, 20.0))

    def close(self) -> None:
        self.browser_session.close()
