"""In-app advertising & analytics SDK profiles.

Apps in the paper's world typically embed *one or a few* A&A SDKs (§1:
"most apps include a single advertisement library"), each of which
phones home to a small set of hosts.  An :class:`SdkProfile` describes
one SDK's client-side traffic pattern: its configuration fetch, the
event-beacon endpoint and cadence, and whether it fetches ad creatives.

The catalog attaches SDK profiles to app specs by third-party domain;
the app runtime (:mod:`repro.services.service`) replays their behaviour
during a session.
"""

from __future__ import annotations

from dataclasses import dataclass

from .thirdparty import AD_EXCHANGE, AD_NETWORK, ANALYTICS, get as get_party


@dataclass(frozen=True)
class SdkProfile:
    """Client-side behaviour of one in-app SDK."""

    domain: str  # third-party registrable domain
    config_path: str = "/sdk/config"
    beacon_path: str = "/sdk/event"
    # Beacons sent per scripted user action (chatty SDKs send several).
    beacons_per_action: int = 1
    # Ad-serving SDKs additionally fetch a creative per refresh.
    serves_ads: bool = False
    ad_path: str = "/ad/fetch"
    ad_refresh_actions: int = 1  # fetch an ad every N actions
    uses_post: bool = False  # beacons as POST JSON instead of GET query

    @property
    def beacon_host(self) -> str:
        return get_party(self.domain).beacon_host

    @property
    def is_ad_sdk(self) -> bool:
        return self.serves_ads


# Built-in profiles for every app-capable third party.  Volume knobs are
# per-SDK personality: attribution SDKs are quiet, ad SDKs are chatty.
_PROFILES = {
    "amobee.com": SdkProfile("amobee.com", beacons_per_action=14, serves_ads=True, ad_refresh_actions=1),
    "vrvm.com": SdkProfile("vrvm.com", beacons_per_action=2, serves_ads=True, ad_refresh_actions=1),
    "moatads.com": SdkProfile("moatads.com", beacons_per_action=2),
    "google-analytics.com": SdkProfile("google-analytics.com", beacon_path="/collect", beacons_per_action=1),
    "facebook.com": SdkProfile("facebook.com", config_path="/v2.6/app/activities", beacon_path="/v2.6/app/events", beacons_per_action=1, uses_post=True),
    "groceryserver.com": SdkProfile("groceryserver.com", beacons_per_action=4, uses_post=True),
    "serving-sys.com": SdkProfile("serving-sys.com", beacons_per_action=1, serves_ads=True, ad_refresh_actions=2),
    "googlesyndication.com": SdkProfile("googlesyndication.com", beacons_per_action=1, serves_ads=True, ad_refresh_actions=1),
    "thebrighttag.com": SdkProfile("thebrighttag.com", beacons_per_action=2),
    "tiqcdn.com": SdkProfile("tiqcdn.com", beacons_per_action=1),
    "marinsm.com": SdkProfile("marinsm.com", beacons_per_action=7, uses_post=True),
    "criteo.com": SdkProfile("criteo.com", beacons_per_action=1, serves_ads=True, ad_refresh_actions=2),
    "2mdn.net": SdkProfile("2mdn.net", beacons_per_action=1, serves_ads=True, ad_refresh_actions=2),
    "monetate.net": SdkProfile("monetate.net", beacons_per_action=5, uses_post=True),
    "247realmedia.com": SdkProfile("247realmedia.com", beacons_per_action=2, serves_ads=True, ad_refresh_actions=2),
    "krxd.net": SdkProfile("krxd.net", beacons_per_action=2),
    "doubleverify.com": SdkProfile("doubleverify.com", beacons_per_action=2),
    "webtrends.com": SdkProfile("webtrends.com", beacons_per_action=4, uses_post=True),
    "liftoff.io": SdkProfile("liftoff.io", beacons_per_action=2, serves_ads=True, ad_refresh_actions=2),
    "taplytics.com": SdkProfile("taplytics.com", beacons_per_action=1, uses_post=True),
    "doubleclick.net": SdkProfile("doubleclick.net", beacons_per_action=2, serves_ads=True, ad_refresh_actions=1),
    "mopub.com": SdkProfile("mopub.com", beacons_per_action=2, serves_ads=True, ad_refresh_actions=1),
    "crashlytics.com": SdkProfile("crashlytics.com", config_path="/spi/v1/platforms", beacons_per_action=1, uses_post=True),
    "flurry.com": SdkProfile("flurry.com", beacons_per_action=2, uses_post=True),
    "adjust.com": SdkProfile("adjust.com", beacons_per_action=1),
    "appsflyer.com": SdkProfile("appsflyer.com", beacons_per_action=1, uses_post=True),
    "branch.io": SdkProfile("branch.io", beacons_per_action=1, uses_post=True),
    "mixpanel.com": SdkProfile("mixpanel.com", beacon_path="/track", beacons_per_action=2),
    "kochava.com": SdkProfile("kochava.com", beacons_per_action=2, uses_post=True),
    "yieldmo.com": SdkProfile("yieldmo.com", beacons_per_action=2, serves_ads=True, ad_refresh_actions=1),
    "scorecardresearch.com": SdkProfile("scorecardresearch.com", beacon_path="/b", beacons_per_action=2),
    "quantserve.com": SdkProfile("quantserve.com", beacon_path="/pixel", beacons_per_action=2),
    "omtrdc.net": SdkProfile("omtrdc.net", beacon_path="/b/ss", beacons_per_action=2),
    "amazon-adsystem.com": SdkProfile("amazon-adsystem.com", beacons_per_action=1, serves_ads=True, ad_refresh_actions=2),
    "advertising.com": SdkProfile("advertising.com", beacons_per_action=1, serves_ads=True, ad_refresh_actions=2),
    "gigya.com": SdkProfile("gigya.com", beacons_per_action=0, uses_post=True),
    "usablenet.com": SdkProfile("usablenet.com", beacons_per_action=0, uses_post=True),
}


def profile_for(domain: str) -> SdkProfile:
    """Return the SDK profile for a third-party domain.

    Unknown domains get a conservative one-beacon-per-action analytics
    profile, so catalog extensions don't need to touch this module.
    """
    existing = _PROFILES.get(domain)
    if existing is not None:
        return existing
    return SdkProfile(domain=domain)


def known_profiles() -> dict:
    return dict(_PROFILES)
