"""Simulated online-service world: catalog, behaviours, third parties."""

from .adsdk import SdkProfile, known_profiles, profile_for
from .catalog import build_catalog, catalog_by_slug, rows
from .endpoints import FirstPartyHandler
from .service import (
    FIRST_PARTY_DEST,
    AppConfig,
    AppRuntime,
    LeakSpec,
    ServiceSpec,
    SessionStats,
    WebConfig,
    WebRuntime,
)
from .thirdparty import ThirdParty, aa_domains, all_hostnames, by_role, get, registry
from .world import World, build_world

__all__ = [
    "AppConfig",
    "AppRuntime",
    "FIRST_PARTY_DEST",
    "FirstPartyHandler",
    "LeakSpec",
    "SdkProfile",
    "ServiceSpec",
    "SessionStats",
    "ThirdParty",
    "WebConfig",
    "WebRuntime",
    "World",
    "aa_domains",
    "all_hostnames",
    "build_catalog",
    "build_world",
    "by_role",
    "catalog_by_slug",
    "get",
    "known_profiles",
    "profile_for",
    "registry",
    "rows",
]
