"""The 50-service catalog.

This is the calibrated world model: 50 popular free services across the
paper's nine categories (Table 1), each with an app and a mobile web
site.  The leak-type assignment per service/medium/OS was solved against
the paper's published constraints:

- Table 1 per-category leak rates and per-OS totals (41/48 Android apps
  leak, 43/50 iOS apps, 25/48 Android web, 38/50 iOS web);
- Table 3 per-identifier service counts (e.g. Location 30 app / 21
  common / 26 web, Unique ID 40/0/0);
- the §4.2 anecdotes (Grubhub password→Taplytics, JetBlue→Usablenet,
  Food Network & NCAA→Gigya, Priceline's web-only birthday/gender);
- Figure 1 shapes (web contacts far more A&A domains for >80% of
  services, identifier-diff mode at +1, majority-zero Jaccard).

Leak-type codes: B D E G L N P U PW UID (Table 1's column codes, with P
for phone).  An ``:a`` / ``:i`` suffix restricts a code to Android / iOS.

Calibration note recorded in DESIGN.md: third-party identity logins
(Gigya, Usablenet) send an opaque ``loginID`` rather than the raw email,
so that password routing does not drag email counts away from Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..device.phone import Permission
from ..pii.types import PiiType
from .service import AppConfig, LeakSpec, ServiceSpec, WebConfig, FIRST_PARTY_DEST
from .adsdk import profile_for
from .thirdparty import AA_ROLES, get as get_party

_CODE_TO_TYPE = {
    "B": PiiType.BIRTHDAY,
    "D": PiiType.DEVICE_INFO,
    "E": PiiType.EMAIL,
    "G": PiiType.GENDER,
    "L": PiiType.LOCATION,
    "N": PiiType.NAME,
    "P": PiiType.PHONE,
    "U": PiiType.USERNAME,
    "PW": PiiType.PASSWORD,
    "UID": PiiType.UNIQUE_ID,
}

# Short aliases for third-party domains, to keep rows readable.
_ALIAS = {
    "ga": "google-analytics.com",
    "fb": "facebook.com",
    "gsyn": "googlesyndication.com",
    "2mdn": "2mdn.net",
    "moat": "moatads.com",
    "ssys": "serving-sys.com",
    "criteo": "criteo.com",
    "krxd": "krxd.net",
    "tiq": "tiqcdn.com",
    "btag": "thebrighttag.com",
    "dv": "doubleverify.com",
    "vrvm": "vrvm.com",
    "amobee": "amobee.com",
    "grocery": "groceryserver.com",
    "marin": "marinsm.com",
    "monetate": "monetate.net",
    "247": "247realmedia.com",
    "webtrends": "webtrends.com",
    "liftoff": "liftoff.io",
    "cloudinary": "cloudinary.com",
    "taplytics": "taplytics.com",
    "gigya": "gigya.com",
    "usablenet": "usablenet.com",
    "dclk": "doubleclick.net",
    "adnxs": "adnxs.com",
    "rubicon": "rubiconproject.com",
    "pubmatic": "pubmatic.com",
    "openx": "openx.net",
    "casale": "casalemedia.com",
    "score": "scorecardresearch.com",
    "quant": "quantserve.com",
    "cbeat": "chartbeat.com",
    "crash": "crashlytics.com",
    "flurry": "flurry.com",
    "adjust": "adjust.com",
    "afly": "appsflyer.com",
    "branch": "branch.io",
    "mopub": "mopub.com",
    "amzn": "amazon-adsystem.com",
    "taboola": "taboola.com",
    "outbrain": "outbrain.com",
    "advcom": "advertising.com",
    "mathtag": "mathtag.com",
    "bluekai": "bluekai.com",
    "demdex": "demdex.net",
    "omtrdc": "omtrdc.net",
    "newrelic": "newrelic.com",
    "optim": "optimizely.com",
    "mixpanel": "mixpanel.com",
    "kochava": "kochava.com",
    "tradedesk": "adsrvr.org",
    "bidswitch": "bidswitch.net",
    "smart": "smartadserver.com",
    "yieldmo": "yieldmo.com",
    "gumgum": "gumgum.com",
    "sthru": "sharethrough.com",
    "ix": "indexexchange.com",
    "gtm": "googletagmanager.com",
    "gts": "googletagservices.com",
    "adtechus": "adtechus.com",
    "contextweb": "contextweb.com",
    "lijit": "lijit.com",
    "sonobi": "sonobi.com",
    "spotx": "spotxchange.com",
    "tremor": "tremorhub.com",
    "teads": "teads.tv",
    "stickyads": "stickyadstv.com",
    "adform": "adform.net",
    "zergnet": "zergnet.com",
    "revcontent": "revcontent.com",
    "mgid": "mgid.com",
    "triplelift": "triplelift.com",
    "medianet": "media-net.com",
}


def _domains(spec: str) -> tuple:
    """Expand a comma-separated alias list into registrable domains."""
    out = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        out.append(_ALIAS.get(token, token))
    return tuple(out)


@dataclass(frozen=True)
class CatalogRow:
    """Raw description of one service before leak routing."""

    name: str
    category: str
    rank: int
    domain: str
    extra_domains: tuple = ()
    login: bool = True
    ios_only: bool = False
    app_https: bool = True
    web_https: bool = True
    sdks: str = "ga,fb"
    trackers: str = "ga,fb"
    exchanges: str = "dclk"
    ad_slots: int = 2
    app_codes: str = ""
    web_codes: str = ""
    # Per-type plaintext flags, e.g. {"L": True} — applies where the
    # destination (or first party) offers HTTP endpoints.
    plaintext: tuple = ()
    # Credential routes: (medium, pii_code, third-party alias).
    credential_routes: tuple = ()
    # "ads": location goes to ad-serving SDKs only; "all": to every A&A
    # SDK (the ad-mediation pattern behind Table 1's Education outlier).
    loc_fanout: str = "ads"
    # Hand-routed extra leaks: (medium, code[:a|:i], destination alias).
    # The destination must appear in the row's sdks (app) or trackers
    # (web) for the runtime to deliver the beacon.
    extra_leaks: tuple = ()
    # How many A&A destinations (besides the first party) receive
    # location from the web site.
    web_loc_fanout: int = 2
    # Tracker beacon repetitions per action on the web site.
    web_beacon_rate: int = 1
    api_calls: tuple = (2, 4)
    permissions: tuple = (Permission.LOCATION, Permission.PHONE_STATE)

    @property
    def slug(self) -> str:
        return self.domain.split(".")[0]


def _stable_index(seed: str, modulus: int) -> int:
    """Deterministic, hash-randomization-proof index in [0, modulus)."""
    import hashlib

    if modulus <= 0:
        raise ValueError("modulus must be positive")
    return int.from_bytes(hashlib.sha256(seed.encode()).digest()[:4], "big") % modulus


def _parse_codes(codes: str) -> list:
    """``"L:a,UID"`` → [(PiiType.LOCATION, ("android",)), (UID, both)]."""
    out = []
    for token in codes.split(","):
        token = token.strip()
        if not token:
            continue
        code, _, os_flag = token.partition(":")
        pii_type = _CODE_TO_TYPE[code]
        if os_flag == "a":
            oses = ("android",)
        elif os_flag == "i":
            oses = ("ios",)
        else:
            oses = ("android", "ios")
        out.append((code, pii_type, oses))
    return out


def _aa_sdk_domains(row: CatalogRow) -> list:
    return [d for d in _domains(row.sdks) if get_party(d).role in AA_ROLES]


def _build_leaks(row: CatalogRow) -> tuple:
    """Route the row's leak codes to concrete destinations."""
    leaks: list = []
    sdk_domains = _domains(row.sdks)
    aa_sdks = _aa_sdk_domains(row)
    analytics_sdk = aa_sdks[0] if aa_sdks else ""
    tracker_domains = _domains(row.trackers)
    exchange_domains = _domains(row.exchanges)
    plain = set(row.plaintext)

    def add(pii_type, destination, medium, oses, cadence="per_action", encoding="identity", plaintext=False):
        leaks.append(
            LeakSpec(
                pii_type=pii_type,
                destination=destination,
                media=(medium,),
                oses=oses,
                cadence=cadence,
                encoding=encoding,
                plaintext=plaintext,
            )
        )

    # -- credential routes (§4.2 anecdotes) --------------------------------
    routed_credentials = set()
    for medium, code, alias in row.credential_routes:
        pii_type = _CODE_TO_TYPE[code]
        add(pii_type, _ALIAS.get(alias, alias), medium, ("android", "ios"), cadence="once")
        routed_credentials.add((medium, code))

    # -- app codes -----------------------------------------------------------
    for code, pii_type, oses in _parse_codes(row.app_codes):
        if ("app", code) in routed_credentials:
            continue
        is_plain = code in plain
        if pii_type == PiiType.UNIQUE_ID:
            # On iOS the IDFA is available to every embedded SDK; the
            # calibrated Android behaviour shares hardware identifiers
            # with the primary SDK only — reproducing Table 1's
            # Android-apps-leak-to-fewer-domains asymmetry (2.4 vs 4.1).
            for index, domain in enumerate(aa_sdks):
                sdk_oses = oses if index == 0 else tuple(o for o in oses if o == "ios")
                if not sdk_oses:
                    continue
                # Quiet SDKs send identifiers once at init; chatty ad
                # SDKs attach them to every event beacon (the Table 2
                # magnitude split between google-analytics and amobee).
                cadence = "per_action" if profile_for(domain).beacons_per_action >= 2 else "once"
                add(pii_type, domain, "app", sdk_oses, cadence=cadence, plaintext=is_plain)
        elif pii_type == PiiType.DEVICE_INFO:
            # Device descriptors travel in SDK init payloads, once.
            if analytics_sdk:
                add(pii_type, analytics_sdk, "app", oses, cadence="once")
            add(pii_type, FIRST_PARTY_DEST, "app", oses, cadence="once")
        elif pii_type == PiiType.LOCATION:
            add(pii_type, FIRST_PARTY_DEST, "app", oses, plaintext=is_plain)
            for domain in aa_sdks:
                if domain == "facebook.com":
                    # Facebook is the most-embedded SDK but receives few
                    # leaks in the paper (Table 2: 3.7 avg) — the Graph
                    # SDK does not take GPS fixes.
                    continue
                is_ad = get_party(domain).role in ("ad_network", "ad_exchange")
                if not (is_ad or row.loc_fanout == "all"):
                    continue
                # Chatty mediation SDKs attach the fix to every beacon;
                # ordinary ad SDKs send it with ad requests only; in
                # "all" fanout mode, non-ad SDKs get it once at init
                # (they never fetch creatives).
                if row.loc_fanout == "all" and profile_for(domain).beacons_per_action >= 3:
                    cadence = "per_action"
                elif is_ad:
                    cadence = "ad_fetch"
                else:
                    cadence = "once"
                add(pii_type, domain, "app", oses, cadence=cadence, plaintext=is_plain)
        elif pii_type in (PiiType.EMAIL, PiiType.USERNAME, PiiType.PASSWORD):
            # Credentials to the first party are exempt (§3.2); a leak
            # needs a third-party destination.  The recipient varies per
            # service (keyed hash), matching the diversity of analytics
            # providers the paper observes.
            pool = [d for d in aa_sdks if d != "facebook.com"]
            if pool:
                chosen = pool[_stable_index(row.slug + code, len(pool))]
                encoding = "md5" if pii_type == PiiType.EMAIL else "identity"
                cadence = "per_action" if pii_type == PiiType.USERNAME else "once"
                add(pii_type, chosen, "app", oses, cadence=cadence, encoding=encoding)
        else:  # N, G, B, P — first party counts as a leak for these
            # Profile attributes (gender, birthday, phone) sync once at
            # login; names ride on per-action content requests.
            profile_cadence = "per_action" if pii_type == PiiType.NAME else "once"
            add(pii_type, FIRST_PARTY_DEST, "app", oses, cadence=profile_cadence)
            if pii_type in (PiiType.GENDER, PiiType.BIRTHDAY) and "facebook.com" in sdk_domains:
                add(pii_type, "facebook.com", "app", oses, cadence="once")

    # -- web codes -----------------------------------------------------------
    aa_trackers = [d for d in tracker_domains if get_party(d).role in AA_ROLES]
    for code, pii_type, oses in _parse_codes(row.web_codes):
        if ("web", code) in routed_credentials:
            continue
        is_plain = code in plain
        if pii_type == PiiType.LOCATION:
            add(pii_type, FIRST_PARTY_DEST, "web", oses, plaintext=is_plain)
            # Prefer ad-serving recipients: geo-targeting is what wants
            # coordinates.  Analytics trackers come last.
            ad_trackers = [
                d for d in aa_trackers
                # Facebook's pixel and Criteo's retargeter key on page
                # context / product views, not GPS fixes; routing
                # location at them would swamp Table 2.
                if d not in ("facebook.com", "criteo.com")
                and get_party(d).role in ("ad_network", "ad_exchange")
            ]
            rest = [d for d in aa_trackers if d not in ad_trackers]
            fanout = max(0, row.web_loc_fanout)
            exchange_pool = [d for d in exchange_domains if d != "criteo.com"]
            # Amobee's tag takes coordinates on both media (Table 2's top
            # recipient); other exchanges consume them in bid requests;
            # ad-network *tags* (googlesyndication, 2mdn) receive almost
            # none (0.8 / 0.0 avg web leaks); google-analytics last.
            amobee_first = [d for d in ad_trackers if d == "amobee.com"]
            other_ads = [d for d in ad_trackers if d != "amobee.com"]
            rest = [d for d in rest if d != "google-analytics.com"] + [
                d for d in rest if d == "google-analytics.com"
            ]
            ordered = amobee_first + exchange_pool + other_ads + rest
            for domain in ordered[:fanout]:
                add(pii_type, domain, "web", oses, plaintext=is_plain)
        elif pii_type in (PiiType.EMAIL, PiiType.USERNAME, PiiType.PASSWORD):
            pool = [d for d in aa_trackers if d != "facebook.com"]
            if pool:
                chosen = pool[_stable_index(row.slug + code + "w", len(pool))]
                encoding = "md5" if pii_type == PiiType.EMAIL else "identity"
                cadence = "per_action" if pii_type == PiiType.USERNAME else "once"
                add(pii_type, chosen, "web", oses, cadence=cadence, encoding=encoding)
        else:  # N, G, B, P
            web_cadence = "once" if pii_type == PiiType.BIRTHDAY else "per_action"
            add(pii_type, FIRST_PARTY_DEST, "web", oses, cadence=web_cadence, plaintext=is_plain)
            if pii_type in (PiiType.GENDER, PiiType.NAME):
                from .thirdparty import ANALYTICS

                extras = [
                    d for d in aa_trackers[1:]
                    if d != "facebook.com" and get_party(d).role == ANALYTICS
                ]
                if extras:
                    add(pii_type, extras[0], "web", oses, cadence=web_cadence)

    # -- hand-routed extras ----------------------------------------------------
    for medium, token, alias in row.extra_leaks:
        for code, pii_type, oses in _parse_codes(token):
            cadence = (
                "once"
                if pii_type in (PiiType.EMAIL, PiiType.PASSWORD, PiiType.BIRTHDAY)
                else "per_action"
            )
            add(pii_type, _ALIAS.get(alias, alias), medium, oses, cadence=cadence)
    return tuple(leaks)


def _build_spec(row: CatalogRow) -> ServiceSpec:
    app = AppConfig(
        sdk_domains=_domains(row.sdks),
        api_calls_per_action=row.api_calls,
        https=row.app_https,
        permissions=row.permissions,
    )
    web = WebConfig(
        tracker_domains=_domains(row.trackers),
        ad_exchange_domains=_domains(row.exchanges),
        ad_slots_per_page=row.ad_slots,
        beacons_per_action=row.web_beacon_rate,
        https=row.web_https,
    )
    return ServiceSpec(
        name=row.name,
        slug=row.slug,
        category=row.category,
        rank=row.rank,
        domain=row.domain,
        extra_domains=row.extra_domains,
        requires_login=row.login,
        app=app,
        web=web,
        leaks=_build_leaks(row),
        oses=("ios",) if row.ios_only else ("android", "ios"),
    )


# ---------------------------------------------------------------------------
# The catalog rows.  Leak codes were solved against the paper's quotas —
# see the module docstring before editing any code string.
# ---------------------------------------------------------------------------

_ROWS = (
    # --- Business (2): app 100% leak, web 50% --------------------------------
    CatalogRow("Indeed Job Search", "Business", 2, "indeed.com",
               sdks="ga,fb,crash", trackers="ga,fb,gtm,newrelic,optim", exchanges="", ad_slots=0,
               app_codes="UID", web_codes="L:i"),
    CatalogRow("Glassdoor", "Business", 4, "glassdoor.com",
               sdks="ga,fb,mixpanel", trackers="ga,optim,gtm,newrelic,score", exchanges="", ad_slots=0,
               app_codes="UID", web_codes=""),
    # --- Education (4): app 75%, web 50% -------------------------------------
    CatalogRow("Duolingo", "Education", 5, "duolingo.com",
               sdks="ga,fb,crash", trackers="ga,fb,gtm,optim", exchanges="", ad_slots=0,
               app_codes="E,G,UID", web_codes=""),
    CatalogRow("Quizlet", "Education", 10, "quizlet.com",
               sdks="ga,fb,mixpanel", trackers="ga,fb,gsyn", exchanges="dclk",
               app_codes="E,U,UID", web_codes="N:i"),
    CatalogRow("Dictionary.com", "Education", 20, "dictionary.com", login=False,
               # The ad-mediation outlier: its app contacts more A&A
               # domains than its web site (Fig 1a's positive tail; the
               # Education row's 11.7±14.4 domains in Table 1).
               sdks=("ga,fb,gsyn,2mdn,moat,ssys,criteo,krxd,dclk,adnxs,rubicon,pubmatic,"
                     "openx,casale,score,quant,flurry,mopub,amzn,advcom,mathtag,tradedesk,"
                     "bidswitch,smart,yieldmo,gumgum,sthru,ix,dv,quant"),
               trackers="ga,fb,gsyn", exchanges="dclk", ad_slots=2,
               app_codes="L:i", web_codes="G:i",
               loc_fanout="all", permissions=(Permission.LOCATION,)),
    CatalogRow("Khan Academy", "Education", 29, "khanacademy.org",
               sdks="ga", trackers="ga", exchanges="", ad_slots=0,
               app_codes="", web_codes=""),
    # --- Entertainment (6): app 66.7%, web 50% -------------------------------
    CatalogRow("Netflix", "Entertainment", 3, "netflix.com",
               sdks="crash", trackers="optim", exchanges="", ad_slots=0,
               app_codes="", web_codes=""),
    CatalogRow("Hulu", "Entertainment", 7, "hulu.com",
               sdks="ga,fb,crash,mopub,moat", trackers="ga,fb,moat", exchanges="dclk", ad_slots=1,
               app_codes="D,E,UID", web_codes=""),
    CatalogRow("IMDb", "Entertainment", 12, "imdb.com", login=False,
               sdks="ga,fb,vrvm,amzn", trackers="ga,fb,score,amzn", exchanges="amzn,dclk",
               app_codes="D,L,UID", web_codes="N:i"),
    CatalogRow("Fandango", "Entertainment", 21, "fandango.com", ios_only=True,
               sdks="ga,fb,2mdn,criteo", trackers="ga,fb,2mdn,krxd,tiq", exchanges="dclk,criteo",
               app_codes="L,UID", web_codes="L", web_loc_fanout=1),
    CatalogRow("NCAA Sports", "Entertainment", 25, "ncaa.com",
               sdks="ga,fb,moat,ssys", trackers="ga,fb,moat,krxd,cbeat", exchanges="dclk,adnxs",
               ad_slots=3, app_codes="PW,UID", web_codes="PW",
               credential_routes=(("app", "PW", "gigya"), ("web", "PW", "gigya"))),
    CatalogRow("Twitch", "Entertainment", 30, "twitch.tv",
               sdks="ga,crash", trackers="ga", exchanges="", ad_slots=0,
               app_codes="", web_codes=""),
    # --- Lifestyle (6): app 100%, web 100% -----------------------------------
    CatalogRow("Yelp", "Lifestyle", 15, "yelp.com", extra_domains=("yelpcdn.com",),
               sdks="ga,fb,adjust", trackers="ga,fb,criteo,optim", exchanges="dclk",
               app_codes="D,L,N,UID", web_codes="L,N"),
    CatalogRow("Grubhub", "Lifestyle", 30, "grubhub.com",
               sdks="ga,fb,taplytics,branch", trackers="ga,fb,criteo,tiq", exchanges="dclk",
               app_codes="D,E,L,N,P,PW,UID", web_codes="E,L,N",
               credential_routes=(("app", "PW", "taplytics"),)),
    CatalogRow("Starbucks", "Lifestyle", 45, "starbucks.com",
               sdks="ga,fb,omtrdc,btag", trackers="ga,fb,omtrdc,demdex,bluekai,krxd,tiq,btag",
               exchanges="dclk,criteo,adnxs", ad_slots=2,
               app_codes="D,L,UID", web_codes="E,L"),
    CatalogRow("AllRecipes Dinner Spinner", "Lifestyle", 70, "allrecipes.com", login=False,
               sdks="ga,fb,grocery,gsyn,2mdn,moat", trackers="ga,fb,grocery,gsyn,2mdn,moat,score,quant,krxd,taboola,outbrain,revcontent,mgid,zergnet",
               exchanges="dclk,criteo,adnxs,rubicon,amzn,contextweb,lijit,sonobi", ad_slots=5, web_beacon_rate=3,
               app_codes="L,UID", web_codes="L"),
    CatalogRow("The Food Network", "Lifestyle", 87, "foodnetwork.com",
               sdks="ga,fb,ssys,moat,btag", trackers="ga,fb,ssys,moat,krxd,demdex,gtm",
               exchanges="dclk,criteo,amzn", ad_slots=3,
               app_codes="N,PW,UID", web_codes="N,PW",
               credential_routes=(("app", "PW", "gigya"), ("web", "PW", "gigya"))),
    CatalogRow("Zillow", "Lifestyle", 100, "zillow.com",
               sdks="ga,fb,crash", trackers="ga,fb,criteo,demdex", exchanges="dclk",
               app_codes="L,UID", web_codes="E,L", web_loc_fanout=1),
    # --- Music (4): app 100%, web 50% ----------------------------------------
    CatalogRow("Spotify", "Music", 80, "spotify.com",
               sdks="fb,crash,branch", trackers="ga,optim,gtm,score,quant", exchanges="", ad_slots=0,
               app_codes="D,E,UID", web_codes=""),
    CatalogRow("SoundCloud", "Music", 88, "soundcloud.com",
               sdks="ga,fb,afly", trackers="ga,fb,score,quant", exchanges="", ad_slots=0,
               app_codes="E,U,UID", web_codes="G:i",
               extra_leaks=(("web", "G:i", "score"), ("web", "G:i", "quant"))),
    CatalogRow("Shazam", "Music", 96, "shazam.com", login=False,
               sdks="fb,flurry", trackers="ga", exchanges="", ad_slots=0,
               app_codes="L:a", web_codes=""),
    CatalogRow("iHeartRadio", "Music", 105, "iheart.com",
               sdks="ga,fb,vrvm,2mdn,adjust", trackers="ga,fb,2mdn,demdex", exchanges="dclk",
               app_codes="D,E,G,L,UID", web_codes="U:i",
               extra_leaks=(("web", "U:i", "fb"), ("web", "U:i", "demdex"))),
    # --- News (2): app 100%, web 100% ----------------------------------------
    CatalogRow("BBC News", "News", 3, "bbc.com", extra_domains=("bbci.co.uk",), web_loc_fanout=4,
               login=False, web_https=False,
               sdks="fb,crash", plaintext=("L", "N"),
               trackers="ga,fb,score,cbeat,krxd,moat,quant,newrelic,optim,demdex,bluekai,omtrdc,gtm,gts,taboola,outbrain,gumgum,sthru,zergnet,revcontent,mgid,teads",
               exchanges="dclk,adnxs,rubicon,pubmatic,openx,casale,criteo,amzn,advcom,smart,ix,contextweb,lijit,sonobi,adform,triplelift,spotx,tremor",
               ad_slots=6, app_codes="UID:a", web_codes="L,N", web_beacon_rate=4),
    CatalogRow("CNN News", "News", 5, "cnn.com", login=False, web_https=False,
               sdks="ga,247,moat,gsyn,2mdn", loc_fanout="all", plaintext=("L", "N", "G"), web_loc_fanout=4,
               trackers="ga,fb,score,cbeat,krxd,moat,quant,newrelic,demdex,bluekai,omtrdc,gtm,gts,taboola,outbrain,247,tiq,dv,zergnet,revcontent,teads,medianet",
               exchanges="dclk,adnxs,rubicon,pubmatic,openx,casale,criteo,amzn,advcom,ix,contextweb,lijit,sonobi,adform,stickyads,adtechus",
               ad_slots=6, app_codes="L", web_codes="G,L,N", web_beacon_rate=4),
    # --- Shopping (9): app 100%, web 77.8% -----------------------------------
    CatalogRow("Amazon", "Shopping", 4, "amazon.com",
               sdks="fb,amzn,crash", trackers="amzn", exchanges="amzn", ad_slots=1,
               app_codes="D,UID", web_codes="N"),
    CatalogRow("eBay", "Shopping", 6, "ebay.com",
               sdks="fb,crash,mixpanel", trackers="ga,fb,criteo,dv", exchanges="dclk,criteo",
               app_codes="D,UID", web_codes="L,N", web_loc_fanout=1),
    CatalogRow("Walmart", "Shopping", 8, "walmart.com",
               sdks="ga,fb,criteo", trackers="ga,fb,criteo,monetate,tiq,krxd", exchanges="dclk,criteo",
               app_codes="L:a,UID", web_codes="L:i,P:i", web_loc_fanout=3),
    CatalogRow("Target", "Shopping", 10, "target.com",
               sdks="ga,fb,monetate", trackers="ga,fb,criteo,monetate,demdex,tiq,btag", exchanges="dclk,criteo",
               app_codes="L:a,UID", web_codes="L:i,N:i"),
    CatalogRow("Etsy", "Shopping", 12, "etsy.com",
               sdks="ga,fb,crash", trackers="ga,fb,criteo,cloudinary,dv", exchanges="dclk,criteo",
               app_codes="UID", web_codes="G:i,U:i",
               extra_leaks=(("web", "G:i", "cloudinary"), ("web", "U:i", "cloudinary"))),
    CatalogRow("Groupon", "Shopping", 15, "groupon.com",
               sdks="ga,fb,criteo", trackers="ga,fb,criteo,marin,tiq", exchanges="dclk,criteo",
               app_codes="E:a,L:a,UID", web_codes="E:i,G:i,L:i", web_loc_fanout=3),
    CatalogRow("Wish", "Shopping", 18, "wish.com",
               sdks="ga,fb,liftoff,afly", trackers="fb,criteo", exchanges="criteo",
               app_codes="E:i,L:i,UID:i", web_codes=""),
    CatalogRow("Best Buy", "Shopping", 20, "bestbuy.com",
               sdks="ga,fb,webtrends,marin", trackers="ga,fb,criteo,webtrends,marin,dv,tiq",
               exchanges="dclk,criteo", app_codes="UID", web_codes="E:a,L:a", web_loc_fanout=1),
    CatalogRow("RetailMeNot", "Shopping", 30, "retailmenot.com", login=False,
               sdks="ga,fb,gsyn,2mdn", trackers="ga,fb,criteo,marin", exchanges="dclk,criteo",
               app_codes="L:i,UID:i", web_codes=""),
    # --- Social (2): app 100%, web 100% --------------------------------------
    CatalogRow("Reddit", "Social", 20, "reddit.com",
               sdks="ga,fb,crash,branch,mixpanel", trackers="ga,score", exchanges="dclk", ad_slots=1,
               app_codes="G,N,U,UID", web_codes="N,U"),
    CatalogRow("Meetup", "Social", 28, "meetup.com",
               sdks="ga,fb,mixpanel,score,quant", trackers="ga,fb,optim,gtm,newrelic,quant", exchanges="", ad_slots=0,
               app_codes="B,E,G,N", web_codes="E,G,U",
               extra_leaks=(("app", "E", "mixpanel"), ("app", "G", "score"), ("app", "E", "quant"))),
    # --- Travel (12): app 91.7%, web 91.7% -----------------------------------
    CatalogRow("JetBlue", "Travel", 10, "jetblue.com",
               sdks="fb,usablenet,crash", trackers="ga,fb,tiq", exchanges="",
               ad_slots=0, app_codes="E,L,PW", web_codes="N:i",
               credential_routes=(("app", "PW", "usablenet"), ("app", "E", "usablenet"))),
    CatalogRow("Priceline", "Travel", 15, "priceline.com",
               sdks="ga,fb,kochava", trackers="ga,fb,criteo,krxd,tiq", exchanges="dclk,criteo",
               app_codes="L,N,UID", web_codes="B,G,L,N", web_loc_fanout=4),
    CatalogRow("Expedia", "Travel", 22, "expedia.com",
               sdks="ga,fb,omtrdc,crash", trackers="ga,fb,criteo,omtrdc,tiq", exchanges="dclk,criteo",
               app_codes="D,L,N,UID", web_codes="L,N,U"),
    CatalogRow("Kayak", "Travel", 30, "kayak.com", login=False,
               sdks="crash", trackers="ga,fb,criteo,dv", exchanges="dclk,criteo",
               app_codes="", web_codes="L:i", web_loc_fanout=1),
    CatalogRow("TripAdvisor", "Travel", 38, "tripadvisor.com",
               sdks="ga,fb,crash,moat", trackers="ga,fb,criteo,score,quant", exchanges="dclk,criteo,rubicon",
               ad_slots=3, app_codes="L,UID", web_codes="G,L"),
    CatalogRow("Uber", "Travel", 45, "uber.com",
               sdks="fb,branch,mixpanel", trackers="ga,optim,gtm,newrelic", exchanges="", ad_slots=0,
               app_codes="D,L,P,UID", web_codes="L,P"),
    CatalogRow("Lyft", "Travel", 52, "lyft.com",
               sdks="fb,branch,mixpanel", trackers="ga,optim,gtm,newrelic", exchanges="", ad_slots=0,
               app_codes="L,P,UID", web_codes="L", web_loc_fanout=1),
    CatalogRow("Airbnb", "Travel", 60, "airbnb.com",
               sdks="ga,fb,afly,crash", trackers="ga,fb,criteo,newrelic", exchanges="dclk",
               app_codes="L,N,UID", web_codes="L,N"),
    CatalogRow("Booking.com", "Travel", 68, "booking.com",
               sdks="fb,crash,adjust", trackers="ga,fb,criteo,demdex", exchanges="dclk,criteo",
               app_codes="L,N,UID", web_codes="L,N"),
    CatalogRow("Hotels.com", "Travel", 75, "hotels.com",
               sdks="ga,fb,criteo,kochava", trackers="ga,fb,criteo,btag,omtrdc", exchanges="dclk,criteo",
               app_codes="L,UID", web_codes="E,L,PW",
               credential_routes=(("web", "PW", "btag"),), web_loc_fanout=3),
    CatalogRow("Hopper", "Travel", 80, "hopper.com", ios_only=True,
               sdks="ga,fb,afly", trackers="ga,fb,gtm,optim", exchanges="", ad_slots=0,
               app_codes="D,L,UID", web_codes="E"),
    CatalogRow("Waze", "Travel", 71, "waze.com", login=False,
               sdks="flurry", trackers="ga", exchanges="", ad_slots=0,
               app_codes="L:a", web_codes="",
               permissions=(Permission.LOCATION,)),
    # --- Weather (3): app 100%, web 100% -------------------------------------
    CatalogRow("The Weather Channel", "Weather", 2, "weather.com",
               extra_domains=("imwx.com",), login=False, app_https=False,
               sdks="ga,fb,gsyn,2mdn,moat,ssys,krxd,dv,tiq", loc_fanout="all", plaintext=("L",), web_loc_fanout=3,
               trackers="ga,fb,moat,krxd,score,quant,demdex,gts", exchanges="dclk,adnxs,criteo,amzn",
               ad_slots=4, app_codes="D,L,UID", web_codes="L", web_beacon_rate=2),
    CatalogRow("AccuWeather", "Weather", 3, "accuweather.com",
               login=False, app_https=False,
               sdks="ga,fb,gsyn", plaintext=("L",), web_loc_fanout=4,
               trackers="ga,fb,score,quant,moat,bluekai,taboola,outbrain,gtm,newrelic,teads,medianet",
               exchanges="dclk,adnxs,rubicon,pubmatic,criteo,amzn,advcom,smart,adform,tremor,spotx",
               ad_slots=5, app_codes="D,L,UID", web_codes="L"),
    CatalogRow("Weather Underground", "Weather", 5, "wunderground.com", login=True,
               sdks="ga,fb,amobee,gsyn,2mdn,moat,ssys,krxd,omtrdc", loc_fanout="all", plaintext=("L",),
               trackers="ga,fb,amobee,moat,krxd,score,gts", exchanges="dclk,adnxs,criteo",
               ad_slots=4, app_codes="D,L,UID", web_codes="L", web_beacon_rate=2),
)


def build_catalog() -> list:
    """Build the full 50-service catalog as :class:`ServiceSpec` objects."""
    specs = [_build_spec(row) for row in _ROWS]
    if len(specs) != 50:
        raise RuntimeError(f"catalog must contain 50 services, found {len(specs)}")
    return specs


def catalog_by_slug() -> dict:
    return {spec.slug: spec for spec in build_catalog()}


def rows() -> tuple:
    """The raw catalog rows (useful for tests and tooling)."""
    return _ROWS
