"""``python -m repro`` — the CLI without an installed console script.

Keeps Makefile targets and CI jobs working straight off a checkout
(``PYTHONPATH=src python -m repro serve ...``).
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
