"""Test personas: the ground-truth PII planted on a handset.

The paper's experiments are controlled — the testers know every piece of
PII present on the device, which is what makes reliable detection
possible (§3.2 "Identifying PII").  A :class:`Persona` is that ground
truth: account credentials created fresh per service, profile attributes
entered at sign-up, and the device's physical location.

:meth:`Persona.ground_truth` exports the persona as a mapping from
:class:`~repro.pii.types.PiiType` to the concrete strings the detector
should search for.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..pii.types import PiiType

_FIRST_NAMES = [
    "Alice", "Brian", "Carla", "Derek", "Elena", "Felix", "Grace", "Hassan",
    "Irene", "Jamal", "Kara", "Liam", "Mona", "Nikhil", "Olga", "Pedro",
    "Quinn", "Rosa", "Sam", "Tara",
]
_LAST_NAMES = [
    "Anderson", "Brooks", "Castillo", "Dawson", "Ellis", "Ferreira", "Gupta",
    "Hoffman", "Ivanov", "Jensen", "Kowalski", "Lindqvist", "Moreau", "Nakamura",
    "Okafor", "Petrov", "Quigley", "Rossi", "Svensson", "Tanaka",
]
_GENDERS = ["female", "male"]
_MAIL_DOMAIN = "testmail.example"

# Boston-area coordinates: the study was conducted in the Boston area
# (§3.3), and we keep that detail for realism in location payloads.
_BOSTON_LAT = 42.3601
_BOSTON_LON = -71.0589
_BOSTON_ZIPS = ["02115", "02116", "02118", "02120", "02134", "02139", "02155"]


@dataclass
class Persona:
    """One tester identity with all ground-truth PII."""

    first_name: str
    last_name: str
    gender: str
    birthday: str  # YYYY-MM-DD
    zip_code: str
    phone_number: str  # digits only, US 10-digit
    latitude: float
    longitude: float
    email: str = ""
    username: str = ""
    password: str = ""

    def __post_init__(self) -> None:
        if not self.email:
            self.email = f"{self.username or self.first_name.lower()}@{_MAIL_DOMAIN}"

    @property
    def full_name(self) -> str:
        return f"{self.first_name} {self.last_name}"

    def fresh_account(self, service_slug: str, rng: random.Random) -> "Persona":
        """Derive a persona with new credentials for one service.

        The methodology creates a previously-unused email address and
        account per service requiring login (§3.2); profile attributes
        stay the same so cross-service comparisons remain meaningful.
        """
        # Handles deliberately avoid the tester's name (so a leaked
        # username/email is not also a spurious name leak) and the email
        # local part differs from the username (so an email leak is not
        # also a spurious username leak).
        suffix = f"{rng.randrange(10_000):04d}"
        username = f"tester{suffix}.{service_slug}"
        mailbox = f"signup.{suffix}.{service_slug}"
        return Persona(
            first_name=self.first_name,
            last_name=self.last_name,
            gender=self.gender,
            birthday=self.birthday,
            zip_code=self.zip_code,
            phone_number=self.phone_number,
            latitude=self.latitude,
            longitude=self.longitude,
            email=f"{mailbox}@{_MAIL_DOMAIN}",
            username=username,
            password=_random_password(rng),
        )

    def ground_truth(self) -> dict:
        """Map each :class:`PiiType` to the values to search traffic for.

        Device-bound identifiers (UID, device info) come from the phone,
        not the persona, so they are absent here; see
        :meth:`repro.device.phone.Phone.ground_truth`.
        """
        return {
            PiiType.BIRTHDAY: [self.birthday],
            PiiType.EMAIL: [self.email],
            PiiType.GENDER: [self.gender],
            PiiType.LOCATION: [
                f"{self.latitude:.6f}",
                f"{self.longitude:.6f}",
                self.zip_code,
            ],
            PiiType.NAME: [self.full_name, self.first_name, self.last_name],
            PiiType.PHONE: [self.phone_number],
            PiiType.USERNAME: [self.username] if self.username else [],
            PiiType.PASSWORD: [self.password] if self.password else [],
        }


def _random_password(rng: random.Random) -> str:
    alphabet = "abcdefghijkmnopqrstuvwxyzABCDEFGHJKLMNPQRSTUVWXYZ23456789"
    return "pw" + "".join(rng.choice(alphabet) for _ in range(12))


def generate_persona(rng: random.Random) -> Persona:
    """Generate a deterministic persona from ``rng``."""
    first = rng.choice(_FIRST_NAMES)
    last = rng.choice(_LAST_NAMES)
    year = rng.randrange(1975, 1998)
    month = rng.randrange(1, 13)
    day = rng.randrange(1, 29)
    phone = "617" + "".join(str(rng.randrange(10)) for _ in range(7))
    return Persona(
        first_name=first,
        last_name=last,
        gender=rng.choice(_GENDERS),
        birthday=f"{year:04d}-{month:02d}-{day:02d}",
        zip_code=rng.choice(_BOSTON_ZIPS),
        phone_number=phone,
        latitude=_BOSTON_LAT + rng.uniform(-0.05, 0.05),
        longitude=_BOSTON_LON + rng.uniform(-0.05, 0.05),
        username=f"tester{rng.randrange(1000, 9999)}",
        email=f"signup{rng.randrange(1000, 9999)}@{_MAIL_DOMAIN}",
        password=_random_password(rng),
    )
