"""Simulated handsets.

A :class:`Phone` models the four test devices from §3.2 — Nexus 4 and
Nexus 5 on stock Android 4.4, and two iPhone 5's on iOS 9.3.1 — at the
level the study needs: persistent and resettable identifiers, a CA trust
store, app install/uninstall, a runtime permission model, a GPS sensor,
VPN attachment to the interception proxy, and the OS background services
whose traffic the methodology filters out.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..http.transport import DirectTransport, Network, Transport
from ..pii.types import PiiType
from ..tls.certs import CaStore
from .identifiers import (
    generate_ad_id,
    generate_android_id,
    generate_imei,
    generate_serial,
    generate_wifi_mac,
)
from .persona import Persona

ANDROID = "android"
IOS = "ios"

# Hostnames of OS background services (the ones §3.2 filters by domain).
OS_SERVICE_HOSTS = {
    ANDROID: (
        "play.googleapis.com",
        "android.clients.google.com",
        "mtalk.google.com",
        "connectivitycheck.gstatic.com",
    ),
    IOS: (
        "init.itunes.apple.com",
        "gsp-ssl.ls.apple.com",
        "push.apple.com",
        "configuration.apple.com",
    ),
}

_USER_AGENTS = {
    (ANDROID, "app"): "Dalvik/1.6.0 (Linux; U; Android 4.4.4; {model} Build/KTU84P)",
    (ANDROID, "web"): (
        "Mozilla/5.0 (Linux; Android 4.4.4; {model} Build/KTU84P) AppleWebKit/537.36 "
        "(KHTML, like Gecko) Chrome/49.0.2623.105 Mobile Safari/537.36"
    ),
    (IOS, "app"): "{app}/{version} CFNetwork/758.3.15 Darwin/15.4.0",
    (IOS, "web"): (
        "Mozilla/5.0 (iPhone; CPU iPhone OS 9_3_1 like Mac OS X) AppleWebKit/601.1.46 "
        "(KHTML, like Gecko) Version/9.0 Mobile/13E238 Safari/601.1"
    ),
}


class DeviceError(Exception):
    """Raised on invalid device operations (e.g. GPS without permission)."""


class Permission:
    """The runtime permissions relevant to PII access."""

    LOCATION = "location"
    PHONE_STATE = "phone_state"  # IMEI / device identifiers
    CONTACTS = "contacts"
    STORAGE = "storage"

    ALL = (LOCATION, PHONE_STATE, CONTACTS, STORAGE)


@dataclass
class PhoneSpec:
    """Static description of a handset model."""

    model: str
    os_name: str
    os_version: str

    @classmethod
    def nexus4(cls) -> "PhoneSpec":
        return cls(model="Nexus 4", os_name=ANDROID, os_version="4.4.4")

    @classmethod
    def nexus5(cls) -> "PhoneSpec":
        return cls(model="Nexus 5", os_name=ANDROID, os_version="4.4.4")

    @classmethod
    def iphone5(cls) -> "PhoneSpec":
        return cls(model="iPhone 5", os_name=IOS, os_version="9.3.1")


class Phone:
    """One simulated handset attached to a simulated network."""

    def __init__(self, spec: PhoneSpec, network: Network, rng: random.Random) -> None:
        self.spec = spec
        self.network = network
        self._rng = rng
        # Hardware identifiers survive factory reset.
        self.imei = generate_imei(rng, spec.model)
        self.wifi_mac = generate_wifi_mac(rng, spec.os_name)
        self.serial = generate_serial(rng)
        self.build_tag = f"{spec.os_version}-{rng.getrandbits(16):04x}"
        # Resettable state, populated by factory_reset().
        self.ad_id = ""
        self.android_id = ""
        self.installed_apps: set = set()
        self.permissions: dict = {}
        self.persona: Optional[Persona] = None
        self.ca_store = CaStore()
        self._vpn_proxy = None
        self._vpn_client_ip = ""
        self.background_sync = True
        # Models the *user* answering permission prompts, so it is not
        # device state and survives factory_reset: a callable
        # (app_slug, permission) -> bool, or None for the methodology's
        # always-approve tester.
        self.permission_decider = None
        self.factory_reset()

    # -- identity ------------------------------------------------------------

    @property
    def os_name(self) -> str:
        return self.spec.os_name

    @property
    def device_name(self) -> str:
        """OS-reported device descriptor (model + build, no user name)."""
        return f"{self.spec.model}/{self.build_tag}"

    def user_agent(self, medium: str, app_name: str = "", app_version: str = "1.0") -> str:
        template = _USER_AGENTS[(self.os_name, medium)]
        return template.format(model=self.spec.model, app=app_name or "App", version=app_version)

    def ground_truth(self) -> dict:
        """Device-bound PII values, keyed by :class:`PiiType`.

        Combined with :meth:`Persona.ground_truth` this is the complete
        searchable PII set for an experiment on this phone.
        """
        unique_ids = [self.imei, self.wifi_mac, self.ad_id, self.serial]
        if self.os_name == ANDROID:
            unique_ids.append(self.android_id)
        # Only the unique device name counts as searchable device info;
        # the bare model string appears in every User-Agent header and
        # would swamp detection with meaningless hits.
        truth = {
            PiiType.UNIQUE_ID: [v for v in unique_ids if v],
            PiiType.DEVICE_INFO: [self.device_name],
        }
        if self.persona is not None:
            for pii_type, values in self.persona.ground_truth().items():
                truth[pii_type] = values
        return truth

    # -- lifecycle -------------------------------------------------------------

    def factory_reset(self) -> None:
        """Wipe resettable identifiers, apps, permissions, and trust.

        IMEI, MAC, and serial are burned into hardware and survive; the
        advertising ID and Android ID are regenerated, matching real
        factory-reset behaviour.
        """
        self.ad_id = generate_ad_id(self._rng)
        self.android_id = generate_android_id(self._rng) if self.os_name == ANDROID else ""
        self.installed_apps = set()
        self.permissions = {}
        self.persona = None
        self.ca_store = CaStore()
        self._vpn_proxy = None
        self._vpn_client_ip = ""
        self.background_sync = True

    def sign_in(self, persona: Persona) -> None:
        """Provision the device account (the tester's persona)."""
        self.persona = persona

    # -- apps and permissions ----------------------------------------------------

    def install_app(self, app_slug: str) -> None:
        self.installed_apps.add(app_slug)

    def uninstall_app(self, app_slug: str) -> None:
        self.installed_apps.discard(app_slug)
        self.permissions.pop(app_slug, None)

    def is_installed(self, app_slug: str) -> bool:
        return app_slug in self.installed_apps

    def request_permission(self, app_slug: str, permission: str, grant: bool = True) -> bool:
        """An app asks for a runtime permission; the tester decides.

        The methodology approves every prompt (§3.2), so ``grant``
        defaults to True, but tests can deny to model cautious users —
        and a :attr:`permission_decider`, when set, answers prompts the
        caller would otherwise approve (the campaign engine's sampled
        per-user grant behaviour).
        """
        if permission not in Permission.ALL:
            raise DeviceError(f"unknown permission {permission!r}")
        if not self.is_installed(app_slug):
            raise DeviceError(f"app {app_slug!r} is not installed")
        if grant and self.permission_decider is not None:
            grant = bool(self.permission_decider(app_slug, permission))
        if grant:
            self.permissions.setdefault(app_slug, set()).add(permission)
        return grant

    def has_permission(self, app_slug: str, permission: str) -> bool:
        return permission in self.permissions.get(app_slug, set())

    # -- sensors --------------------------------------------------------------

    def read_gps(self, app_slug: Optional[str] = None) -> tuple:
        """Return (latitude, longitude); enforces the permission model.

        ``app_slug`` of None means the platform browser, which obtains
        geolocation through its own user prompt (always approved, like
        every prompt in the methodology).
        """
        if self.persona is None:
            raise DeviceError("no persona signed in; GPS fix unavailable")
        if app_slug is not None and not self.has_permission(app_slug, Permission.LOCATION):
            raise DeviceError(f"app {app_slug!r} lacks the location permission")
        return (self.persona.latitude, self.persona.longitude)

    def read_imei(self, app_slug: str) -> str:
        """Return the IMEI; requires the phone-state permission."""
        if not self.has_permission(app_slug, Permission.PHONE_STATE):
            raise DeviceError(f"app {app_slug!r} lacks the phone-state permission")
        return self.imei

    # -- network attachment ------------------------------------------------------

    def connect_vpn(self, proxy, client_ip: str = "10.11.0.2") -> None:
        """Tunnel the device through the interception proxy.

        Installs the proxy's CA into the device trust store — the manual
        provisioning step Meddle requires — so MITMed TLS validates.
        """
        self.ca_store.trust(proxy.ca_issuer)
        self._vpn_proxy = proxy
        self._vpn_client_ip = client_ip

    def disconnect_vpn(self) -> None:
        self._vpn_proxy = None
        self._vpn_client_ip = ""

    @property
    def vpn_connected(self) -> bool:
        return self._vpn_proxy is not None

    # Optional transport decorator, e.g. a tracker-blocking extension
    # (see repro.core.countermeasures).  Applied to foreground traffic
    # only; background/OS flows bypass it like they bypass extensions.
    transport_wrapper = None

    def transport(self, tags: Optional[set] = None) -> Transport:
        """The transport current network attachment provides."""
        if self._vpn_proxy is not None:
            transport = self._vpn_proxy.transport_for(
                self.ca_store, client_ip=self._vpn_client_ip, tags=tags
            )
        else:
            transport = DirectTransport(self.network)
        if self.transport_wrapper is not None and not tags:
            return self.transport_wrapper(transport)
        return transport

    # -- background services -------------------------------------------------------

    def os_service_hosts(self) -> tuple:
        return OS_SERVICE_HOSTS[self.os_name]

    def background_tick(self, session_factory) -> int:
        """Emit one round of OS background traffic; returns request count.

        With background sync disabled (the methodology's setting) only a
        single connectivity keepalive is sent; with it enabled, every OS
        service checks in.  ``session_factory`` builds a client session
        from a transport, letting the runner tag these flows.
        """
        hosts = self.os_service_hosts()
        if not self.background_sync:
            hosts = hosts[:1]
        sent = 0
        session = session_factory(self.transport(tags={"background", "os-service"}))
        for host in hosts:
            if not self.network.knows(host):
                continue
            session.get(f"https://{host}/checkin")
            sent += 1
        session.close()
        return sent
