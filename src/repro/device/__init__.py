"""Simulated handset substrate: identifiers, personas, phones, browsers."""

from .browser import Browser, BrowserSession, PageLoad, extract_resources
from .identifiers import (
    generate_ad_id,
    generate_android_id,
    generate_imei,
    generate_serial,
    generate_wifi_mac,
    is_valid_ad_id,
    is_valid_imei,
    luhn_check_digit,
)
from .persona import Persona, generate_persona
from .phone import ANDROID, IOS, OS_SERVICE_HOSTS, DeviceError, Permission, Phone, PhoneSpec

__all__ = [
    "ANDROID",
    "Browser",
    "BrowserSession",
    "DeviceError",
    "IOS",
    "OS_SERVICE_HOSTS",
    "PageLoad",
    "Permission",
    "Persona",
    "Phone",
    "PhoneSpec",
    "extract_resources",
    "generate_ad_id",
    "generate_android_id",
    "generate_imei",
    "generate_persona",
    "generate_serial",
    "generate_wifi_mac",
    "is_valid_ad_id",
    "is_valid_imei",
    "luhn_check_digit",
]
