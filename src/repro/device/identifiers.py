"""Hardware and advertising identifier generation and validation.

Each simulated handset carries the identifier set its real counterpart
exposes: IMEI (with a valid Luhn check digit), Wi-Fi MAC, and the
OS-specific identifiers — Android ID and AAID on Android, IDFA and IDFV
on iOS.  These are the "unique identifiers" the paper finds leaking only
from apps.
"""

from __future__ import annotations

import random

from ..net.inet import random_mac

# Type Allocation Codes of the handset models used in the study
# (Nexus 4, Nexus 5, iPhone 5); only used to make IMEIs look plausible.
_TAC_BY_MODEL = {
    "Nexus 4": "35391805",
    "Nexus 5": "35824005",
    "iPhone 5": "01332700",
}


def luhn_check_digit(digits: str) -> int:
    """Compute the Luhn check digit for a string of decimal digits."""
    if not digits.isdigit():
        raise ValueError(f"Luhn input must be decimal digits: {digits!r}")
    total = 0
    # Double every second digit counting from the right of digits+check.
    for index, char in enumerate(reversed(digits)):
        value = int(char)
        if index % 2 == 0:
            value *= 2
            if value > 9:
                value -= 9
        total += value
    return (10 - total % 10) % 10


def is_valid_imei(imei: str) -> bool:
    """Validate a 15-digit IMEI's length and Luhn check digit."""
    if len(imei) != 15 or not imei.isdigit():
        return False
    return luhn_check_digit(imei[:14]) == int(imei[14])


def generate_imei(rng: random.Random, model: str = "Nexus 5") -> str:
    """Generate a Luhn-valid IMEI with the model's TAC prefix."""
    tac = _TAC_BY_MODEL.get(model, "35824005")
    serial = "".join(str(rng.randrange(10)) for _ in range(14 - len(tac)))
    body = tac + serial
    return body + str(luhn_check_digit(body))


def generate_android_id(rng: random.Random) -> str:
    """Generate a 16-hex-digit Android ID (Settings.Secure.ANDROID_ID)."""
    return f"{rng.getrandbits(64):016x}"


def generate_ad_id(rng: random.Random) -> str:
    """Generate an advertising identifier (AAID / IDFA) in UUID form."""
    raw = rng.getrandbits(128)
    hexed = f"{raw:032x}"
    return "-".join((hexed[:8], hexed[8:12], hexed[12:16], hexed[16:20], hexed[20:]))


def is_valid_ad_id(value: str) -> bool:
    """Validate the 8-4-4-4-12 hex UUID shape of an advertising ID."""
    parts = value.split("-")
    if [len(p) for p in parts] != [8, 4, 4, 4, 12]:
        return False
    return all(all(c in "0123456789abcdefABCDEF" for c in part) for part in parts)


def generate_serial(rng: random.Random) -> str:
    """Generate a hardware serial number (8 alphanumeric chars)."""
    alphabet = "0123456789ABCDEFGHJKLMNPQRSTUVWXYZ"
    return "".join(rng.choice(alphabet) for _ in range(8))


def generate_wifi_mac(rng: random.Random, os_name: str) -> str:
    """Generate a Wi-Fi MAC with a vendor prefix matching the platform."""
    oui = (0x60, 0xFA, 0xCD) if os_name == "ios" else (0xAC, 0x22, 0x0B)
    return random_mac(rng, oui=oui)
