"""Mobile browser models: Chrome on Android, Safari on iOS.

The browser is the study's web medium.  It owns a persistent cookie
store, supports private-mode contexts (fresh, discarded cookie store —
the methodology browses in private mode), and implements a miniature
page-load engine: fetch the document, extract subresource references
from the HTML (``script``/``img``/``iframe``/``link`` tags), fetch them
all, and recurse into iframes.  Tracker tags, ad slots, and RTB redirect
chains in the simulated pages all execute through this engine, which is
what makes web sessions so much chattier than app sessions (Figure 1b).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..http.cookies import CookieJar
from ..http.message import Request
from ..http.session import ClientSession, FetchResult
from ..http.transport import NetworkError, Transport
from ..http.url import Url, parse_url

_TAG_RE = re.compile(
    r"<(script|img|iframe|link)\b[^>]*?\s(?:src|href)\s*=\s*[\"']([^\"']+)[\"']",
    re.IGNORECASE,
)

MAX_IFRAME_DEPTH = 3


@dataclass
class PageLoad:
    """The result of loading one page and its resource tree."""

    url: Url
    document: FetchResult
    resources: list = field(default_factory=list)  # list[FetchResult]
    subpages: list = field(default_factory=list)  # list[PageLoad] (iframes)
    failures: list = field(default_factory=list)  # list[tuple[str, str]]

    @property
    def total_requests(self) -> int:
        count = self.document.requests_sent
        count += sum(r.requests_sent for r in self.resources)
        count += sum(p.total_requests for p in self.subpages)
        return count


def extract_resources(html: str) -> list:
    """Pull subresource references out of an HTML document.

    Returns (tag, url) pairs in document order.  ``link`` tags are kept
    only when they look like stylesheets or preconnect hints with an
    href — close enough to what a real preload scanner fetches.
    """
    out = []
    for match in _TAG_RE.finditer(html):
        tag = match.group(1).lower()
        reference = match.group(2).strip()
        if not reference or reference.startswith(("data:", "javascript:", "#", "about:")):
            continue
        out.append((tag, reference))
    return out


class Browser:
    """A platform browser bound to one phone."""

    def __init__(self, phone, name: Optional[str] = None) -> None:
        self.phone = phone
        self.name = name or ("chrome" if phone.os_name == "android" else "safari")
        self.cookie_jar = CookieJar()
        self.geolocation_allowed: dict = {}  # origin -> bool

    def user_agent(self) -> str:
        return self.phone.user_agent("web")

    def clear_state(self) -> None:
        """Clear cookies (settings > clear browsing data)."""
        self.cookie_jar.clear()

    def allow_geolocation(self, origin: str, allow: bool = True) -> None:
        """Record the user's answer to a geolocation prompt for ``origin``."""
        self.geolocation_allowed[origin] = allow

    def geolocation(self, origin: str) -> Optional[tuple]:
        """Return a GPS fix if the origin was granted geolocation.

        Mobile browsers expose GPS — a capability the paper highlights as
        distinguishing them from desktop browsing (§2.1).
        """
        if not self.geolocation_allowed.get(origin, False):
            return None
        return self.phone.read_gps(app_slug=None)

    def session(
        self,
        private: bool = False,
        now_fn: Optional[Callable] = None,
        tags: Optional[set] = None,
    ) -> "BrowserSession":
        """Open a browsing session, optionally in private mode."""
        jar = CookieJar() if private else self.cookie_jar
        client = ClientSession(
            self.phone.transport(tags=tags),
            user_agent=self.user_agent(),
            cookie_jar=jar,
            enforce_pins=False,  # browsers do not ship app pin sets
            requests_per_connection=3,
            now_fn=now_fn,
        )
        return BrowserSession(self, client, private=private)


class BrowserSession:
    """One (possibly private) browsing context."""

    def __init__(self, browser: Browser, client: ClientSession, private: bool) -> None:
        self.browser = browser
        self.client = client
        self.private = private
        self.pages_loaded = 0
        # Session HTTP cache: a resource URL already fetched in this
        # session is not re-fetched (tag scripts are shared across
        # pages; ad/beacon URLs differ per page and are never cached).
        self._cache: set = set()
        self.cache_hits = 0

    def __enter__(self) -> "BrowserSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        self.client.close()
        if self.private:
            self.client.cookie_jar.clear()

    def load_page(self, url: str, _depth: int = 0) -> PageLoad:
        """Fetch a document and its full resource tree."""
        document = self.client.get(url)
        page = PageLoad(url=parse_url(url), document=document)
        self.pages_loaded += 1
        content_type = document.response.content_type
        if "html" not in content_type.lower():
            return page
        html = document.response.body.decode("utf-8", errors="replace")
        base = document.url
        for tag, reference in extract_resources(html):
            try:
                target = str(base.join(reference))
            except Exception:
                page.failures.append((reference, "unresolvable"))
                continue
            try:
                if tag == "iframe" and _depth < MAX_IFRAME_DEPTH:
                    page.subpages.append(self.load_page(target, _depth=_depth + 1))
                else:
                    if target in self._cache:
                        self.cache_hits += 1
                        continue
                    self._cache.add(target)
                    page.resources.append(self.client.get(target))
            except NetworkError as exc:
                page.failures.append((target, str(exc)))
        return page

    def submit_form(self, url: str, fields: list) -> FetchResult:
        """POST a form the way a browser would (urlencoded, redirects)."""
        from ..http.body import encode_form

        return self.client.post(url, body=encode_form(fields))

    def send_beacon(self, url: str) -> FetchResult:
        """Fire a JS-style beacon GET (used by simulated tag scripts)."""
        return self.client.get(url)
