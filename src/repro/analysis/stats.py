"""Statistical helpers for the evaluation: CDFs, PDFs, mean±std.

Pure-Python implementations (no numpy dependency in the library proper)
matching the presentation style of the paper's figures: empirical CDFs
in percent of services, integer-binned PDFs, and the mean ± population
standard deviation format of Table 1.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence


def mean(values: Sequence) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    # fsum avoids the accumulation error a naive sum exhibits on long
    # runs of repeated floats; the clamp guarantees the result never
    # drifts a ulp outside [min(values), max(values)].
    mu = math.fsum(values) / len(values)
    lo, hi = min(values), max(values)
    if mu < lo:
        return lo
    if mu > hi:
        return hi
    return mu


def std(values: Sequence) -> float:
    """Population standard deviation (what Table 1's ± denotes)."""
    values = list(values)
    if not values:
        raise ValueError("std of empty sequence")
    mu = mean(values)
    # fsum, like mean: the two functions must agree on accumulation
    # error, or mean/std of the same long run of repeated floats drift
    # apart (squares are non-negative, so a naive sum silently drops
    # small terms once the running total grows).
    return math.sqrt(math.fsum((v - mu) ** 2 for v in values) / len(values))


def mean_std(values: Sequence) -> tuple:
    return (mean(values), std(values))


def _partials_add(partials: list, value: float) -> None:
    """Fold ``value`` into a Shewchuk partials list (``math.fsum``'s
    algorithm): the list always holds non-overlapping floats whose exact
    mathematical sum equals the exact sum of everything folded in, so
    the collapsed (correctly rounded) total is independent of both
    accumulation and merge order.  Finite inputs only.
    """
    x = value
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]


class Moments:
    """Mergeable count/fsum/fsum-of-squares accumulator (plus min/max).

    The building block of the columnar partial aggregates
    (:mod:`repro.analysis.columnar`): shards fold values in
    independently, then :meth:`merge` combines shard accumulators
    *exactly* — sums are kept as Shewchuk partials, so for any split of
    the input into shards and any merge tree the collapsed sums (hence
    :meth:`mean`) are bit-identical to a single-pass ``math.fsum``.

    :meth:`mean` equals :func:`mean` exactly (same fsum + clamp).
    :meth:`std` is the one-pass ``E[x^2] - mu^2`` form: both sums are
    exactly rounded, but the subtraction can cancel, so it agrees with
    the two-pass :func:`std` only to within a few ulps of ``E[x^2]`` —
    callers that must be byte-identical to the two-pass reference (the
    tables) keep the raw values and call :func:`mean_std` instead.
    """

    __slots__ = ("count", "_sum", "_sumsq", "_min", "_max")

    def __init__(self) -> None:
        self.count = 0
        self._sum: list = []
        self._sumsq: list = []
        self._min = None
        self._max = None

    @classmethod
    def from_values(cls, values: Iterable) -> "Moments":
        moments = cls()
        for value in values:
            moments.add(value)
        return moments

    def add(self, value) -> None:
        v = float(value)
        self.count += 1
        _partials_add(self._sum, v)
        _partials_add(self._sumsq, v * v)
        if self._min is None or v < self._min:
            self._min = v
        if self._max is None or v > self._max:
            self._max = v

    def merge(self, other: "Moments") -> "Moments":
        """Combined accumulator (associative, commutative, exact)."""
        merged = Moments()
        merged.count = self.count + other.count
        merged._sum = list(self._sum)
        merged._sumsq = list(self._sumsq)
        for x in other._sum:
            _partials_add(merged._sum, x)
        for x in other._sumsq:
            _partials_add(merged._sumsq, x)
        mins = [m for m in (self._min, other._min) if m is not None]
        maxs = [m for m in (self._max, other._max) if m is not None]
        merged._min = min(mins) if mins else None
        merged._max = max(maxs) if maxs else None
        return merged

    def sum(self) -> float:
        return math.fsum(self._sum)

    def sumsq(self) -> float:
        return math.fsum(self._sumsq)

    def mean(self) -> float:
        if not self.count:
            raise ValueError("mean of empty accumulator")
        mu = self.sum() / self.count
        if mu < self._min:
            return self._min
        if mu > self._max:
            return self._max
        return mu

    def variance(self) -> float:
        """Population variance, one-pass form (clamped at zero)."""
        if not self.count:
            raise ValueError("variance of empty accumulator")
        total = self.sum()
        return max(0.0, (self.sumsq() - total * total / self.count) / self.count)

    def std(self) -> float:
        return math.sqrt(self.variance())

    def to_dict(self) -> dict:
        """Exact serialized form (IPC-safe): partials lists included,
        so a round-trip loses no precision and later merges stay exact."""
        return {
            "count": self.count,
            "sum": list(self._sum),
            "sumsq": list(self._sumsq),
            "min": self._min,
            "max": self._max,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Moments":
        moments = cls()
        moments.count = data["count"]
        moments._sum = list(data["sum"])
        moments._sumsq = list(data["sumsq"])
        moments._min = data["min"]
        moments._max = data["max"]
        return moments

    def __eq__(self, other) -> bool:
        if not isinstance(other, Moments):
            return NotImplemented
        return (
            self.count == other.count
            and self.sum() == other.sum()
            and self.sumsq() == other.sumsq()
            and self._min == other._min
            and self._max == other._max
        )

    def __repr__(self) -> str:
        if not self.count:
            return "<Moments empty>"
        return f"<Moments n={self.count} mean={self.mean():.6g} std={self.std():.6g}>"


def format_mean_std(values: Sequence, precision: int = 1) -> str:
    """Render like Table 1: ``4.7 ± 4.7``; empty input renders ``-``."""
    values = list(values)
    if not values:
        return "-"
    mu, sigma = mean_std(values)
    return f"{mu:.{precision}f} ± {sigma:.{precision}f}"


def cdf_points(values: Sequence) -> list:
    """Empirical CDF as (x, percent_of_samples_<=_x) steps.

    Matches the figures' y-axis ("CDF of Services", 0–100).
    """
    values = sorted(values)
    n = len(values)
    if n == 0:
        return []
    points = []
    for index, value in enumerate(values, start=1):
        # Collapse duplicate x to the highest percentile.
        if points and points[-1][0] == value:
            points[-1] = (value, 100.0 * index / n)
        else:
            points.append((value, 100.0 * index / n))
    return points


def cdf_at(values: Sequence, x: float) -> float:
    """Percent of samples <= x under the empirical CDF."""
    values = list(values)
    if not values:
        return 0.0
    return 100.0 * sum(1 for v in values if v <= x) / len(values)


def pdf_histogram(values: Sequence) -> list:
    """Integer-binned PDF as (bin, percent) pairs (Figure 1e's style)."""
    values = list(values)
    if not values:
        return []
    counts = Counter(int(round(v)) for v in values)
    n = len(values)
    return [(bin_, 100.0 * count / n) for bin_, count in sorted(counts.items())]


def percentile(values: Sequence, pct: float) -> float:
    """Nearest-rank percentile (0 < pct <= 100)."""
    values = sorted(values)
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 < pct <= 100:
        raise ValueError(f"pct out of range: {pct}")
    rank = max(1, math.ceil(pct / 100.0 * len(values)))
    return values[rank - 1]


def fraction(values: Iterable, predicate) -> float:
    """Fraction of values satisfying ``predicate`` (0.0 for no values)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(1 for v in values if predicate(v)) / len(values)
