"""Statistical helpers for the evaluation: CDFs, PDFs, mean±std.

Pure-Python implementations (no numpy dependency in the library proper)
matching the presentation style of the paper's figures: empirical CDFs
in percent of services, integer-binned PDFs, and the mean ± population
standard deviation format of Table 1.
"""

from __future__ import annotations

import hashlib
import math
import random
from collections import Counter
from statistics import NormalDist
from typing import Iterable, Sequence


def mean(values: Sequence) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    # fsum avoids the accumulation error a naive sum exhibits on long
    # runs of repeated floats; the clamp guarantees the result never
    # drifts a ulp outside [min(values), max(values)].
    mu = math.fsum(values) / len(values)
    lo, hi = min(values), max(values)
    if mu < lo:
        return lo
    if mu > hi:
        return hi
    return mu


def std(values: Sequence) -> float:
    """Population standard deviation (what Table 1's ± denotes)."""
    values = list(values)
    if not values:
        raise ValueError("std of empty sequence")
    mu = mean(values)
    # fsum, like mean: the two functions must agree on accumulation
    # error, or mean/std of the same long run of repeated floats drift
    # apart (squares are non-negative, so a naive sum silently drops
    # small terms once the running total grows).
    return math.sqrt(math.fsum((v - mu) ** 2 for v in values) / len(values))


def mean_std(values: Sequence) -> tuple:
    return (mean(values), std(values))


def _partials_add(partials: list, value: float) -> None:
    """Fold ``value`` into a Shewchuk partials list (``math.fsum``'s
    algorithm): the list always holds non-overlapping floats whose exact
    mathematical sum equals the exact sum of everything folded in, so
    the collapsed (correctly rounded) total is independent of both
    accumulation and merge order.  Finite inputs only.
    """
    x = value
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]


class Moments:
    """Mergeable count/fsum/fsum-of-squares accumulator (plus min/max).

    The building block of the columnar partial aggregates
    (:mod:`repro.analysis.columnar`): shards fold values in
    independently, then :meth:`merge` combines shard accumulators
    *exactly* — sums are kept as Shewchuk partials, so for any split of
    the input into shards and any merge tree the collapsed sums (hence
    :meth:`mean`) are bit-identical to a single-pass ``math.fsum``.

    :meth:`mean` equals :func:`mean` exactly (same fsum + clamp).
    :meth:`std` is the one-pass ``E[x^2] - mu^2`` form: both sums are
    exactly rounded, but the subtraction can cancel, so it agrees with
    the two-pass :func:`std` only to within a few ulps of ``E[x^2]`` —
    callers that must be byte-identical to the two-pass reference (the
    tables) keep the raw values and call :func:`mean_std` instead.
    """

    __slots__ = ("count", "_sum", "_sumsq", "_min", "_max")

    def __init__(self) -> None:
        self.count = 0
        self._sum: list = []
        self._sumsq: list = []
        self._min = None
        self._max = None

    @classmethod
    def from_values(cls, values: Iterable) -> "Moments":
        moments = cls()
        for value in values:
            moments.add(value)
        return moments

    def add(self, value) -> None:
        v = float(value)
        self.count += 1
        _partials_add(self._sum, v)
        _partials_add(self._sumsq, v * v)
        if self._min is None or v < self._min:
            self._min = v
        if self._max is None or v > self._max:
            self._max = v

    def merge(self, other: "Moments") -> "Moments":
        """Combined accumulator (associative, commutative, exact)."""
        merged = Moments()
        merged.count = self.count + other.count
        merged._sum = list(self._sum)
        merged._sumsq = list(self._sumsq)
        for x in other._sum:
            _partials_add(merged._sum, x)
        for x in other._sumsq:
            _partials_add(merged._sumsq, x)
        mins = [m for m in (self._min, other._min) if m is not None]
        maxs = [m for m in (self._max, other._max) if m is not None]
        merged._min = min(mins) if mins else None
        merged._max = max(maxs) if maxs else None
        return merged

    def sum(self) -> float:
        return math.fsum(self._sum)

    def sumsq(self) -> float:
        return math.fsum(self._sumsq)

    def mean(self) -> float:
        if not self.count:
            raise ValueError("mean of empty accumulator")
        mu = self.sum() / self.count
        if mu < self._min:
            return self._min
        if mu > self._max:
            return self._max
        return mu

    def variance(self) -> float:
        """Population variance, one-pass form (clamped at zero)."""
        if not self.count:
            raise ValueError("variance of empty accumulator")
        total = self.sum()
        return max(0.0, (self.sumsq() - total * total / self.count) / self.count)

    def std(self) -> float:
        return math.sqrt(self.variance())

    def to_dict(self) -> dict:
        """Exact serialized form (IPC-safe): partials lists included,
        so a round-trip loses no precision and later merges stay exact."""
        return {
            "count": self.count,
            "sum": list(self._sum),
            "sumsq": list(self._sumsq),
            "min": self._min,
            "max": self._max,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Moments":
        moments = cls()
        moments.count = data["count"]
        moments._sum = list(data["sum"])
        moments._sumsq = list(data["sumsq"])
        moments._min = data["min"]
        moments._max = data["max"]
        return moments

    def __eq__(self, other) -> bool:
        if not isinstance(other, Moments):
            return NotImplemented
        return (
            self.count == other.count
            and self.sum() == other.sum()
            and self.sumsq() == other.sumsq()
            and self._min == other._min
            and self._max == other._max
        )

    def __repr__(self) -> str:
        if not self.count:
            return "<Moments empty>"
        return f"<Moments n={self.count} mean={self.mean():.6g} std={self.std():.6g}>"


def format_mean_std(values: Sequence, precision: int = 1) -> str:
    """Render like Table 1: ``4.7 ± 4.7``; empty input renders ``-``."""
    values = list(values)
    if not values:
        return "-"
    mu, sigma = mean_std(values)
    return f"{mu:.{precision}f} ± {sigma:.{precision}f}"


def cdf_points(values: Sequence) -> list:
    """Empirical CDF as (x, percent_of_samples_<=_x) steps.

    Matches the figures' y-axis ("CDF of Services", 0–100).
    """
    values = sorted(values)
    n = len(values)
    if n == 0:
        return []
    points = []
    for index, value in enumerate(values, start=1):
        # Collapse duplicate x to the highest percentile.
        if points and points[-1][0] == value:
            points[-1] = (value, 100.0 * index / n)
        else:
            points.append((value, 100.0 * index / n))
    return points


def cdf_at(values: Sequence, x: float) -> float:
    """Percent of samples <= x under the empirical CDF."""
    values = list(values)
    if not values:
        return 0.0
    return 100.0 * sum(1 for v in values if v <= x) / len(values)


def pdf_histogram(values: Sequence) -> list:
    """Integer-binned PDF as (bin, percent) pairs (Figure 1e's style)."""
    values = list(values)
    if not values:
        return []
    counts = Counter(int(round(v)) for v in values)
    n = len(values)
    return [(bin_, 100.0 * count / n) for bin_, count in sorted(counts.items())]


def percentile(values: Sequence, pct: float) -> float:
    """Nearest-rank percentile (0 < pct <= 100)."""
    values = sorted(values)
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 < pct <= 100:
        raise ValueError(f"pct out of range: {pct}")
    rank = max(1, math.ceil(pct / 100.0 * len(values)))
    return values[rank - 1]


def fraction(values: Iterable, predicate) -> float:
    """Fraction of values satisfying ``predicate`` (0.0 for no values)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(1 for v in values if predicate(v)) / len(values)


# ---------------------------------------------------------------------------
# Confidence intervals (population campaigns).
#
# Everything below is seeded and PYTHONHASHSEED-independent: randomness
# comes from ``random.Random`` instances keyed by sha256 labels, never
# from ``hash()`` or global RNG state.
# ---------------------------------------------------------------------------


def _ci_rng(seed: int, *parts) -> random.Random:
    """Deterministic sub-RNG keyed by a sha256 label (scenarios.py pattern)."""
    text = "|".join(str(p) for p in (seed,) + parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def wilson_interval(successes: int, trials: int, confidence: float = 0.95) -> tuple:
    """Wilson score interval for a binomial proportion.

    Returns ``(low, high)`` with ``0 <= low <= p_hat <= high <= 1``.
    Preferred over the normal approximation because it stays inside
    [0, 1] and behaves at the extremes (0 or all successes) — exactly
    the regime small cohorts hit.  ``trials == 0`` returns ``(0.0, 1.0)``
    (no information).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence out of range: {confidence}")
    if successes < 0 or trials < 0 or successes > trials:
        raise ValueError(f"bad counts: {successes}/{trials}")
    if trials == 0:
        return (0.0, 1.0)
    z = NormalDist().inv_cdf(0.5 + confidence / 2.0)
    n = float(trials)
    p = successes / n
    denom = 1.0 + z * z / n
    centre = (p + z * z / (2.0 * n)) / denom
    half = (z / denom) * math.sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n))
    # At the extremes the exact bound is 0 (resp. 1); the subtraction
    # can leave a ±1 ulp residue that would exclude the point estimate.
    low = 0.0 if successes == 0 else max(0.0, centre - half)
    high = 1.0 if successes == trials else min(1.0, centre + half)
    return (low, high)


def bootstrap_ci(
    values: Sequence,
    confidence: float = 0.95,
    replicates: int = 200,
    seed: int = 0,
) -> tuple:
    """Percentile bootstrap CI for the mean of ``values``.

    Returns ``(low, high)``.  Deterministic: the resampling RNG is
    derived from ``seed`` via sha256, and the input is sorted before
    resampling so any permutation of the same multiset yields identical
    bounds (merge-order invariance for callers that concatenate shard
    outputs in varying order).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence out of range: {confidence}")
    if replicates < 1:
        raise ValueError(f"replicates must be >= 1: {replicates}")
    values = sorted(float(v) for v in values)
    if not values:
        raise ValueError("bootstrap_ci of empty sequence")
    n = len(values)
    rng = _ci_rng(seed, "bootstrap_ci", n, replicates)
    means = []
    for _ in range(replicates):
        total = 0.0
        for _ in range(n):
            total += values[rng.randrange(n)]
        # A resample mean lies within [min, max] of the data in exact
        # arithmetic; clamp away the 1-ulp float summation residue.
        means.append(min(max(total / n, values[0]), values[-1]))
    means.sort()
    alpha = (1.0 - confidence) / 2.0
    lo_rank = max(1, math.ceil(alpha * replicates))
    hi_rank = max(1, math.ceil((1.0 - alpha) * replicates))
    return (means[lo_rank - 1], means[hi_rank - 1])


def poisson_weights(rng: random.Random, replicates: int) -> list:
    """Poisson(1) bootstrap weight vector (one weight per replicate).

    Inverse-CDF sampling, one uniform per draw, so the stream is a pure
    function of the RNG state.  Used by the campaign engine: giving each
    user a fixed weight vector makes bootstrap resampling *mergeable* —
    shards accumulate per-replicate weighted sums independently and the
    merged totals are exact elementwise adds.
    """
    weights = []
    for _ in range(replicates):
        u = rng.random()
        k = 0
        p = math.exp(-1.0)
        cdf = p
        while u > cdf and k < 64:
            k += 1
            p /= k
            cdf += p
        weights.append(k)
    return weights


class BootstrapSums:
    """Mergeable Poisson-bootstrap accumulator for a mean.

    Each observation arrives with its per-replicate weight vector (from
    :func:`poisson_weights`, keyed by a stable identity such as the
    user id, *not* by shard or arrival order).  The accumulator keeps,
    per replicate, the weighted sum and weighted count; :meth:`merge`
    is an exact elementwise add, so any shard split or merge order
    yields identical state for integer-valued observations (the
    campaign's metrics are all counts).
    """

    __slots__ = ("replicates", "count", "total", "sums", "counts")

    def __init__(self, replicates: int) -> None:
        if replicates < 1:
            raise ValueError(f"replicates must be >= 1: {replicates}")
        self.replicates = replicates
        self.count = 0
        self.total = 0
        self.sums = [0] * replicates
        self.counts = [0] * replicates

    def add(self, value, weights: Sequence) -> None:
        if len(weights) != self.replicates:
            raise ValueError(
                f"weight vector length {len(weights)} != replicates {self.replicates}"
            )
        self.count += 1
        self.total += value
        for r, w in enumerate(weights):
            if w:
                self.sums[r] += w * value
                self.counts[r] += w
        return None

    def merge(self, other: "BootstrapSums") -> "BootstrapSums":
        if other.replicates != self.replicates:
            raise ValueError(
                f"replicate mismatch: {self.replicates} != {other.replicates}"
            )
        merged = BootstrapSums(self.replicates)
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        merged.sums = [a + b for a, b in zip(self.sums, other.sums)]
        merged.counts = [a + b for a, b in zip(self.counts, other.counts)]
        return merged

    def mean(self) -> float:
        if not self.count:
            raise ValueError("mean of empty accumulator")
        return self.total / self.count

    def interval(self, confidence: float = 0.95) -> tuple:
        """Percentile CI of the mean across replicates.

        Replicates whose weighted count is zero (possible for tiny
        populations) are dropped; with no usable replicate the point
        estimate is returned for both bounds.
        """
        if not 0.0 < confidence < 1.0:
            raise ValueError(f"confidence out of range: {confidence}")
        if not self.count:
            raise ValueError("interval of empty accumulator")
        means = sorted(
            s / c for s, c in zip(self.sums, self.counts) if c
        )
        if not means:
            point = self.mean()
            return (point, point)
        alpha = (1.0 - confidence) / 2.0
        n = len(means)
        lo_rank = max(1, math.ceil(alpha * n))
        hi_rank = max(1, math.ceil((1.0 - alpha) * n))
        return (means[lo_rank - 1], means[hi_rank - 1])

    def to_dict(self) -> dict:
        return {
            "replicates": self.replicates,
            "count": self.count,
            "total": self.total,
            "sums": list(self.sums),
            "counts": list(self.counts),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BootstrapSums":
        sums = cls(data["replicates"])
        sums.count = data["count"]
        sums.total = data["total"]
        sums.sums = list(data["sums"])
        sums.counts = list(data["counts"])
        return sums

    def __eq__(self, other) -> bool:
        if not isinstance(other, BootstrapSums):
            return NotImplemented
        return (
            self.replicates == other.replicates
            and self.count == other.count
            and self.total == other.total
            and self.sums == other.sums
            and self.counts == other.counts
        )

    def __repr__(self) -> str:
        if not self.count:
            return f"<BootstrapSums empty B={self.replicates}>"
        return (
            f"<BootstrapSums n={self.count} B={self.replicates} "
            f"mean={self.mean():.6g}>"
        )
