"""Statistical helpers for the evaluation: CDFs, PDFs, mean±std.

Pure-Python implementations (no numpy dependency in the library proper)
matching the presentation style of the paper's figures: empirical CDFs
in percent of services, integer-binned PDFs, and the mean ± population
standard deviation format of Table 1.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence


def mean(values: Sequence) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    # fsum avoids the accumulation error a naive sum exhibits on long
    # runs of repeated floats; the clamp guarantees the result never
    # drifts a ulp outside [min(values), max(values)].
    mu = math.fsum(values) / len(values)
    lo, hi = min(values), max(values)
    if mu < lo:
        return lo
    if mu > hi:
        return hi
    return mu


def std(values: Sequence) -> float:
    """Population standard deviation (what Table 1's ± denotes)."""
    values = list(values)
    if not values:
        raise ValueError("std of empty sequence")
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def mean_std(values: Sequence) -> tuple:
    return (mean(values), std(values))


def format_mean_std(values: Sequence, precision: int = 1) -> str:
    """Render like Table 1: ``4.7 ± 4.7``; empty input renders ``-``."""
    values = list(values)
    if not values:
        return "-"
    mu, sigma = mean_std(values)
    return f"{mu:.{precision}f} ± {sigma:.{precision}f}"


def cdf_points(values: Sequence) -> list:
    """Empirical CDF as (x, percent_of_samples_<=_x) steps.

    Matches the figures' y-axis ("CDF of Services", 0–100).
    """
    values = sorted(values)
    n = len(values)
    if n == 0:
        return []
    points = []
    for index, value in enumerate(values, start=1):
        # Collapse duplicate x to the highest percentile.
        if points and points[-1][0] == value:
            points[-1] = (value, 100.0 * index / n)
        else:
            points.append((value, 100.0 * index / n))
    return points


def cdf_at(values: Sequence, x: float) -> float:
    """Percent of samples <= x under the empirical CDF."""
    values = list(values)
    if not values:
        return 0.0
    return 100.0 * sum(1 for v in values if v <= x) / len(values)


def pdf_histogram(values: Sequence) -> list:
    """Integer-binned PDF as (bin, percent) pairs (Figure 1e's style)."""
    values = list(values)
    if not values:
        return []
    counts = Counter(int(round(v)) for v in values)
    n = len(values)
    return [(bin_, 100.0 * count / n) for bin_, count in sorted(counts.items())]


def percentile(values: Sequence, pct: float) -> float:
    """Nearest-rank percentile (0 < pct <= 100)."""
    values = sorted(values)
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 < pct <= 100:
        raise ValueError(f"pct out of range: {pct}")
    rank = max(1, math.ceil(pct / 100.0 * len(values)))
    return values[rank - 1]


def fraction(values: Iterable, predicate) -> float:
    """Fraction of values satisfying ``predicate`` (0.0 for no values)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(1 for v in values if predicate(v)) / len(values)
