"""Figure generators: the six panels of Figure 1.

Each generator returns a :class:`FigureSeries` per OS containing the raw
per-service values and the empirical CDF/PDF points exactly as plotted:

- 1a: CDF of (app − web) unique A&A domains contacted
- 1b: CDF of (app − web) flows to A&A domains
- 1c: CDF of (app − web) megabytes to A&A domains
- 1d: CDF of (app − web) domains receiving PII
- 1e: PDF of (app − web) distinct leaked identifiers
- 1f: CDF of the Jaccard index of leaked identifier sets
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.compare import study_diffs
from ..core.pipeline import StudyResult
from . import columnar
from .stats import cdf_at, cdf_points, pdf_histogram

OSES = ("android", "ios")


def _diffs(study, os_name, agg, executor):
    """Per-service diffs via the requested aggregation path.

    Both paths yield identical :class:`~repro.core.compare.CellDiff`
    lists (same order, same arithmetic), so every figure is
    byte-identical under ``rows`` and ``columnar``.
    """
    if columnar.wants_columnar(study, agg):
        return columnar.aggregate_diffs(
            columnar.ensure_aggregate(study, executor=executor), os_name
        )
    return study_diffs(study, os_name)


@dataclass
class FigureSeries:
    """One OS curve of one figure panel."""

    figure: str
    os_name: str
    values: list
    points: list  # (x, percent) pairs — CDF steps or PDF bins
    kind: str = "cdf"

    def percent_leq(self, x: float) -> float:
        """CDF convenience: percent of services with value <= x."""
        if self.kind != "cdf":
            raise ValueError("percent_leq only applies to CDF series")
        return cdf_at(self.values, x)

    @property
    def n(self) -> int:
        return len(self.values)


def _cdf_figure(study, figure: str, extractor, agg: str = "rows", executor=None) -> dict:
    study = columnar.ensure_aggregate(study, executor=executor) if columnar.wants_columnar(study, agg) else study
    out = {}
    for os_name in OSES:
        values = [extractor(d) for d in _diffs(study, os_name, agg, executor)]
        out[os_name] = FigureSeries(
            figure=figure,
            os_name=os_name,
            values=values,
            points=cdf_points(values),
            kind="cdf",
        )
    return out


def fig1a(study, agg: str = "rows", executor=None) -> dict:
    """(App − Web) A&A domains contacted, per OS."""
    return _cdf_figure(study, "1a", lambda d: d.aa_domains, agg=agg, executor=executor)


def fig1b(study, agg: str = "rows", executor=None) -> dict:
    """(App − Web) flows to A&A domains, per OS."""
    return _cdf_figure(study, "1b", lambda d: d.aa_flows, agg=agg, executor=executor)


def fig1c(study, agg: str = "rows", executor=None) -> dict:
    """(App − Web) MB of traffic to A&A domains, per OS."""
    return _cdf_figure(study, "1c", lambda d: d.aa_megabytes, agg=agg, executor=executor)


def fig1d(study, agg: str = "rows", executor=None) -> dict:
    """(App − Web) count of domains receiving PII, per OS."""
    return _cdf_figure(study, "1d", lambda d: d.leak_domains, agg=agg, executor=executor)


def fig1e(study, agg: str = "rows", executor=None) -> dict:
    """PDF of (App − Web) distinct leaked identifier counts, per OS."""
    study = columnar.ensure_aggregate(study, executor=executor) if columnar.wants_columnar(study, agg) else study
    out = {}
    for os_name in OSES:
        values = [d.leak_identifiers for d in _diffs(study, os_name, agg, executor)]
        out[os_name] = FigureSeries(
            figure="1e",
            os_name=os_name,
            values=values,
            points=pdf_histogram(values),
            kind="pdf",
        )
    return out


def fig1f(study, agg: str = "rows", executor=None) -> dict:
    """CDF of the Jaccard index of leaked identifier sets, per OS.

    Services with no leaks on either medium (Jaccard of two empty sets)
    are excluded, matching a plot of observed leak overlap.
    """
    study = columnar.ensure_aggregate(study, executor=executor) if columnar.wants_columnar(study, agg) else study
    out = {}
    for os_name in OSES:
        values = [
            d.jaccard_identifiers
            for d in _diffs(study, os_name, agg, executor)
            if d.app_leak_types or d.web_leak_types
        ]
        out[os_name] = FigureSeries(
            figure="1f",
            os_name=os_name,
            values=values,
            points=cdf_points(values),
            kind="cdf",
        )
    return out


ALL_FIGURES = {
    "1a": fig1a,
    "1b": fig1b,
    "1c": fig1c,
    "1d": fig1d,
    "1e": fig1e,
    "1f": fig1f,
}


def render_series(series: FigureSeries, width: int = 60) -> str:
    """ASCII rendering of one curve, for the bench harness output."""
    lines = [f"Figure {series.figure} ({series.os_name}, n={series.n}, {series.kind})"]
    if not series.points:
        lines.append("  (no data)")
        return "\n".join(lines)
    for x, pct in series.points:
        bar = "#" * int(pct / 100.0 * width)
        if isinstance(x, float):
            lines.append(f"  {x:10.2f} {pct:6.1f}% {bar}")
        else:
            lines.append(f"  {x:10d} {pct:6.1f}% {bar}")
    return "\n".join(lines)
