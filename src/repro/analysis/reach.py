"""Cross-platform tracker reach (§4.2 "Recipients of PII Leaks").

The paper observes that "services tend to utilize the same trackers and
ad networks across platforms" and that "third-parties are leveraging
different platforms to expand the set of data that they collect about
users".  This module quantifies both claims per tracker:

- **reach**: how many of the studied services expose the user to the
  tracker, per medium and combined;
- **linkability**: which identifier classes the tracker receives on each
  medium, and whether it obtains a *cross-platform join key* — a stable
  identifier (email, name, phone, username) seen on both media, which
  would let it link one user's app and web sessions.  Device IDs alone
  cannot do that (web sessions never carry them), which is exactly the
  paper's point about platform-specific tracking mechanisms.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..core.pipeline import StudyResult
from ..experiment.dataset import APP, WEB
from ..pii.types import PiiType
from . import columnar

# Identifier classes stable across media for the same user; a tracker
# holding one of these from both the app and the web side can join the
# two profiles.
CROSS_PLATFORM_KEYS = frozenset(
    {PiiType.EMAIL, PiiType.NAME, PiiType.PHONE, PiiType.USERNAME}
)


@dataclass
class TrackerReach:
    """Exposure and linkability profile of one A&A domain."""

    domain: str
    services_app: set = field(default_factory=set)
    services_web: set = field(default_factory=set)
    types_app: set = field(default_factory=set)
    types_web: set = field(default_factory=set)

    @property
    def services_any(self) -> set:
        return self.services_app | self.services_web

    @property
    def services_both(self) -> set:
        return self.services_app & self.services_web

    @property
    def reach(self) -> int:
        return len(self.services_any)

    @property
    def app_exclusive_types(self) -> set:
        """Identifier classes obtained from apps only (the paper's
        'leveraging different platforms' observation)."""
        return self.types_app - self.types_web

    @property
    def join_keys(self) -> set:
        """Stable identifiers received on BOTH media."""
        return self.types_app & self.types_web & CROSS_PLATFORM_KEYS

    @property
    def can_link_cross_platform(self) -> bool:
        return bool(self.join_keys)


def tracker_reach(study, agg: str = "rows", executor=None) -> dict:
    """Compute :class:`TrackerReach` for every A&A domain in a study."""
    if columnar.wants_columnar(study, agg):
        return _tracker_reach_columnar(
            columnar.ensure_aggregate(study, executor=executor)
        )
    reaches: dict = {}
    for result in study.services:
        slug = result.spec.slug
        for (os_name, medium), analysis in result.sessions.items():
            # Sorted, not raw set iteration: entry creation order is
            # dict insertion order, which summarize_reach's max() and
            # render_reach's stable sort break ties by — raw iteration
            # would make those ties vary with PYTHONHASHSEED (same fix
            # as Table 2's domain loop).
            for domain in sorted(analysis.aa_domains):
                entry = reaches.get(domain)
                if entry is None:
                    entry = reaches[domain] = TrackerReach(domain=domain)
                (entry.services_app if medium == APP else entry.services_web).add(slug)
            for record in analysis.leaks:
                entry = reaches.get(record.domain)
                if entry is None:
                    continue  # non-A&A recipient (identity providers)
                if medium == APP:
                    entry.types_app.add(record.pii_type)
                else:
                    entry.types_web.add(record.pii_type)
    return reaches


def _tracker_reach_columnar(agg) -> dict:
    """Columnar twin of :func:`tracker_reach`.

    Replays cells in the row-wise iteration order (the aggregate's
    per-cell ``order``): a leak recipient only accrues identifier types
    once the domain has already appeared as an A&A contact in the same
    or an earlier cell — the reference path's entry-creation rule.
    """
    reaches: dict = {}
    for cell in agg.ordered_cells():
        slug = cell.service
        medium = cell.medium
        for domain in sorted(cell.aa_domains):
            entry = reaches.get(domain)
            if entry is None:
                entry = reaches[domain] = TrackerReach(domain=domain)
            (entry.services_app if medium == APP else entry.services_web).add(slug)
        for (domain, host, pii), count in cell.leak_groups.items():
            entry = reaches.get(domain)
            if entry is None:
                continue  # non-A&A recipient (identity providers)
            (entry.types_app if medium == APP else entry.types_web).add(pii)
    return reaches


@dataclass
class ReachSummary:
    """Study-wide cross-platform tracking picture."""

    trackers: int
    cross_platform_trackers: int  # present on both media for >=1 service
    linkers: list  # domains holding a cross-platform join key
    app_exclusive_collectors: list  # domains with app-only identifier types
    max_reach_domain: str
    max_reach: int


def summarize_reach(study, agg: str = "rows", executor=None) -> ReachSummary:
    """Aggregate the per-tracker picture into the §4.2 headline claims."""
    reaches = tracker_reach(study, agg=agg, executor=executor)
    if not reaches:
        raise ValueError("study produced no A&A exposure to summarize")
    cross = [r for r in reaches.values() if r.services_both]
    linkers = sorted(r.domain for r in reaches.values() if r.can_link_cross_platform)
    exclusive = sorted(
        r.domain for r in reaches.values() if r.app_exclusive_types and r.types_app
    )
    top = max(reaches.values(), key=lambda r: r.reach)
    return ReachSummary(
        trackers=len(reaches),
        cross_platform_trackers=len(cross),
        linkers=linkers,
        app_exclusive_collectors=exclusive,
        max_reach_domain=top.domain,
        max_reach=top.reach,
    )


def render_reach(study, top: int = 15, agg: str = "rows", executor=None) -> str:
    """Text table of the highest-reach trackers."""
    reaches = sorted(
        tracker_reach(study, agg=agg, executor=executor).values(),
        key=lambda r: -r.reach,
    )[:top]
    header = (
        f"{'A&A Domain':24s} {'reach':>5s} {'app':>4s} {'web':>4s} {'both':>4s} "
        f"{'app-only types':16s} {'join keys'}"
    )
    lines = [header, "-" * len(header)]
    for entry in reaches:
        app_only = ",".join(sorted(t.code for t in entry.app_exclusive_types)) or "-"
        keys = ",".join(sorted(t.code for t in entry.join_keys)) or "-"
        lines.append(
            f"{entry.domain:24s} {entry.reach:5d} {len(entry.services_app):4d} "
            f"{len(entry.services_web):4d} {len(entry.services_both):4d} "
            f"{app_only:16s} {keys}"
        )
    return "\n".join(lines)
