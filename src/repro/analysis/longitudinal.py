"""Longitudinal study comparison.

§2 notes the study "represents a snapshot of online service behavior at
one point in time" but "the approach is general and can be repeated to
observe how the privacy landscape evolves".  This module is the
repeat-and-compare half: given two :class:`StudyResult` runs (different
catalog versions, different dates, different seeds), it diffs the
privacy-relevant quantities per service and summarizes the drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.pipeline import StudyResult
from ..experiment.dataset import APP, WEB
from . import columnar


@dataclass(frozen=True)
class ServiceDrift:
    """Change in one service's privacy profile between two studies."""

    service: str
    medium: str
    types_added: frozenset
    types_removed: frozenset
    aa_domains_delta: int
    leak_events_delta: int

    @property
    def changed(self) -> bool:
        return bool(
            self.types_added
            or self.types_removed
            or self.aa_domains_delta
            or self.leak_events_delta
        )

    @property
    def improved(self) -> bool:
        """Strictly fewer leaked types and no new ones (the Grubhub-fix
        pattern: the §4.2 password bug disappearing in a later snapshot)."""
        return bool(self.types_removed) and not self.types_added


def _medium_metrics(result, medium):
    types: set = set()
    aa_domains: set = set()
    events = 0
    for (os_name, med), analysis in result.sessions.items():
        if med != medium:
            continue
        types |= analysis.leak_types
        aa_domains |= analysis.aa_domains
        events += len(analysis.leaks)
    return types, aa_domains, events


def _medium_metrics_columnar(cells, medium):
    """Columnar twin of :func:`_medium_metrics` over CellAggregates —
    unions and counts only, so shard merges cannot change it."""
    types: set = set()
    aa_domains: set = set()
    events = 0
    for cell in cells:
        if cell.medium != medium:
            continue
        types |= cell.leak_types
        aa_domains |= cell.aa_domains
        events += cell.leak_events
    return types, aa_domains, events


def diff_studies(before, after, agg: str = "rows", executor=None) -> list:
    """Per-service, per-medium drift between two snapshots.

    Services present in only one study are skipped — the comparison is
    about behavioural change, not catalog churn.
    """
    if columnar.wants_columnar(before, agg) or columnar.wants_columnar(after, agg):
        return _diff_studies_columnar(
            columnar.ensure_aggregate(before, executor=executor),
            columnar.ensure_aggregate(after, executor=executor),
        )
    before_by_slug = {r.spec.slug: r for r in before.services}
    drifts = []
    for result in after.services:
        earlier = before_by_slug.get(result.spec.slug)
        if earlier is None:
            continue
        for medium in (APP, WEB):
            old_types, old_domains, old_events = _medium_metrics(earlier, medium)
            new_types, new_domains, new_events = _medium_metrics(result, medium)
            drifts.append(
                ServiceDrift(
                    service=result.spec.slug,
                    medium=medium,
                    types_added=frozenset(new_types - old_types),
                    types_removed=frozenset(old_types - new_types),
                    aa_domains_delta=len(new_domains) - len(old_domains),
                    leak_events_delta=new_events - old_events,
                )
            )
    return drifts


def _diff_studies_columnar(before, after) -> list:
    before_cells = before.cells_by_service()
    after_cells = after.cells_by_service()
    drifts = []
    for meta in after.ordered_services():
        if meta.slug not in before.services:
            continue
        olds = before_cells.get(meta.slug, ())
        news = after_cells.get(meta.slug, ())
        for medium in (APP, WEB):
            old_types, old_domains, old_events = _medium_metrics_columnar(olds, medium)
            new_types, new_domains, new_events = _medium_metrics_columnar(news, medium)
            drifts.append(
                ServiceDrift(
                    service=meta.slug,
                    medium=medium,
                    types_added=frozenset(new_types - old_types),
                    types_removed=frozenset(old_types - new_types),
                    aa_domains_delta=len(new_domains) - len(old_domains),
                    leak_events_delta=new_events - old_events,
                )
            )
    return drifts


@dataclass
class DriftSummary:
    """Headline counts for a landscape-evolution report."""

    services_compared: int
    unchanged: int
    improved: int
    regressed: int  # new identifier classes started leaking
    drifts: list = field(default_factory=list)


def summarize_drift(before, after, agg: str = "rows", executor=None) -> DriftSummary:
    drifts = diff_studies(before, after, agg=agg, executor=executor)
    by_service: dict = {}
    for drift in drifts:
        by_service.setdefault(drift.service, []).append(drift)
    unchanged = improved = regressed = 0
    for service_drifts in by_service.values():
        if not any(d.changed for d in service_drifts):
            unchanged += 1
        if any(d.types_added for d in service_drifts):
            regressed += 1
        elif any(d.improved for d in service_drifts):
            improved += 1
    return DriftSummary(
        services_compared=len(by_service),
        unchanged=unchanged,
        improved=improved,
        regressed=regressed,
        drifts=drifts,
    )


def render_drift(summary: DriftSummary) -> str:
    """Text report of what changed between the snapshots."""
    lines = [
        f"services compared: {summary.services_compared}  "
        f"unchanged: {summary.unchanged}  improved: {summary.improved}  "
        f"regressed: {summary.regressed}",
    ]
    for drift in summary.drifts:
        if not drift.changed:
            continue
        added = ",".join(sorted(t.code for t in drift.types_added)) or "-"
        removed = ",".join(sorted(t.code for t in drift.types_removed)) or "-"
        lines.append(
            f"  {drift.service:15s} {drift.medium:3s} +types:{added:10s} "
            f"-types:{removed:10s} A&A {drift.aa_domains_delta:+3d} "
            f"events {drift.leak_events_delta:+5d}"
        )
    return "\n".join(lines)
