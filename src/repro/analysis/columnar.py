"""Columnar aggregation engine over the binary codec.

The row-wise result family (tables, figures, reach, longitudinal)
iterates Python ``SessionAnalysis``/``LeakRecord`` object graphs — and
iterates them *repeatedly*: Table 1 re-derives ``leak_types`` per
population group, every Figure 1 panel recomputes the per-service
diffs, reach walks every leak again.  At campaign scale (millions of
sessions) that attribute-chasing becomes the dominant cost even with
process fan-out.

This module is the fast twin, same fast-path-with-pinned-slow-reference
discipline as the PR 1 detectors:

- :func:`encode_cells` walks the per-session objects exactly **once**,
  interning every string and grouping leak events into unique
  ``(domain, hostname, pii)`` triples with counts, and emits a
  length-prefixed, struct-packed **columnar batch** in the
  :mod:`repro.net.codec` wire conventions (little-endian, ``u32 len +
  UTF-8`` strings, strict bounds-checked decode) — parallel arrays,
  one per column, not one object per row;
- :func:`decode_batch` unpacks those arrays straight off the buffer
  (one ``struct.unpack_from`` per column) without materialising any
  ``Flow``/``SessionAnalysis``/``LeakRecord`` objects;
- :func:`aggregate_batch` — the kernel — reduces a batch into a
  mergeable :class:`StudyAggregate` partial: per-cell counters,
  set-union sketches, and :class:`~repro.analysis.stats.Moments`
  accumulators;
- :func:`study_aggregate` shards the cells round-robin, runs the
  kernel per shard on a :mod:`repro.par` executor (the process
  backend ships the batch as one compact blob), and merges the
  partials deterministically (associative merge, folded in shard
  order; every reduction is order-independent, so any merge tree
  yields the same aggregate).

The consumers in :mod:`.tables`, :mod:`.figures`, :mod:`.reach`, and
:mod:`.longitudinal` accept ``agg="columnar"`` (or a ready
:class:`StudyAggregate`) and produce output **byte-identical** to the
row-wise reference — pinned per fuzz seed by the :mod:`repro.qa`
oracle and enforced at ≥5× (10× target) by ``make bench-columnar``.
"""

from __future__ import annotations

import json
import struct
from collections import Counter
from pathlib import Path
from typing import Iterable, Optional, Union

from ..net import codec
from ..net.codec import CodecError
from ..pii.types import PiiType
from .stats import Moments

AGG_ROWS = "rows"
AGG_COLUMNAR = "columnar"
AGG_AUTO = "auto"
AGG_MODES = (AGG_AUTO, AGG_COLUMNAR, AGG_ROWS)

_U32 = struct.Struct("<I")
_I32 = struct.Struct("<i")

_PII_BY_VALUE = {pii_type.value: pii_type for pii_type in PiiType}


def resolve_agg(mode: str) -> str:
    """Normalize an ``--agg`` mode; ``auto`` picks the columnar engine
    (it is byte-identical to rows and strictly faster)."""
    if mode == AGG_AUTO:
        return AGG_COLUMNAR
    if mode in (AGG_ROWS, AGG_COLUMNAR):
        return mode
    raise ValueError(f"unknown aggregation mode {mode!r} (choose one of {AGG_MODES})")


# ---------------------------------------------------------------------------
# Aggregate model
# ---------------------------------------------------------------------------


class ServiceMeta:
    """The slice of a :class:`~repro.services.service.ServiceSpec` the
    aggregation layer needs (group membership, rank, page host), plus
    the service's position in the study's presentation order."""

    __slots__ = ("slug", "category", "domain", "rank", "oses", "order")

    def __init__(self, slug, category, domain, rank, oses, order) -> None:
        self.slug = slug
        self.category = category
        self.domain = domain
        self.rank = rank
        self.oses = tuple(oses)
        self.order = order

    @classmethod
    def from_spec(cls, spec, order: int) -> "ServiceMeta":
        return cls(spec.slug, spec.category, spec.domain, spec.rank, spec.oses, order)

    def to_row(self) -> list:
        return [self.slug, self.category, self.domain, self.rank, list(self.oses), self.order]

    @classmethod
    def from_row(cls, row: list) -> "ServiceMeta":
        return cls(row[0], row[1], row[2], row[3], tuple(row[4]), row[5])


class CellAggregate:
    """One (service, os, medium) cell's reduction.

    ``leak_groups`` maps the unique ``(leak_domain, hostname, pii_type)``
    triple to its event count — everything every consumer derives from
    the raw leak list (type unions, domain sets, per-recipient counts,
    EasyList verdicts) is a function of these groups, because all the
    row-wise reductions are sets and sums, never sequences.
    """

    __slots__ = (
        "service",
        "os_name",
        "medium",
        "order",
        "flows_total",
        "aa_flows",
        "aa_bytes",
        "aa_domains",
        "leak_groups",
    )

    def __init__(self, service, os_name, medium, order) -> None:
        self.service = service
        self.os_name = os_name
        self.medium = medium
        self.order = order
        self.flows_total = 0
        self.aa_flows = 0
        self.aa_bytes = 0
        self.aa_domains: set = set()
        self.leak_groups: dict = {}  # (domain, hostname, PiiType) -> count

    @property
    def key(self) -> tuple:
        return (self.service, self.os_name, self.medium)

    @property
    def leak_types(self) -> set:
        return {pii for (_, _, pii) in self.leak_groups}

    @property
    def leak_domains(self) -> set:
        return {domain for (domain, _, _) in self.leak_groups}

    @property
    def leak_events(self) -> int:
        return sum(self.leak_groups.values())

    def copy(self) -> "CellAggregate":
        dup = CellAggregate(self.service, self.os_name, self.medium, self.order)
        dup.flows_total = self.flows_total
        dup.aa_flows = self.aa_flows
        dup.aa_bytes = self.aa_bytes
        dup.aa_domains = set(self.aa_domains)
        dup.leak_groups = dict(self.leak_groups)
        return dup

    def merge(self, other: "CellAggregate") -> None:
        """Fold another partial of the *same* cell in (counts add, sets
        union) — used when a cell's events were split across shards."""
        if self.key != other.key:
            raise ValueError(f"cannot merge cell {other.key} into {self.key}")
        self.order = min(self.order, other.order)
        self.flows_total += other.flows_total
        self.aa_flows += other.aa_flows
        self.aa_bytes += other.aa_bytes
        self.aa_domains |= other.aa_domains
        groups = self.leak_groups
        for group, count in other.leak_groups.items():
            groups[group] = groups.get(group, 0) + count


#: Per-cell metrics the aggregate keeps Moments accumulators for.
MOMENT_KEYS = ("flows_total", "aa_flows", "aa_bytes", "leak_events")


class StudyAggregate:
    """Mergeable partial aggregate of a study (or a shard of one).

    Merging is associative with :class:`StudyAggregate()` as identity:
    cells present in both operands combine via :meth:`CellAggregate.merge`,
    service metadata unions (keeping the smallest presentation order),
    and the :class:`~repro.analysis.stats.Moments` accumulators merge
    exactly.  Every stored reduction is order-independent, so *any*
    shard split and *any* merge tree produce the same aggregate —
    property-pinned in ``tests/test_columnar.py`` and per fuzz seed in
    the QA oracle.
    """

    def __init__(self) -> None:
        self.services: dict = {}  # slug -> ServiceMeta
        self.cells: dict = {}  # (slug, os, medium) -> CellAggregate
        self.moments: dict = {key: Moments() for key in MOMENT_KEYS}

    # -- merge ---------------------------------------------------------------

    def merge(self, other: "StudyAggregate") -> "StudyAggregate":
        for slug, meta in other.services.items():
            mine = self.services.get(slug)
            if mine is None or meta.order < mine.order:
                self.services[slug] = meta
        for key, cell in other.cells.items():
            mine = self.cells.get(key)
            if mine is None:
                self.cells[key] = cell.copy()
            else:
                mine.merge(cell)
        self.moments = {
            key: self.moments[key].merge(other.moments[key]) for key in MOMENT_KEYS
        }
        return self

    # -- ordered views -------------------------------------------------------

    def ordered_services(self) -> list:
        """Service metadata in study presentation (catalog) order."""
        return sorted(self.services.values(), key=lambda meta: meta.order)

    def ordered_cells(self) -> list:
        """Cells in the row-wise iteration order (service order, then
        session insertion order) — what order-sensitive consumers
        (reach's first-contact discovery) replay."""
        return sorted(self.cells.values(), key=lambda cell: (cell.order, cell.key))

    def cells_by_service(self) -> dict:
        by_slug: dict = {}
        for cell in self.ordered_cells():
            by_slug.setdefault(cell.service, []).append(cell)
        return by_slug

    def summary(self) -> dict:
        """Per-metric (count, mean, std, min, max) across cells."""
        out = {}
        for key, moments in self.moments.items():
            if not moments.count:
                out[key] = None
                continue
            out[key] = {
                "count": moments.count,
                "mean": moments.mean(),
                "std": moments.std(),
                "min": moments._min,
                "max": moments._max,
            }
        return out

    # -- serialization -------------------------------------------------------

    def _cell_rows(self, cell: CellAggregate) -> list:
        return [
            cell.service,
            cell.os_name,
            cell.medium,
            cell.order,
            cell.flows_total,
            cell.aa_flows,
            cell.aa_bytes,
            sorted(cell.aa_domains),
            sorted(
                [domain, host, pii.value, count]
                for (domain, host, pii), count in cell.leak_groups.items()
            ),
        ]

    def to_dict(self) -> dict:
        """Exact JSON-safe form (IPC across the process pool): Moments
        keep their partials lists, so later merges stay exact."""
        return {
            "services": [meta.to_row() for meta in self.ordered_services()],
            "cells": [self._cell_rows(cell) for cell in self.ordered_cells()],
            "moments": {key: m.to_dict() for key, m in self.moments.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StudyAggregate":
        agg = cls()
        for row in data["services"]:
            meta = ServiceMeta.from_row(row)
            agg.services[meta.slug] = meta
        for row in data["cells"]:
            cell = CellAggregate(row[0], row[1], row[2], row[3])
            cell.flows_total = row[4]
            cell.aa_flows = row[5]
            cell.aa_bytes = row[6]
            cell.aa_domains = set(row[7])
            cell.leak_groups = {
                (domain, host, _PII_BY_VALUE[pii]): count
                for domain, host, pii, count in row[8]
            }
            agg.cells[cell.key] = cell
        agg.moments = {
            key: Moments.from_dict(entry) for key, entry in data["moments"].items()
        }
        return agg

    def canonical_dict(self) -> dict:
        """Deterministic comparison form: Moments collapsed to their
        correctly rounded sums (order-invariant), everything sorted."""
        payload = self.to_dict()
        payload["moments"] = {
            key: {
                "count": m.count,
                "sum": m.sum(),
                "sumsq": m.sumsq(),
                "min": m._min,
                "max": m._max,
            }
            for key, m in self.moments.items()
        }
        return payload

    def canonical_bytes(self) -> bytes:
        return json.dumps(self.canonical_dict(), sort_keys=True).encode("utf-8")


def merge_aggregates(partials: Iterable) -> StudyAggregate:
    """Fold shard partials (in the given order) into one aggregate."""
    merged = StudyAggregate()
    for partial in partials:
        merged.merge(partial)
    return merged


# ---------------------------------------------------------------------------
# Columnar batch encoding (codec wire conventions)
# ---------------------------------------------------------------------------
#
# Payload layout (bare blob; files get the RPRB + version + KIND_ABATCH
# frame).  All integers little-endian; every array is written as one
# struct-packed run so the decoder does one unpack_from per column.
#
#   u32 n_strings, then n x (u32 len + UTF-8)      -- interned strings
#   u32 n_services, per service:
#       u32 slug_id, u32 category_id, u32 domain_id,
#       i32 rank, u32 order, u32 n_oses, n_oses x u32 os_id
#   u32 n_cells, then the parallel cell columns, each n_cells long:
#       u32 slug_id[], u32 os_id[], u32 medium_id[], u32 order[],
#       u32 flows_total[], u32 aa_flows[], i64 aa_bytes[]
#   u32 total_aa, u32 aa_count[n_cells], u32 aa_domain_id[total_aa]
#   u32 total_groups, u32 group_count[n_cells],
#       u32 group_domain_id[], u32 group_host_id[],
#       u32 group_pii_id[], u32 group_count_value[]   -- each total_groups long


def encode_cells(metas: list, cells: list) -> bytes:
    """Encode service metadata plus ``(order, analysis)`` cells into a
    columnar batch blob.

    The single pass over each session's object graph happens *here*:
    leak records collapse into grouped unique triples, strings intern
    into one table.  Sets and group keys are written sorted, so the
    blob is canonical — independent of set iteration (hash seed) order.
    """
    strings: dict = {}

    def intern(value: str) -> int:
        index = strings.get(value)
        if index is None:
            index = strings[value] = len(strings)
        return index

    body = bytearray()

    body += _U32.pack(len(metas))
    for meta in metas:
        body += _U32.pack(intern(meta.slug))
        body += _U32.pack(intern(meta.category))
        body += _U32.pack(intern(meta.domain))
        body += _I32.pack(meta.rank)
        body += _U32.pack(meta.order)
        body += _U32.pack(len(meta.oses))
        for os_name in meta.oses:
            body += _U32.pack(intern(os_name))

    n = len(cells)
    slug_ids = []
    os_ids = []
    medium_ids = []
    orders = []
    flows = []
    aa_flows = []
    aa_bytes = []
    aa_counts = []
    aa_ids = []
    group_counts = []
    group_domains = []
    group_hosts = []
    group_piis = []
    group_values = []
    for order, analysis in cells:
        slug_ids.append(intern(analysis.service))
        os_ids.append(intern(analysis.os_name))
        medium_ids.append(intern(analysis.medium))
        orders.append(order)
        flows.append(analysis.flows_total)
        aa_flows.append(analysis.aa_flows)
        aa_bytes.append(analysis.aa_bytes)
        domains = sorted(analysis.aa_domains)
        aa_counts.append(len(domains))
        aa_ids.extend(intern(domain) for domain in domains)
        groups = Counter(
            (
                leak.observation.domain,
                leak.observation.hostname,
                leak.observation.pii_type.value,
            )
            for leak in analysis.leaks
        )
        group_counts.append(len(groups))
        for (domain, host, pii), count in sorted(groups.items()):
            group_domains.append(intern(domain))
            group_hosts.append(intern(host))
            group_piis.append(intern(pii))
            group_values.append(count)

    body += _U32.pack(n)
    try:
        body += struct.pack(f"<{n}I", *slug_ids)
        body += struct.pack(f"<{n}I", *os_ids)
        body += struct.pack(f"<{n}I", *medium_ids)
        body += struct.pack(f"<{n}I", *orders)
        body += struct.pack(f"<{n}I", *flows)
        body += struct.pack(f"<{n}I", *aa_flows)
        body += struct.pack(f"<{n}q", *aa_bytes)
        body += _U32.pack(len(aa_ids))
        body += struct.pack(f"<{n}I", *aa_counts)
        body += struct.pack(f"<{len(aa_ids)}I", *aa_ids)
        body += _U32.pack(len(group_values))
        body += struct.pack(f"<{n}I", *group_counts)
        total = len(group_values)
        body += struct.pack(f"<{total}I", *group_domains)
        body += struct.pack(f"<{total}I", *group_hosts)
        body += struct.pack(f"<{total}I", *group_piis)
        body += struct.pack(f"<{total}I", *group_values)
    except struct.error as exc:
        raise CodecError(f"cannot encode analysis batch: {exc}") from exc

    head = bytearray()
    head += _U32.pack(len(strings))
    for value in strings:  # insertion order == id order
        codec._put_str(head, value)
    return bytes(head) + bytes(body)


class ColumnarBatch:
    """A decoded batch: one interned string table plus parallel arrays.

    No per-row objects exist — consumers index the column tuples
    directly (the kernel below is the canonical consumer).
    """

    __slots__ = (
        "strings",
        "services",
        "n_cells",
        "slug_ids",
        "os_ids",
        "medium_ids",
        "orders",
        "flows_total",
        "aa_flows",
        "aa_bytes",
        "aa_counts",
        "aa_ids",
        "group_counts",
        "group_domains",
        "group_hosts",
        "group_piis",
        "group_values",
    )

    @property
    def leak_events(self) -> int:
        return sum(self.group_values)


def _unpack_array(buf: bytes, pos: int, count: int, kind: str = "I"):
    size = struct.calcsize(f"<{count}{kind}")
    if pos + size > len(buf):
        raise CodecError(
            f"truncated batch: {count} x '{kind}' column at offset {pos} "
            f"overruns buffer of {len(buf)}"
        )
    return struct.unpack_from(f"<{count}{kind}", buf, pos), pos + size


def decode_batch(data: bytes) -> ColumnarBatch:
    """Strict decode of an :func:`encode_cells` blob into parallel
    arrays — no ``Flow``/``SessionAnalysis`` objects materialised."""
    batch = ColumnarBatch()
    try:
        pos = 0
        (n_strings,) = _U32.unpack_from(data, pos)
        pos += 4
        strings = []
        for _ in range(n_strings):
            value, pos = codec._get_str(data, pos)
            strings.append(value)
        batch.strings = tuple(strings)

        (n_services,) = _U32.unpack_from(data, pos)
        pos += 4
        services = []
        for _ in range(n_services):
            slug_id, cat_id, dom_id = struct.unpack_from("<3I", data, pos)
            pos += 12
            (rank,) = _I32.unpack_from(data, pos)
            pos += 4
            order, n_oses = struct.unpack_from("<2I", data, pos)
            pos += 8
            os_ids, pos = _unpack_array(data, pos, n_oses)
            services.append(
                ServiceMeta(
                    strings[slug_id],
                    strings[cat_id],
                    strings[dom_id],
                    rank,
                    tuple(strings[i] for i in os_ids),
                    order,
                )
            )
        batch.services = services

        (n,) = _U32.unpack_from(data, pos)
        pos += 4
        batch.n_cells = n
        batch.slug_ids, pos = _unpack_array(data, pos, n)
        batch.os_ids, pos = _unpack_array(data, pos, n)
        batch.medium_ids, pos = _unpack_array(data, pos, n)
        batch.orders, pos = _unpack_array(data, pos, n)
        batch.flows_total, pos = _unpack_array(data, pos, n)
        batch.aa_flows, pos = _unpack_array(data, pos, n)
        batch.aa_bytes, pos = _unpack_array(data, pos, n, "q")
        (total_aa,) = _U32.unpack_from(data, pos)
        pos += 4
        batch.aa_counts, pos = _unpack_array(data, pos, n)
        batch.aa_ids, pos = _unpack_array(data, pos, total_aa)
        (total_groups,) = _U32.unpack_from(data, pos)
        pos += 4
        batch.group_counts, pos = _unpack_array(data, pos, n)
        batch.group_domains, pos = _unpack_array(data, pos, total_groups)
        batch.group_hosts, pos = _unpack_array(data, pos, total_groups)
        batch.group_piis, pos = _unpack_array(data, pos, total_groups)
        batch.group_values, pos = _unpack_array(data, pos, total_groups)
    except (struct.error, IndexError) as exc:
        raise CodecError(f"truncated analysis batch: {exc}") from exc
    if sum(batch.aa_counts) != total_aa:
        raise CodecError("corrupt batch: aa_count column does not sum to total")
    if sum(batch.group_counts) != total_groups:
        raise CodecError("corrupt batch: group_count column does not sum to total")
    if pos != len(data):
        raise CodecError(
            f"{len(data) - pos} byte(s) of trailing garbage after offset {pos}"
        )
    return batch


# ---------------------------------------------------------------------------
# Kernel
# ---------------------------------------------------------------------------


def aggregate_batch(batch: ColumnarBatch) -> StudyAggregate:
    """Reduce one decoded batch into a partial :class:`StudyAggregate`.

    This is the hot kernel: straight-line loops over the column arrays,
    resolving interned ids through one tuple index each, folding into
    dict/set/Counter reductions and exact Moments accumulators.
    """
    agg = StudyAggregate()
    for meta in batch.services:
        mine = agg.services.get(meta.slug)
        if mine is None or meta.order < mine.order:
            agg.services[meta.slug] = meta
    strings = batch.strings
    pii_by_value = _PII_BY_VALUE
    moments = agg.moments
    m_flows = moments["flows_total"]
    m_aa_flows = moments["aa_flows"]
    m_aa_bytes = moments["aa_bytes"]
    m_leaks = moments["leak_events"]
    aa_offset = 0
    group_offset = 0
    for i in range(batch.n_cells):
        cell = CellAggregate(
            strings[batch.slug_ids[i]],
            strings[batch.os_ids[i]],
            strings[batch.medium_ids[i]],
            batch.orders[i],
        )
        cell.flows_total = batch.flows_total[i]
        cell.aa_flows = batch.aa_flows[i]
        cell.aa_bytes = batch.aa_bytes[i]
        n_aa = batch.aa_counts[i]
        cell.aa_domains = {
            strings[j] for j in batch.aa_ids[aa_offset : aa_offset + n_aa]
        }
        aa_offset += n_aa
        n_groups = batch.group_counts[i]
        groups = {}
        events = 0
        for j in range(group_offset, group_offset + n_groups):
            count = batch.group_values[j]
            key = (
                strings[batch.group_domains[j]],
                strings[batch.group_hosts[j]],
                pii_by_value[strings[batch.group_piis[j]]],
            )
            groups[key] = groups.get(key, 0) + count
            events += count
        group_offset += n_groups
        cell.leak_groups = groups
        existing = agg.cells.get(cell.key)
        if existing is None:
            agg.cells[cell.key] = cell
        else:
            existing.merge(cell)
        m_flows.add(cell.flows_total)
        m_aa_flows.add(cell.aa_flows)
        m_aa_bytes.add(cell.aa_bytes)
        m_leaks.add(events)
    return agg


def aggregate_blob(blob: bytes) -> StudyAggregate:
    """Decode + kernel in one step (the executor's unit of fan-out)."""
    return aggregate_batch(decode_batch(blob))


# ---------------------------------------------------------------------------
# Driver: study -> shard blobs -> par kernels -> merged aggregate
# ---------------------------------------------------------------------------


def _study_cells(study) -> tuple:
    """(metas, [(order, analysis)]) in the row-wise iteration order."""
    metas = [
        ServiceMeta.from_spec(result.spec, index)
        for index, result in enumerate(study.services)
    ]
    cells = []
    order = 0
    for result in study.services:
        for analysis in result.sessions.values():
            cells.append((order, analysis))
            order += 1
    return metas, cells


def shard_blobs(study, shards: int = 1) -> list:
    """Encode a study into ``shards`` round-robin columnar blobs.

    Every blob carries the full service-metadata table (merging
    deduplicates it), so each shard aggregate is self-contained.
    """
    metas, cells = _study_cells(study)
    shards = max(1, min(int(shards), len(cells) or 1))
    return [encode_cells(metas, cells[index::shards]) for index in range(shards)]


def shard_aggregates(study, shards: int = 1, executor=None) -> list:
    """Per-shard partial aggregates, kernels fanned out via repro.par."""
    from ..par import resolve_executor

    engine = resolve_executor(executor)
    return engine.map_aggregate(shard_blobs(study, shards))


def study_aggregate(
    study,
    executor=None,
    shards: Optional[int] = None,
) -> StudyAggregate:
    """The columnar front door: encode, fan out kernels, merge.

    ``executor`` is a :mod:`repro.par` backend (instance, name, or
    ``None`` for serial); ``shards`` defaults to the executor's worker
    count.  The merge folds partials in shard order — and because every
    reduction is associative and order-independent, any other merge
    tree yields the same aggregate (property-pinned).
    """
    from ..par import resolve_executor

    engine = resolve_executor(executor)
    if shards is None:
        shards = engine.workers
    return merge_aggregates(shard_aggregates(study, shards=shards, executor=engine))


def ensure_aggregate(study, executor=None) -> StudyAggregate:
    """Pass a ready aggregate through; reduce a StudyResult otherwise."""
    if isinstance(study, StudyAggregate):
        return study
    return study_aggregate(study, executor=executor)


def wants_columnar(study, agg: str) -> bool:
    """Shared dispatch for the consumer entry points: a ready
    :class:`StudyAggregate` always takes the columnar path; otherwise
    the resolved ``agg`` mode decides."""
    return isinstance(study, StudyAggregate) or resolve_agg(agg) == AGG_COLUMNAR


def aggregate_diffs(agg: StudyAggregate, os_name: Optional[str] = None) -> list:
    """Columnar twin of :func:`repro.core.compare.study_diffs`.

    Same iteration order (service catalog order, then the spec's OS
    order) and the same arithmetic — including computing megabytes as
    ``aa_bytes / 1_000_000.0`` per side before subtracting — so the
    diffs are bit-identical to the row-wise reference.
    """
    from ..core.compare import APP, WEB, CellDiff
    from ..core.leaks import jaccard

    out = []
    cells = agg.cells
    for meta in agg.ordered_services():
        for osn in meta.oses:
            if os_name is not None and osn != os_name:
                continue
            app = cells.get((meta.slug, osn, APP))
            web = cells.get((meta.slug, osn, WEB))
            if app is None or web is None:
                continue
            app_types = frozenset(app.leak_types)
            web_types = frozenset(web.leak_types)
            out.append(
                CellDiff(
                    service=meta.slug,
                    os_name=osn,
                    aa_domains=len(app.aa_domains) - len(web.aa_domains),
                    aa_flows=app.aa_flows - web.aa_flows,
                    aa_megabytes=app.aa_bytes / 1_000_000.0
                    - web.aa_bytes / 1_000_000.0,
                    leak_domains=len(app.leak_domains) - len(web.leak_domains),
                    leak_identifiers=len(app_types) - len(web_types),
                    jaccard_identifiers=jaccard(set(app_types), set(web_types)),
                    app_leak_types=app_types,
                    web_leak_types=web_types,
                )
            )
    return out


# ---------------------------------------------------------------------------
# Framed files
# ---------------------------------------------------------------------------


def write_batch(path: Union[str, Path], study, shards: int = 1) -> None:
    """Atomically write a study's columnar batch as a framed binary file
    (one blob; ``shards`` only affects in-memory fan-out, not files)."""
    from ..ioutil import atomic_write_bytes

    metas, cells = _study_cells(study)
    atomic_write_bytes(
        path, codec.frame(codec.KIND_ABATCH, encode_cells(metas, cells))
    )


def read_batch(path: Union[str, Path]) -> ColumnarBatch:
    """Read a framed columnar batch written by :func:`write_batch`."""
    path = Path(path)
    return decode_batch(codec.unframe(path.read_bytes(), codec.KIND_ABATCH, path))


def read_aggregate(path: Union[str, Path]) -> StudyAggregate:
    """Read a framed batch file straight into a merged aggregate."""
    return aggregate_batch(read_batch(path))
