"""Paper-versus-measured report generation.

Builds the EXPERIMENTS.md-style comparison: for every quantity the paper
publishes (Table 1 rates, Table 2 rows, Table 3 counts, the Figure 1
headline percentages), emit the paper value next to the measured value
from a study run.  The report is regenerable via ``repro report``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pipeline import StudyResult
from ..experiment.dataset import APP, WEB
from ..pii.types import PiiType
from .figures import fig1a, fig1b, fig1c, fig1d, fig1e, fig1f
from .stats import fraction
from .tables import table1, table2, table3

# ---------------------------------------------------------------------------
# Paper ground truth (IMC 2016)
# ---------------------------------------------------------------------------

PAPER_TABLE1_RATES = {
    ("All", APP): 92.0,
    ("All", WEB): 78.0,
    ("Android", APP): 85.4,
    ("Android", WEB): 52.1,
    ("iOS", APP): 86.0,
    ("iOS", WEB): 76.0,
    ("Business", APP): 100.0, ("Business", WEB): 50.0,
    ("Education", APP): 75.0, ("Education", WEB): 50.0,
    ("Entertainment", APP): 66.7, ("Entertainment", WEB): 50.0,
    ("Lifestyle", APP): 100.0, ("Lifestyle", WEB): 100.0,
    ("Music", APP): 100.0, ("Music", WEB): 50.0,
    ("News", APP): 100.0, ("News", WEB): 100.0,
    ("Shopping", APP): 100.0, ("Shopping", WEB): 77.8,
    ("Social", APP): 100.0, ("Social", WEB): 100.0,
    ("Travel", APP): 91.7, ("Travel", WEB): 91.7,
    ("Weather", APP): 100.0, ("Weather", WEB): 100.0,
}

PAPER_TABLE1_DOMAINS = {
    ("All", APP): (4.7, 4.7),
    ("All", WEB): (3.5, 3.1),
    ("Android", APP): (2.4, 3.4),
    ("Android", WEB): (2.6, 2.8),
    ("iOS", APP): (4.1, 4.4),
    ("iOS", WEB): (3.1, 2.8),
}

PAPER_TABLE3 = {
    # type: (svc app, svc both, svc web, avg app, avg web, dom app, dom both, dom web)
    PiiType.LOCATION: (30, 21, 26, 367.7, 295.2, 84, 37, 76),
    PiiType.NAME: (9, 8, 16, 77.1, 138.2, 11, 7, 26),
    PiiType.UNIQUE_ID: (40, 0, 0, 39.0, 0.0, 65, 0, 0),
    PiiType.USERNAME: (3, 1, 5, 23.0, 89.8, 4, 2, 10),
    PiiType.GENDER: (4, 1, 8, 2.8, 25.0, 4, 1, 11),
    PiiType.PHONE: (3, 1, 2, 12.7, 60.5, 3, 1, 2),
    PiiType.EMAIL: (11, 3, 8, 2.2, 15.5, 10, 2, 8),
    PiiType.DEVICE_INFO: (15, 0, 0, 2.7, 0.0, 13, 0, 0),
    PiiType.PASSWORD: (4, 2, 3, 2.8, 1.7, 4, 2, 2),
    PiiType.BIRTHDAY: (1, 0, 1, 1.0, 3.0, 1, 0, 2),
}

PAPER_TABLE2 = {
    # domain: (svc app, svc both, svc web, avg leaks app, avg leaks web)
    "amobee.com": (1, 1, 1, 517.0, 314.0),
    "moatads.com": (9, 7, 12, 61.4, 0.2),
    "vrvm.com": (2, 0, 0, 136.0, 0.0),
    "google-analytics.com": (35, 32, 41, 1.8, 2.7),
    "facebook.com": (38, 36, 41, 3.7, 0.4),
    "groceryserver.com": (1, 1, 1, 154.0, 0.0),
    "serving-sys.com": (10, 4, 6, 15.3, 0.0),
    "googlesyndication.com": (16, 14, 23, 7.0, 0.8),
    "thebrighttag.com": (4, 2, 4, 29.5, 0.0),
    "tiqcdn.com": (5, 5, 9, 16.0, 3.1),
    "marinsm.com": (1, 1, 3, 96.0, 1.0),
    "criteo.com": (7, 6, 22, 8.9, 1.1),
    "2mdn.net": (14, 9, 17, 5.8, 0.0),
    "monetate.net": (1, 1, 2, 74.0, 0.0),
    "247realmedia.com": (1, 1, 2, 48.0, 12.0),
    "krxd.net": (7, 6, 13, 8.3, 0.0),
    "doubleverify.com": (3, 2, 7, 19.3, 0.0),
    "cloudinary.com": (1, 1, 1, 0.0, 58.0),
    "webtrends.com": (1, 1, 1, 56.0, 0.0),
    "liftoff.io": (1, 0, 0, 54.0, 0.0),
}

PAPER_FIGURES = {
    "1a": {"android": 83.0, "ios": 78.0},  # % services, web contacts more A&A
    "1b": {"android": 73.0, "ios": 80.0},  # % services, more flows to A&A on web
    "1f_zero": 50.0,  # > half of services share no leaked types
    "1f_half": 85.0,  # 80-90% share at most half
}


@dataclass
class ComparisonLine:
    """One paper-vs-measured data point."""

    section: str
    label: str
    paper: str
    measured: str

    def as_row(self) -> str:
        return f"| {self.label} | {self.paper} | {self.measured} |"


def _table1_lines(study: StudyResult) -> list:
    lines = []
    rows = {(r.group, r.medium): r for r in table1(study)}
    for key, paper_rate in PAPER_TABLE1_RATES.items():
        row = rows.get(key)
        if row is None:
            continue
        lines.append(
            ComparisonLine(
                "Table 1 — services leaking PII (%)",
                f"{key[0]} {key[1]}",
                f"{paper_rate:.1f}%",
                f"{row.pct_leaking:.1f}%",
            )
        )
    for key, (paper_mu, paper_sigma) in PAPER_TABLE1_DOMAINS.items():
        row = rows.get(key)
        if row is None:
            continue
        lines.append(
            ComparisonLine(
                "Table 1 — avg domains receiving leaks",
                f"{key[0]} {key[1]}",
                f"{paper_mu:.1f} ± {paper_sigma:.1f}",
                f"{row.domains_mean:.1f} ± {row.domains_std:.1f}",
            )
        )
    return lines


def _table2_lines(study: StudyResult) -> list:
    lines = []
    measured = {r.domain: r for r in table2(study, top=100)}
    for domain, (svc_a, svc_b, svc_w, avg_a, avg_w) in PAPER_TABLE2.items():
        row = measured.get(domain)
        if row is None:
            lines.append(
                ComparisonLine("Table 2 — top A&A recipients", domain,
                               f"{svc_a}/{svc_b}/{svc_w} svc, {avg_a:.1f}/{avg_w:.1f} leaks",
                               "not in measured top set")
            )
            continue
        lines.append(
            ComparisonLine(
                "Table 2 — top A&A recipients",
                domain,
                f"{svc_a}/{svc_b}/{svc_w} svc, {avg_a:.1f}/{avg_w:.1f} leaks",
                f"{row.services_app}/{row.services_both}/{row.services_web} svc, "
                f"{row.avg_leaks_app:.1f}/{row.avg_leaks_web:.1f} leaks",
            )
        )
    return lines


def _table3_lines(study: StudyResult) -> list:
    lines = []
    measured = {r.pii_type: r for r in table3(study)}
    for pii_type, paper in PAPER_TABLE3.items():
        row = measured.get(pii_type)
        svc = f"{paper[0]}/{paper[1]}/{paper[2]}"
        avg = f"{paper[3]:.1f}/{paper[4]:.1f}"
        dom = f"{paper[5]}/{paper[6]}/{paper[7]}"
        if row is None:
            lines.append(
                ComparisonLine("Table 3 — per-identifier", pii_type.label,
                               f"svc {svc}, avg {avg}, dom {dom}", "not measured")
            )
            continue
        lines.append(
            ComparisonLine(
                "Table 3 — per-identifier",
                pii_type.label,
                f"svc {svc}, avg {avg}, dom {dom}",
                f"svc {row.services_app}/{row.services_both}/{row.services_web}, "
                f"avg {row.avg_leaks_app:.1f}/{row.avg_leaks_web:.1f}, "
                f"dom {row.domains_app}/{row.domains_both}/{row.domains_web}",
            )
        )
    return lines


def _figure_lines(study: StudyResult) -> list:
    lines = []
    a = fig1a(study)
    b = fig1b(study)
    for os_name in ("android", "ios"):
        lines.append(
            ComparisonLine(
                "Figure 1a — web contacts more A&A domains",
                os_name,
                f"{PAPER_FIGURES['1a'][os_name]:.0f}%",
                f"{a[os_name].percent_leq(-1):.0f}%",
            )
        )
    for os_name in ("android", "ios"):
        lines.append(
            ComparisonLine(
                "Figure 1b — more flows to A&A on web",
                os_name,
                f"{PAPER_FIGURES['1b'][os_name]:.0f}%",
                f"{b[os_name].percent_leq(-1):.0f}%",
            )
        )
    c = fig1c(study)
    for os_name in ("android", "ios"):
        lines.append(
            ComparisonLine(
                "Figure 1c — (app−web) MB to A&A",
                os_name,
                "x range ≈ [-5, +3] MB, mostly negative",
                f"range [{min(c[os_name].values):.1f}, {max(c[os_name].values):.1f}] MB, "
                f"{c[os_name].percent_leq(-0.001):.0f}% negative",
            )
        )
    d = fig1d(study)
    for os_name in ("android", "ios"):
        positive = 100 * fraction(d[os_name].values, lambda v: v > 0)
        lines.append(
            ComparisonLine(
                "Figure 1d — domains receiving PII",
                os_name,
                "slight bias toward apps",
                f"{positive:.0f}% of services lean app",
            )
        )
    e = fig1e(study)
    for os_name in ("android", "ios"):
        bins = dict(e[os_name].points)
        mode = max(bins, key=bins.get)
        lines.append(
            ComparisonLine(
                "Figure 1e — leaked-identifier diff PDF",
                os_name,
                "mode at +1, positive bias",
                f"mode at {mode:+d}, "
                f"{100 * fraction(e[os_name].values, lambda v: v > 0):.0f}% positive",
            )
        )
    f = fig1f(study)
    for os_name in ("android", "ios"):
        lines.append(
            ComparisonLine(
                "Figure 1f — Jaccard of leaked types",
                os_name,
                "≥50% at 0; 80-90% ≤ 0.5",
                f"{f[os_name].percent_leq(0.0):.0f}% at 0; "
                f"{f[os_name].percent_leq(0.5):.0f}% ≤ 0.5",
            )
        )
    return lines


def build_comparison(study: StudyResult) -> list:
    """Every paper-vs-measured line, grouped by section."""
    lines = []
    lines.extend(_table1_lines(study))
    lines.extend(_table2_lines(study))
    lines.extend(_table3_lines(study))
    lines.extend(_figure_lines(study))
    return lines


def render_markdown(study: StudyResult, seed: int = 2016, duration: float = 240.0) -> str:
    """Render the full EXPERIMENTS.md body."""
    lines = build_comparison(study)
    sections: dict = {}
    for line in lines:
        sections.setdefault(line.section, []).append(line)

    out = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Reproduction of *Should You Use the App for That?* (IMC 2016).",
        f"Study parameters: seed={seed}, session duration={duration:.0f}s, "
        "50 services × (app, web) × (Android 4.4, iOS 9.3.1).",
        "",
        "Absolute magnitudes are not expected to match — the substrate is a",
        "calibrated simulation, not the authors' 2016 testbed — but the",
        "*shape* (who leaks, where, who wins, by roughly what factor) must.",
        "Regenerate with `repro report` or",
        "`python -m repro.cli report > EXPERIMENTS.md`.",
        "",
        "Every quantity below is measured for the paper's single-tester",
        "design point.  `repro campaign --population N --cohorts os,medium",
        "--seed S` re-measures the study across a whole simulated",
        "population instead (personas drawn from a `--population-spec`",
        "JSON of distributions) and reports the same tables per cohort",
        "with Wilson and bootstrap confidence intervals; `--shards`,",
        "`--executor`, `--workers`, and `--agg` control execution without",
        "changing a single output byte.",
        "",
    ]
    for section, section_lines in sections.items():
        out.append(f"## {section}")
        out.append("")
        out.append("| Quantity | Paper | Measured |")
        out.append("|---|---|---|")
        for line in section_lines:
            out.append(line.as_row())
        out.append("")
    return "\n".join(out)
