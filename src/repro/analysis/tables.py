"""Table generators: the paper's Tables 1, 2, and 3.

Each generator consumes a :class:`~repro.core.pipeline.StudyResult` and
returns structured rows; ``render_*`` functions print them in the
paper's layout so the benchmark harness can show paper-vs-measured side
by side.

Conventions (reverse-engineered from the published numbers):

- a service "leaks via medium m" when any tested OS cell of that medium
  has at least one leak;
- "Avg. Domains" averages the count of distinct domains receiving leaks
  over *leaking* services only (Business web reads 3.0 ± 0.0 with one
  of two services leaking — an all-services average would halve it);
- Table 2 counts services *contacting* an A&A domain, while its leak
  and identifier columns count actual PII receipts.

Every generator takes ``agg={"rows","columnar","auto"}``: ``rows`` is
the reference object-graph walk, ``columnar`` reduces a
:class:`~repro.analysis.columnar.StudyAggregate` instead (a ready
aggregate may also be passed as ``study`` directly).  Both paths build
rows through the same shared builders, so output is byte-identical —
pinned by ``tests/test_columnar.py`` and the QA oracle.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..core.pipeline import ServiceResult, StudyResult
from ..experiment.dataset import APP, WEB
from ..pii.types import TABLE1_ORDER, PiiType
from ..trackerdb.easylist import bundled_easylist
from ..trackerdb.psl import domain_key
from . import columnar
from .stats import format_mean_std, mean_std

CATEGORY_ORDER = (
    "Business",
    "Education",
    "Entertainment",
    "Lifestyle",
    "Music",
    "News",
    "Shopping",
    "Social",
    "Travel",
    "Weather",
)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


@dataclass
class Table1Row:
    """One (population, medium) row of Table 1."""

    group: str  # "All" | "Android" | "iOS" | category name
    medium: str  # "app" | "web"
    n_services: int
    avg_rank: float
    pct_leaking: float
    domains_mean: float
    domains_std: float
    identifiers: set  # set[PiiType]

    def identifier_codes(self) -> list:
        return [t.code for t in TABLE1_ORDER if t in self.identifiers]


def _medium_leak_domains(result: ServiceResult, medium: str, os_name: str = None) -> set:
    domains: set = set()
    for (osn, med), analysis in result.sessions.items():
        if med != medium:
            continue
        if os_name is not None and osn != os_name:
            continue
        domains |= analysis.leak_domains
    return domains


def _medium_types(result: ServiceResult, medium: str, os_name: str = None) -> set:
    types: set = set()
    for (osn, med), analysis in result.sessions.items():
        if med != medium:
            continue
        if os_name is not None and osn != os_name:
            continue
        types |= analysis.leak_types
    return types


def _finish_table1_row(
    group: str,
    medium: str,
    n: int,
    rank_sum,
    leaking: int,
    leak_domain_counts: list,
    identifiers: set,
) -> Table1Row:
    """Shared tail of both aggregation paths: identical arithmetic on
    identical inputs keeps rows/columnar byte-identical."""
    if leak_domain_counts:
        mu, sigma = mean_std(leak_domain_counts)
    else:
        mu = sigma = 0.0
    return Table1Row(
        group=group,
        medium=medium,
        n_services=n,
        avg_rank=rank_sum / n if n else 0.0,
        pct_leaking=100.0 * leaking / n if n else 0.0,
        domains_mean=mu,
        domains_std=sigma,
        identifiers=identifiers,
    )


def _row(group: str, medium: str, results: list, os_name: str = None) -> Table1Row:
    leak_domain_counts = []
    identifiers: set = set()
    leaking = 0
    for result in results:
        domains = _medium_leak_domains(result, medium, os_name)
        types = _medium_types(result, medium, os_name)
        if types:
            leaking += 1
            leak_domain_counts.append(len(domains))
            identifiers |= types
    return _finish_table1_row(
        group,
        medium,
        len(results),
        sum(r.spec.rank for r in results),
        leaking,
        leak_domain_counts,
        identifiers,
    )


def _row_columnar(group: str, medium: str, members: list, os_name: str = None) -> Table1Row:
    """Columnar twin of :func:`_row` over (meta, cells) members."""
    leak_domain_counts = []
    identifiers: set = set()
    leaking = 0
    for meta, cells in members:
        domains: set = set()
        types: set = set()
        for cell in cells:
            if cell.medium != medium:
                continue
            if os_name is not None and cell.os_name != os_name:
                continue
            domains |= cell.leak_domains
            types |= cell.leak_types
        if types:
            leaking += 1
            leak_domain_counts.append(len(domains))
            identifiers |= types
    return _finish_table1_row(
        group,
        medium,
        len(members),
        sum(meta.rank for meta, _ in members),
        leaking,
        leak_domain_counts,
        identifiers,
    )


def _table1_columnar(agg) -> list:
    by_service = agg.cells_by_service()
    members = [
        (meta, by_service.get(meta.slug, ())) for meta in agg.ordered_services()
    ]
    rows = []
    for medium in (APP, WEB):
        rows.append(_row_columnar("All", medium, members))
    for os_name, label in (("android", "Android"), ("ios", "iOS")):
        tested = [m for m in members if os_name in m[0].oses]
        for medium in (APP, WEB):
            rows.append(_row_columnar(label, medium, tested, os_name=os_name))
    for category in CATEGORY_ORDER:
        group = [m for m in members if m[0].category == category]
        if not group:
            continue
        for medium in (APP, WEB):
            rows.append(_row_columnar(category, medium, group))
    return rows


def table1(study, agg: str = "rows", executor=None) -> list:
    """Generate every row of Table 1 in presentation order."""
    if columnar.wants_columnar(study, agg):
        return _table1_columnar(columnar.ensure_aggregate(study, executor=executor))
    rows = []
    all_results = study.services
    for medium in (APP, WEB):
        rows.append(_row("All", medium, all_results))
    for os_name, label in (("android", "Android"), ("ios", "iOS")):
        tested = [r for r in all_results if os_name in r.spec.oses]
        for medium in (APP, WEB):
            rows.append(_row(label, medium, tested, os_name=os_name))
    for category in CATEGORY_ORDER:
        members = [r for r in all_results if r.spec.category == category]
        if not members:
            continue
        for medium in (APP, WEB):
            rows.append(_row(category, medium, members))
    return rows


def render_table1(rows: list) -> str:
    header = (
        f"{'Group':15s} {'Med':4s} {'N':>3s} {'Rank':>6s} {'%Leak':>7s} "
        f"{'Domains':>12s}  Identifiers"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        domains = format_mean_std([0]) if row.domains_mean == row.domains_std == 0 else None
        domains_text = (
            f"{row.domains_mean:.1f} ± {row.domains_std:.1f}" if row.pct_leaking else "-"
        )
        lines.append(
            f"{row.group:15s} {row.medium:4s} {row.n_services:3d} {row.avg_rank:6.1f} "
            f"{row.pct_leaking:6.1f}% {domains_text:>12s}  {' '.join(row.identifier_codes())}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------


@dataclass
class Table2Row:
    """One A&A domain's row in Table 2."""

    domain: str
    services_app: int
    services_both: int
    services_web: int
    avg_leaks_app: float
    avg_leaks_web: float
    identifiers_app: set = field(default_factory=set)
    identifiers_web: set = field(default_factory=set)

    @property
    def identifiers_both(self) -> set:
        return self.identifiers_app & self.identifiers_web

    @property
    def total_leaks(self) -> float:
        return self.avg_leaks_app * max(self.services_app, 1) + self.avg_leaks_web * max(
            self.services_web, 1
        )


def _table2_rows(contact: dict, leaks: dict, identifiers: dict, top: int) -> list:
    """Shared row builder over the three (domain, medium) maps; both
    aggregation paths produce identical maps, so sorting, tie-breaking,
    and the top-N cut are shared verbatim."""
    rows = []
    # Sorted, not raw set iteration: the tie rows below would
    # otherwise land in string-hash order and the top-N cut would
    # vary with PYTHONHASHSEED.
    for domain in sorted(set(contact) | set(leaks)):
        app_leaks = leaks[domain][APP]
        web_leaks = leaks[domain][WEB]
        app_services = contact[domain][APP]
        web_services = contact[domain][WEB]
        avg_app = (sum(app_leaks.values()) / len(app_services)) if app_services else (
            float(sum(app_leaks.values()))
        )
        avg_web = (sum(web_leaks.values()) / len(web_services)) if web_services else (
            float(sum(web_leaks.values()))
        )
        rows.append(
            Table2Row(
                domain=domain,
                services_app=len(app_services),
                services_both=len(app_services & web_services),
                services_web=len(web_services),
                avg_leaks_app=avg_app,
                avg_leaks_web=avg_web,
                identifiers_app=identifiers[domain][APP],
                identifiers_web=identifiers[domain][WEB],
            )
        )
    rows.sort(
        key=lambda r: (
            -(sum(leaks[r.domain][APP].values()) + sum(leaks[r.domain][WEB].values())),
            r.domain,
        )
    )
    return rows[:top]


def _table2_columnar(agg, top: int) -> list:
    easylist = bundled_easylist()
    contact: dict = defaultdict(lambda: {APP: set(), WEB: set()})
    leaks: dict = defaultdict(lambda: {APP: defaultdict(int), WEB: defaultdict(int)})
    identifiers: dict = defaultdict(lambda: {APP: set(), WEB: set()})

    services = agg.services
    for cell in agg.ordered_cells():
        slug = cell.service
        medium = cell.medium
        page_host = services[slug].domain
        for domain in cell.aa_domains:
            contact[domain][medium].add(slug)
        # One EasyList verdict per unique (hostname, page_host) group —
        # the rows path asks per event, but the verdict is a pure
        # function of those two strings, so grouped counts are exact.
        for (domain, host, pii), count in cell.leak_groups.items():
            if not easylist.matches(f"https://{host}/", page_host=page_host):
                continue
            leaks[domain][medium][slug] += count
            identifiers[domain][medium].add(pii)
    return _table2_rows(contact, leaks, identifiers, top)


def table2(study, top: int = 20, agg: str = "rows", executor=None) -> list:
    """Top A&A domains by total leaks received."""
    if columnar.wants_columnar(study, agg):
        return _table2_columnar(
            columnar.ensure_aggregate(study, executor=executor), top
        )
    easylist = bundled_easylist()
    contact: dict = defaultdict(lambda: {APP: set(), WEB: set()})
    leaks: dict = defaultdict(lambda: {APP: defaultdict(int), WEB: defaultdict(int)})
    identifiers: dict = defaultdict(lambda: {APP: set(), WEB: set()})

    for result in study.services:
        page_host = result.spec.domain
        for (os_name, medium), analysis in result.sessions.items():
            for domain in analysis.aa_domains:
                contact[domain][medium].add(result.spec.slug)
            for record in analysis.leaks:
                domain = record.domain
                if not easylist.matches(f"https://{record.observation.hostname}/", page_host=page_host):
                    continue
                leaks[domain][medium][result.spec.slug] += 1
                identifiers[domain][medium].add(record.pii_type)

    return _table2_rows(contact, leaks, identifiers, top)


def render_table2(rows: list) -> str:
    header = (
        f"{'A&A Domain':22s} {'SvcA':>4s} {'∩':>3s} {'SvcW':>4s} "
        f"{'AvgA':>7s} {'AvgW':>7s} {'IdA':>3s} {'Id∩':>3s} {'IdW':>3s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.domain:22s} {row.services_app:4d} {row.services_both:3d} "
            f"{row.services_web:4d} {row.avg_leaks_app:7.1f} {row.avg_leaks_web:7.1f} "
            f"{len(row.identifiers_app):3d} {len(row.identifiers_both):3d} "
            f"{len(row.identifiers_web):3d}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 3
# ---------------------------------------------------------------------------


@dataclass
class Table3Row:
    """One PII type's row in Table 3."""

    pii_type: PiiType
    services_app: int
    services_both: int
    services_web: int
    avg_leaks_app: float
    avg_leaks_web: float
    domains_app: int
    domains_both: int
    domains_web: int
    total_leaks: int


def _table3_buckets() -> dict:
    return {
        pii_type: {
            "svc": {APP: set(), WEB: set()},
            "leaks": {APP: defaultdict(int), WEB: defaultdict(int)},
            "domains": {APP: set(), WEB: set()},
        }
        for pii_type in PiiType
    }


def table3(study, agg: str = "rows", executor=None) -> list:
    """Per-PII-type aggregation, sorted by total leaks."""
    if columnar.wants_columnar(study, agg):
        return _table3_columnar(columnar.ensure_aggregate(study, executor=executor))
    per_type = _table3_buckets()
    for result in study.services:
        slug = result.spec.slug
        for (os_name, medium), analysis in result.sessions.items():
            for record in analysis.leaks:
                bucket = per_type[record.pii_type]
                bucket["svc"][medium].add(slug)
                bucket["leaks"][medium][slug] += 1
                bucket["domains"][medium].add(record.domain)
    return _table3_rows(per_type)


def _table3_columnar(agg) -> list:
    per_type = _table3_buckets()
    for cell in agg.ordered_cells():
        slug = cell.service
        medium = cell.medium
        for (domain, host, pii), count in cell.leak_groups.items():
            bucket = per_type[pii]
            bucket["svc"][medium].add(slug)
            bucket["leaks"][medium][slug] += count
            bucket["domains"][medium].add(domain)
    return _table3_rows(per_type)


def _table3_rows(per_type: dict) -> list:
    """Shared row builder: iterates the :class:`PiiType` buckets in
    enum-declaration order in both paths, so stable tie order under the
    total-leaks sort is identical."""
    rows = []
    for pii_type, bucket in per_type.items():
        app_services = bucket["svc"][APP]
        web_services = bucket["svc"][WEB]
        total_app = sum(bucket["leaks"][APP].values())
        total_web = sum(bucket["leaks"][WEB].values())
        if not app_services and not web_services:
            continue
        rows.append(
            Table3Row(
                pii_type=pii_type,
                services_app=len(app_services),
                services_both=len(app_services & web_services),
                services_web=len(web_services),
                avg_leaks_app=total_app / len(app_services) if app_services else 0.0,
                avg_leaks_web=total_web / len(web_services) if web_services else 0.0,
                domains_app=len(bucket["domains"][APP]),
                domains_both=len(bucket["domains"][APP] & bucket["domains"][WEB]),
                domains_web=len(bucket["domains"][WEB]),
                total_leaks=total_app + total_web,
            )
        )
    rows.sort(key=lambda r: r.total_leaks, reverse=True)
    return rows


def render_table3(rows: list) -> str:
    header = (
        f"{'PII':12s} {'SvcA':>4s} {'∩':>3s} {'SvcW':>4s} "
        f"{'AvgA':>7s} {'AvgW':>7s} {'DomA':>4s} {'Dom∩':>4s} {'DomW':>4s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.pii_type.label:12s} {row.services_app:4d} {row.services_both:3d} "
            f"{row.services_web:4d} {row.avg_leaks_app:7.1f} {row.avg_leaks_web:7.1f} "
            f"{row.domains_app:4d} {row.domains_both:4d} {row.domains_web:4d}"
        )
    return "\n".join(lines)
