"""HTTP/1.1 request and response models with wire serialization.

The simulated clients, servers, and the interception proxy all exchange
these message objects; :func:`serialize_request` / :func:`parse_request`
(and the response equivalents) round-trip them through the actual
HTTP/1.1 wire format so byte accounting reflects real message sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .headers import Headers
from .url import Url, parse_url

SUPPORTED_METHODS = frozenset(
    {"GET", "POST", "PUT", "DELETE", "HEAD", "OPTIONS", "PATCH", "CONNECT"}
)

REASON_PHRASES = {
    200: "OK",
    201: "Created",
    204: "No Content",
    301: "Moved Permanently",
    302: "Found",
    303: "See Other",
    304: "Not Modified",
    307: "Temporary Redirect",
    308: "Permanent Redirect",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}

REDIRECT_STATUSES = frozenset({301, 302, 303, 307, 308})


class MessageError(ValueError):
    """Raised for malformed HTTP messages."""


@dataclass
class Request:
    """An HTTP request bound for a simulated server."""

    method: str
    url: Url
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""

    def __post_init__(self) -> None:
        if self.method not in SUPPORTED_METHODS:
            raise MessageError(f"unsupported method {self.method!r}")
        if isinstance(self.url, str):
            self.url = parse_url(self.url)

    @classmethod
    def build(
        cls,
        method: str,
        url: str,
        headers: Optional[list] = None,
        body: bytes = b"",
        content_type: str = "",
    ) -> "Request":
        """Convenience constructor that fills in Host and length headers."""
        request = cls(method=method, url=parse_url(url), body=body)
        for name, value in headers or []:
            request.headers.add(name, value)
        if request.url.is_absolute:
            request.headers.setdefault("Host", request.url.host)
        if content_type:
            request.headers.set("Content-Type", content_type)
        if body:
            request.headers.set("Content-Length", str(len(body)))
        return request

    @property
    def host(self) -> str:
        header = self.headers.get("Host")
        if header:
            return header.split(":")[0].lower()
        return self.url.host

    @property
    def content_type(self) -> str:
        return self.headers.get("Content-Type", "")

    def copy(self) -> "Request":
        # Bypass __init__: the source request already validated its
        # method and parsed its URL, and copy() runs once per send.
        new = Request.__new__(Request)
        new.method = self.method
        new.url = self.url
        new.headers = self.headers.copy()
        new.body = self.body
        return new


@dataclass
class Response:
    """An HTTP response from a simulated server."""

    status: int
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    reason: str = ""

    def __post_init__(self) -> None:
        if self.status < 100 or self.status > 599:
            raise MessageError(f"status out of range: {self.status}")
        if not self.reason:
            self.reason = REASON_PHRASES.get(self.status, "Unknown")

    @classmethod
    def build(
        cls,
        status: int,
        body: bytes = b"",
        content_type: str = "text/html",
        headers: Optional[list] = None,
    ) -> "Response":
        response = cls(status=status, body=body)
        for name, value in headers or []:
            response.headers.add(name, value)
        if body:
            response.headers.setdefault("Content-Type", content_type)
            response.headers.set("Content-Length", str(len(body)))
        return response

    @property
    def is_redirect(self) -> bool:
        return self.status in REDIRECT_STATUSES and "Location" in self.headers

    @property
    def location(self) -> Optional[str]:
        return self.headers.get("Location")

    @property
    def content_type(self) -> str:
        return self.headers.get("Content-Type", "")

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


def serialize_request(request: Request) -> bytes:
    """Render a request in HTTP/1.1 wire format (origin-form target)."""
    target = request.url.request_target
    lines = [f"{request.method} {target} HTTP/1.1"]
    headers = request.headers.copy()
    if request.url.is_absolute:
        headers.setdefault("Host", request.url.host)
    if request.body:
        headers.setdefault("Content-Length", str(len(request.body)))
    for name, value in headers:
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"
    return head + request.body


def serialize_response(response: Response) -> bytes:
    """Render a response in HTTP/1.1 wire format."""
    lines = [f"HTTP/1.1 {response.status} {response.reason}"]
    headers = response.headers.copy()
    if response.body:
        headers.setdefault("Content-Length", str(len(response.body)))
    for name, value in headers:
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"
    return head + response.body


def _split_head(wire: bytes) -> tuple:
    head, sep, body = wire.partition(b"\r\n\r\n")
    if not sep:
        raise MessageError("message has no header/body separator")
    lines = head.decode("latin-1").split("\r\n")
    return lines, body


def _parse_headers(lines: list) -> Headers:
    headers = Headers()
    for line in lines:
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise MessageError(f"malformed header line {line!r}")
        headers.add(name.strip(), value.strip())
    return headers


def parse_request(wire: bytes, scheme: str = "http") -> Request:
    """Parse a request from HTTP/1.1 wire format.

    ``scheme`` reconstructs the absolute URL from the Host header, since
    origin-form targets don't carry it.
    """
    lines, body = _split_head(wire)
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise MessageError(f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    headers = _parse_headers(lines[1:])
    host = headers.get("Host")
    if host is None:
        raise MessageError("request has no Host header")
    url = parse_url(f"{scheme}://{host}{target}")
    request = Request(method=method, url=url, body=body)
    request.headers = headers
    return request


def parse_response(wire: bytes) -> Response:
    """Parse a response from HTTP/1.1 wire format."""
    lines, body = _split_head(wire)
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise MessageError(f"malformed status line {lines[0]!r}")
    try:
        status = int(parts[1])
    except ValueError as exc:
        raise MessageError(f"bad status code in {lines[0]!r}") from exc
    reason = parts[2] if len(parts) == 3 else ""
    response = Response(status=status, body=body, reason=reason)
    response.headers = _parse_headers(lines[1:])
    return response
