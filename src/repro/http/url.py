"""URL parsing, serialization, and query-string handling.

Implemented from scratch (rather than wrapping ``urllib``) so the rest of
the stack controls exactly how components are normalized — the PII
detector depends on stable percent-encoding behaviour when it re-encodes
ground-truth values to search for them in URLs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

_SCHEME_PORTS = {"http": 80, "https": 443}
_UNRESERVED_STR = (
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-._~"
)
_UNRESERVED = set(_UNRESERVED_STR)
_HEX = "0123456789ABCDEF"


class UrlError(ValueError):
    """Raised for URLs the parser cannot interpret."""


def percent_encode(text: str, safe: str = "") -> str:
    """Percent-encode ``text``, leaving unreserved and ``safe`` chars bare."""
    keep = _UNRESERVED | set(safe) if safe else _UNRESERVED
    # Dominant case on the hot path: nothing needs escaping at all.
    if not text.strip(_UNRESERVED_STR + safe):
        return text
    # The slow byte-by-byte path is pure and its inputs (PII values,
    # tracker parameters) repeat constantly — memoize it.
    key = (text, safe)
    cached = _ENCODE_CACHE.get(key)
    if cached is not None:
        return cached
    out = []
    for byte in text.encode("utf-8"):
        char = chr(byte)
        if char in keep:
            out.append(char)
        else:
            out.append(f"%{_HEX[byte >> 4]}{_HEX[byte & 0xF]}")
    encoded = "".join(out)
    if len(_ENCODE_CACHE) >= _ENCODE_CACHE_MAX:
        _ENCODE_CACHE.clear()
    _ENCODE_CACHE[key] = encoded
    return encoded


_ENCODE_CACHE: dict = {}
_ENCODE_CACHE_MAX = 8192


def percent_decode(text: str, plus_as_space: bool = False) -> str:
    """Decode percent-escapes (and optionally ``+`` as space).

    Malformed escapes are left literal rather than raising: captured
    traffic is adversarial input and the detector must not crash on it.
    """
    if "%" not in text:
        if plus_as_space and "+" in text:
            return text.replace("+", " ")
        return text
    if plus_as_space:
        # Normalizing ``+`` to its escape form lets one chunked pass
        # handle both; a literal plus only reaches here pre-decode.
        text = text.replace("+", "%20")
    chunks = text.split("%")
    raw = bytearray(chunks[0].encode("utf-8"))
    hexdigits = "0123456789abcdefABCDEF"
    for chunk in chunks[1:]:
        if len(chunk) >= 2 and chunk[0] in hexdigits and chunk[1] in hexdigits:
            raw.append(int(chunk[:2], 16))
            raw.extend(chunk[2:].encode("utf-8"))
        else:
            raw.extend(("%" + chunk).encode("utf-8"))
    return raw.decode("utf-8", errors="replace")


def encode_query(params: Iterable) -> str:
    """Encode an iterable of (key, value) pairs as a query string."""
    params = tuple(params)
    cached = _ENCODE_QUERY_CACHE.get(params)
    if cached is not None:
        return cached
    parts = []
    for key, value in params:
        key = str(key)
        value = str(value)
        if not key.strip(_UNRESERVED_STR):
            if not value.strip(_UNRESERVED_STR):
                parts.append(f"{key}={value}")
                continue
            parts.append(f"{key}={percent_encode(value)}")
            continue
        parts.append(f"{percent_encode(key)}={percent_encode(value)}")
    encoded = "&".join(parts)
    try:
        if len(_ENCODE_QUERY_CACHE) >= _ENCODE_QUERY_CACHE_MAX:
            _ENCODE_QUERY_CACHE.clear()
        _ENCODE_QUERY_CACHE[params] = encoded
    except TypeError:
        pass  # unhashable values: skip the memo, the result still stands
    return encoded


_ENCODE_QUERY_CACHE: dict = {}
_ENCODE_QUERY_CACHE_MAX = 8192


def decode_query(query: str) -> list:
    """Decode a query string to a list of (key, value) pairs.

    Keeps duplicates and ordering; tolerates bare keys (no ``=``) and
    empty segments, both of which appear in real tracker beacons.
    Decoding is pure and beacon queries repeat endlessly, so results are
    memoized (a fresh list is returned per call).
    """
    if not query:
        return []
    cached = _QUERY_CACHE.get(query)
    if cached is not None:
        return list(cached)
    pairs = []
    # Dominant case: nothing to unescape anywhere in the query.
    plain = "%" not in query and "+" not in query
    for segment in query.split("&"):
        if not segment:
            continue
        key, sep, value = segment.partition("=")
        if plain:
            pairs.append((key, value))
        else:
            pairs.append(
                (
                    percent_decode(key, plus_as_space=True),
                    percent_decode(value, plus_as_space=True),
                )
            )
    if len(_QUERY_CACHE) >= _QUERY_CACHE_MAX:
        _QUERY_CACHE.clear()
    _QUERY_CACHE[query] = tuple(pairs)
    return pairs


_QUERY_CACHE: dict = {}
_QUERY_CACHE_MAX = 16384


@dataclass(frozen=True)
class Url:
    """A parsed absolute or relative HTTP(S) URL."""

    scheme: str = ""
    host: str = ""
    port: Optional[int] = None
    path: str = "/"
    query: str = ""
    fragment: str = ""

    @property
    def effective_port(self) -> int:
        if self.port is not None:
            return self.port
        return _SCHEME_PORTS.get(self.scheme, 80)

    @property
    def origin(self) -> str:
        """``scheme://host[:port]`` with default ports elided."""
        if not self.host:
            raise UrlError("relative URL has no origin")
        port = ""
        if self.port is not None and self.port != _SCHEME_PORTS.get(self.scheme):
            port = f":{self.port}"
        return f"{self.scheme}://{self.host}{port}"

    @property
    def is_absolute(self) -> bool:
        return bool(self.scheme and self.host)

    @property
    def request_target(self) -> str:
        """Path + query as sent on the request line."""
        target = self.path or "/"
        if self.query:
            target += f"?{self.query}"
        return target

    def query_pairs(self) -> list:
        return decode_query(self.query)

    def with_query_pairs(self, pairs: Iterable) -> "Url":
        return replace(self, query=encode_query(pairs))

    def join(self, reference: str) -> "Url":
        """Resolve ``reference`` against this URL (subset of RFC 3986).

        Handles absolute URLs, protocol-relative (``//host/...``),
        absolute paths, and relative paths — enough for redirect chains
        and embedded resource references in the simulated web pages.
        """
        if not self.is_absolute:
            raise UrlError("cannot join against a relative base")
        if "://" in reference:
            return parse_url(reference)
        if reference.startswith("//"):
            return parse_url(f"{self.scheme}:{reference}")
        if reference.startswith("/"):
            path, _, rest = reference.partition("?")
            query, _, fragment = rest.partition("#")
            return replace(self, path=path, query=query, fragment=fragment)
        # relative path
        base_dir = self.path.rsplit("/", 1)[0] + "/"
        path, _, rest = reference.partition("?")
        query, _, fragment = rest.partition("#")
        return replace(self, path=_normalize_path(base_dir + path), query=query, fragment=fragment)

    def __str__(self) -> str:
        # Urls are frozen and stringified repeatedly (capture records the
        # URL of every transaction) — cache the rendering on the instance.
        cached = self.__dict__.get("_str")
        if cached is not None:
            return cached
        out = ""
        if self.is_absolute:
            out = self.origin
        out += self.path or "/"
        if self.query:
            out += f"?{self.query}"
        if self.fragment:
            out += f"#{self.fragment}"
        object.__setattr__(self, "_str", out)
        return out


def _normalize_path(path: str) -> str:
    """Collapse ``.`` and ``..`` segments in an absolute path."""
    segments: list = []
    for segment in path.split("/"):
        if segment == "." or segment == "":
            continue
        if segment == "..":
            if segments:
                segments.pop()
            continue
        segments.append(segment)
    normalized = "/" + "/".join(segments)
    if path.endswith("/") and normalized != "/":
        normalized += "/"
    return normalized


def parse_url(raw: str) -> Url:
    """Parse an absolute ``http``/``https`` URL or a relative reference.

    Results are memoized: :class:`Url` is frozen, and the capture stack
    parses the same beacon/page URLs thousands of times per study.
    """
    cached = _PARSE_CACHE.get(raw)
    if cached is not None:
        return cached
    url = _parse_url_uncached(raw)
    if len(_PARSE_CACHE) >= _PARSE_CACHE_MAX:
        _PARSE_CACHE.clear()
    _PARSE_CACHE[raw] = url
    return url


_PARSE_CACHE: dict = {}
_PARSE_CACHE_MAX = 16384


def _parse_url_uncached(raw: str) -> Url:
    if raw is None:
        raise UrlError("URL is None")
    raw = raw.strip()
    if not raw:
        raise UrlError("empty URL")

    scheme = ""
    rest = raw
    if "://" in raw:
        scheme, _, rest = raw.partition("://")
        scheme = scheme.lower()
        if scheme not in _SCHEME_PORTS:
            raise UrlError(f"unsupported scheme {scheme!r} in {raw!r}")
    elif raw.startswith("//"):
        raise UrlError(f"protocol-relative URL needs a base: {raw!r}")

    if not scheme:
        path, _, after = rest.partition("?")
        query, _, fragment = after.partition("#")
        if "#" in path:
            path, _, fragment = path.partition("#")
            query = ""
        return Url(path=path or "/", query=query, fragment=fragment)

    authority, slash, after = rest.partition("/")
    path_and_more = slash + after if slash else ""
    if "?" in authority or "#" in authority:
        # e.g. http://host?q=1 — empty path
        for mark in "?#":
            if mark in authority:
                authority, _, tail = authority.partition(mark)
                path_and_more = mark + tail
                break

    host = authority
    port: Optional[int] = None
    if "@" in host:
        raise UrlError(f"userinfo is not supported: {raw!r}")
    if ":" in host:
        host, _, port_text = host.partition(":")
        if not port_text.isdigit():
            raise UrlError(f"bad port {port_text!r} in {raw!r}")
        port = int(port_text)
        if port < 1 or port > 65535:
            raise UrlError(f"port out of range in {raw!r}")
    if not host:
        raise UrlError(f"missing host in {raw!r}")

    path, _, after = path_and_more.partition("?")
    query, _, fragment = after.partition("#")
    if "#" in path:
        path, _, fragment = path.partition("#")
        query = ""
    return Url(
        scheme=scheme,
        host=host.lower(),
        port=port,
        path=path or "/",
        query=query,
        fragment=fragment,
    )
