"""Case-insensitive, order-preserving HTTP header multi-map."""

from __future__ import annotations

from typing import Iterable, Iterator, Optional


class Headers:
    """HTTP headers: case-insensitive lookup, duplicate-preserving.

    Stored as a list of ``(name, value)`` pairs in insertion order, which
    matters both for faithful wire serialization and because trackers
    sometimes smuggle identifiers in repeated headers.  A parallel
    first-value dict keyed by lowercased name makes ``get`` O(1) — header
    lookup is one of the busiest operations in the capture stack.
    """

    def __init__(self, items: Optional[Iterable] = None) -> None:
        self._items: list = []
        self._lower: list = []  # lowercased names, aligned with _items
        self._first: dict = {}  # lowercased name -> first value
        if items is not None:
            for name, value in items:
                self.add(name, value)

    def add(self, name: str, value: str) -> None:
        """Append a header, keeping any existing values of the same name."""
        if type(name) is not str:
            name = str(name)
        if type(value) is not str:
            value = str(value)
        lowered = name.lower()
        self._items.append((name, value))
        self._lower.append(lowered)
        self._first.setdefault(lowered, value)

    def set(self, name: str, value: str) -> None:
        """Replace every value of ``name`` with the single given value."""
        self.remove(name)
        self.add(name, value)

    def setdefault(self, name: str, value: str) -> str:
        """Set ``name`` to ``value`` unless present; return the final value."""
        existing = self._first.get(name.lower())
        if existing is not None:
            return existing
        self.add(name, value)
        return value

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Return the first value of ``name``, or ``default``."""
        return self._first.get(name.lower(), default)

    def get_all(self, name: str) -> list:
        """Return every value of ``name`` in order."""
        wanted = name.lower()
        if wanted not in self._first:
            return []
        return [
            item[1]
            for lowered, item in zip(self._lower, self._items)
            if lowered == wanted
        ]

    def remove(self, name: str) -> int:
        """Delete every value of ``name``; return how many were removed."""
        wanted = name.lower()
        if wanted not in self._first:
            return 0
        before = len(self._items)
        kept = [
            (lowered, item)
            for lowered, item in zip(self._lower, self._items)
            if lowered != wanted
        ]
        self._lower = [lowered for lowered, _ in kept]
        self._items = [item for _, item in kept]
        del self._first[wanted]
        return before - len(self._items)

    def items(self) -> list:
        """Return a copy of the ``(name, value)`` pairs in order."""
        return list(self._items)

    def copy(self) -> "Headers":
        new = Headers.__new__(Headers)
        new._items = list(self._items)
        new._lower = list(self._lower)
        new._first = dict(self._first)
        return new

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._first

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Headers):
            return NotImplemented
        ours = [(lowered, item[1]) for lowered, item in zip(self._lower, self._items)]
        theirs = [
            (lowered, item[1]) for lowered, item in zip(other._lower, other._items)
        ]
        return ours == theirs

    def __repr__(self) -> str:
        return f"Headers({self._items!r})"
