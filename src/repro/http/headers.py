"""Case-insensitive, order-preserving HTTP header multi-map."""

from __future__ import annotations

from typing import Iterable, Iterator, Optional


class Headers:
    """HTTP headers: case-insensitive lookup, duplicate-preserving.

    Stored as a list of ``(name, value)`` pairs in insertion order, which
    matters both for faithful wire serialization and because trackers
    sometimes smuggle identifiers in repeated headers.
    """

    def __init__(self, items: Optional[Iterable] = None) -> None:
        self._items: list = []
        if items is not None:
            for name, value in items:
                self.add(name, value)

    def add(self, name: str, value: str) -> None:
        """Append a header, keeping any existing values of the same name."""
        self._items.append((str(name), str(value)))

    def set(self, name: str, value: str) -> None:
        """Replace every value of ``name`` with the single given value."""
        self.remove(name)
        self.add(name, value)

    def setdefault(self, name: str, value: str) -> str:
        """Set ``name`` to ``value`` unless present; return the final value."""
        existing = self.get(name)
        if existing is not None:
            return existing
        self.add(name, value)
        return value

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Return the first value of ``name``, or ``default``."""
        wanted = name.lower()
        for key, value in self._items:
            if key.lower() == wanted:
                return value
        return default

    def get_all(self, name: str) -> list:
        """Return every value of ``name`` in order."""
        wanted = name.lower()
        return [value for key, value in self._items if key.lower() == wanted]

    def remove(self, name: str) -> int:
        """Delete every value of ``name``; return how many were removed."""
        wanted = name.lower()
        before = len(self._items)
        self._items = [(k, v) for k, v in self._items if k.lower() != wanted]
        return before - len(self._items)

    def items(self) -> list:
        """Return a copy of the ``(name, value)`` pairs in order."""
        return list(self._items)

    def copy(self) -> "Headers":
        return Headers(self._items)

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Headers):
            return NotImplemented
        ours = [(k.lower(), v) for k, v in self._items]
        theirs = [(k.lower(), v) for k, v in other._items]
        return ours == theirs

    def __repr__(self) -> str:
        return f"Headers({self._items!r})"
