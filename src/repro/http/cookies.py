"""Cookie parsing and client-side cookie storage.

Web tracking in the paper's world is cookie-driven: trackers set IDs via
``Set-Cookie`` and sync them across exchanges.  This module implements
the ``Cookie`` request header, ``Set-Cookie`` response header (with the
attributes that matter for scoping: Domain, Path, Expires/Max-Age,
Secure, HttpOnly), and a :class:`CookieJar` with domain-match semantics
close enough to RFC 6265 for the simulated ecosystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


class CookieError(ValueError):
    """Raised for Set-Cookie lines with no parsable name=value."""


@dataclass
class Cookie:
    """One cookie as stored by a user agent."""

    name: str
    value: str
    domain: str = ""
    path: str = "/"
    expires: Optional[float] = None  # simulated-clock absolute seconds
    secure: bool = False
    http_only: bool = False
    host_only: bool = True

    def expired(self, now: float) -> bool:
        return self.expires is not None and now >= self.expires

    def domain_matches(self, host: str) -> bool:
        """RFC 6265 §5.1.3 domain-match against ``host``."""
        host = host.lower()
        domain = self.domain.lower()
        if self.host_only or not domain:
            return host == domain
        if host == domain:
            return True
        return host.endswith("." + domain)

    def path_matches(self, path: str) -> bool:
        """RFC 6265 §5.1.4 path-match against a request path."""
        if self.path == path:
            return True
        if path.startswith(self.path):
            if self.path.endswith("/"):
                return True
            return path[len(self.path) :].startswith("/")
        return False


# Cookie headers repeat verbatim across a session's requests; parsing is
# pure, so memoize the split.  Capped to bound adversarial streams.
_COOKIE_PARSE_CACHE: dict = {}
_COOKIE_PARSE_CACHE_MAX = 8192


def parse_cookie_header(value: str) -> list:
    """Parse a request ``Cookie`` header into (name, value) pairs."""
    cached = _COOKIE_PARSE_CACHE.get(value)
    if cached is not None:
        return list(cached)
    pairs = []
    for chunk in value.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, sep, val = chunk.partition("=")
        if not sep:
            continue  # tolerate malformed crumbs
        pairs.append((name.strip(), val.strip()))
    if len(_COOKIE_PARSE_CACHE) >= _COOKIE_PARSE_CACHE_MAX:
        _COOKIE_PARSE_CACHE.clear()
    _COOKIE_PARSE_CACHE[value] = tuple(pairs)
    return pairs


def format_cookie_header(pairs: Iterable) -> str:
    """Format (name, value) pairs as a request ``Cookie`` header."""
    return "; ".join(f"{name}={value}" for name, value in pairs)


def parse_set_cookie(line: str, request_host: str, now: float = 0.0) -> Cookie:
    """Parse one ``Set-Cookie`` response header into a :class:`Cookie`.

    ``request_host`` supplies the default (host-only) domain; ``now`` is
    the simulated time used to resolve ``Max-Age``.
    """
    chunks = line.split(";")
    name, sep, value = chunks[0].partition("=")
    name = name.strip()
    if not sep or not name:
        raise CookieError(f"Set-Cookie has no name=value: {line!r}")
    cookie = Cookie(name=name, value=value.strip(), domain=request_host.lower())

    max_age: Optional[float] = None
    for chunk in chunks[1:]:
        attr, _, attr_value = chunk.strip().partition("=")
        attr_lower = attr.strip().lower()
        attr_value = attr_value.strip()
        if attr_lower == "domain" and attr_value:
            cookie.domain = attr_value.lstrip(".").lower()
            cookie.host_only = False
        elif attr_lower == "path" and attr_value.startswith("/"):
            cookie.path = attr_value
        elif attr_lower == "max-age":
            try:
                max_age = float(attr_value)
            except ValueError:
                pass
        elif attr_lower == "expires" and attr_value:
            # The simulated world writes Expires as "t=<seconds>"; real
            # date strings are treated as session cookies.
            if attr_value.startswith("t="):
                try:
                    cookie.expires = float(attr_value[2:])
                except ValueError:
                    pass
        elif attr_lower == "secure":
            cookie.secure = True
        elif attr_lower == "httponly":
            cookie.http_only = True
    if max_age is not None:  # Max-Age wins over Expires (RFC 6265 §4.1.2.2)
        cookie.expires = now + max_age
    return cookie


def format_set_cookie(cookie: Cookie) -> str:
    """Serialize a :class:`Cookie` back to a ``Set-Cookie`` header."""
    parts = [f"{cookie.name}={cookie.value}"]
    if not cookie.host_only and cookie.domain:
        parts.append(f"Domain={cookie.domain}")
    if cookie.path != "/":
        parts.append(f"Path={cookie.path}")
    if cookie.expires is not None:
        parts.append(f"Expires=t={cookie.expires}")
    if cookie.secure:
        parts.append("Secure")
    if cookie.http_only:
        parts.append("HttpOnly")
    return "; ".join(parts)


@dataclass
class CookieJar:
    """Client-side cookie store with RFC 6265 matching semantics.

    Cookies are bucketed by their stored domain: a request host can only
    be matched by cookies whose domain is the host itself or one of its
    dot-suffixes, so ``matching`` walks that chain instead of scanning
    the whole jar (big jars accumulate thousands of tracker cookies).
    """

    _cookies: dict = field(default_factory=dict)  # (domain, path, name) -> Cookie
    _by_domain: dict = field(default_factory=dict)  # domain -> {key -> Cookie}
    # Header memo: (host, path, secure) -> (version, header).  Valid while
    # the jar hasn't changed (version) and no stored cookie has hit its
    # expiry since (now < _next_expiry).
    _version: int = 0
    _next_expiry: Optional[float] = None
    _header_memo: dict = field(default_factory=dict)

    def store(self, cookie: Cookie) -> None:
        """Insert or replace a cookie (same domain+path+name replaces)."""
        key = (cookie.domain, cookie.path, cookie.name)
        self._cookies[key] = cookie
        self._by_domain.setdefault(cookie.domain.lower(), {})[key] = cookie
        self._version += 1
        if cookie.expires is not None and (
            self._next_expiry is None or cookie.expires < self._next_expiry
        ):
            self._next_expiry = cookie.expires

    def store_from_response(self, set_cookie_values: Iterable, request_host: str, now: float = 0.0) -> int:
        """Parse and store each ``Set-Cookie`` value; return count stored."""
        stored = 0
        for line in set_cookie_values:
            try:
                self.store(parse_set_cookie(line, request_host, now))
                stored += 1
            except CookieError:
                continue
        return stored

    def matching(self, host: str, path: str = "/", secure: bool = True, now: float = 0.0) -> list:
        """Return cookies to send for a request to ``host``/``path``.

        Expired cookies are evicted as a side effect, mirroring user-agent
        behaviour.
        """
        sendable = []
        host_lower = host.lower()
        suffix = host_lower
        while True:
            bucket = self._by_domain.get(suffix)
            if bucket:
                expired = None
                for key, cookie in bucket.items():
                    if cookie.expired(now):
                        if expired is None:
                            expired = []
                        expired.append(key)
                        continue
                    if cookie.secure and not secure:
                        continue
                    if cookie.domain_matches(host_lower) and cookie.path_matches(path):
                        sendable.append(cookie)
                if expired:
                    for key in expired:
                        del bucket[key]
                        del self._cookies[key]
                    self._version += 1
                    self._next_expiry = min(
                        (
                            c.expires
                            for c in self._cookies.values()
                            if c.expires is not None
                        ),
                        default=None,
                    )
            dot = suffix.find(".")
            if dot < 0:
                break
            suffix = suffix[dot + 1 :]
        if len(sendable) > 1:
            sendable.sort(key=lambda c: (-len(c.path), c.name))
        return sendable

    def cookie_header(self, host: str, path: str = "/", secure: bool = True, now: float = 0.0) -> str:
        """Build the request ``Cookie`` header value, or ``""`` if none.

        Sessions re-request the same endpoints constantly, so the built
        header is memoized and reused until the jar changes or a stored
        cookie's expiry passes.
        """
        fresh = self._next_expiry is None or now < self._next_expiry
        key = (host, path, secure)
        if fresh:
            cached = self._header_memo.get(key)
            if cached is not None and cached[0] == self._version:
                return cached[1]
        pairs = [(c.name, c.value) for c in self.matching(host, path, secure, now)]
        header = format_cookie_header(pairs)
        if fresh:
            if len(self._header_memo) >= 1024:
                self._header_memo.clear()
            self._header_memo[key] = (self._version, header)
        return header

    def clear(self) -> None:
        """Drop every cookie (private-mode teardown / factory reset)."""
        self._cookies.clear()
        self._by_domain.clear()
        self._header_memo.clear()
        self._version += 1
        self._next_expiry = None

    def __len__(self) -> int:
        return len(self._cookies)

    def all(self) -> list:
        return list(self._cookies.values())
