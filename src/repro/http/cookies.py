"""Cookie parsing and client-side cookie storage.

Web tracking in the paper's world is cookie-driven: trackers set IDs via
``Set-Cookie`` and sync them across exchanges.  This module implements
the ``Cookie`` request header, ``Set-Cookie`` response header (with the
attributes that matter for scoping: Domain, Path, Expires/Max-Age,
Secure, HttpOnly), and a :class:`CookieJar` with domain-match semantics
close enough to RFC 6265 for the simulated ecosystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


class CookieError(ValueError):
    """Raised for Set-Cookie lines with no parsable name=value."""


@dataclass
class Cookie:
    """One cookie as stored by a user agent."""

    name: str
    value: str
    domain: str = ""
    path: str = "/"
    expires: Optional[float] = None  # simulated-clock absolute seconds
    secure: bool = False
    http_only: bool = False
    host_only: bool = True

    def expired(self, now: float) -> bool:
        return self.expires is not None and now >= self.expires

    def domain_matches(self, host: str) -> bool:
        """RFC 6265 §5.1.3 domain-match against ``host``."""
        host = host.lower()
        domain = self.domain.lower()
        if self.host_only or not domain:
            return host == domain
        if host == domain:
            return True
        return host.endswith("." + domain)

    def path_matches(self, path: str) -> bool:
        """RFC 6265 §5.1.4 path-match against a request path."""
        if self.path == path:
            return True
        if path.startswith(self.path):
            if self.path.endswith("/"):
                return True
            return path[len(self.path) :].startswith("/")
        return False


def parse_cookie_header(value: str) -> list:
    """Parse a request ``Cookie`` header into (name, value) pairs."""
    pairs = []
    for chunk in value.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, sep, val = chunk.partition("=")
        if not sep:
            continue  # tolerate malformed crumbs
        pairs.append((name.strip(), val.strip()))
    return pairs


def format_cookie_header(pairs: Iterable) -> str:
    """Format (name, value) pairs as a request ``Cookie`` header."""
    return "; ".join(f"{name}={value}" for name, value in pairs)


def parse_set_cookie(line: str, request_host: str, now: float = 0.0) -> Cookie:
    """Parse one ``Set-Cookie`` response header into a :class:`Cookie`.

    ``request_host`` supplies the default (host-only) domain; ``now`` is
    the simulated time used to resolve ``Max-Age``.
    """
    chunks = line.split(";")
    name, sep, value = chunks[0].partition("=")
    name = name.strip()
    if not sep or not name:
        raise CookieError(f"Set-Cookie has no name=value: {line!r}")
    cookie = Cookie(name=name, value=value.strip(), domain=request_host.lower())

    max_age: Optional[float] = None
    for chunk in chunks[1:]:
        attr, _, attr_value = chunk.strip().partition("=")
        attr_lower = attr.strip().lower()
        attr_value = attr_value.strip()
        if attr_lower == "domain" and attr_value:
            cookie.domain = attr_value.lstrip(".").lower()
            cookie.host_only = False
        elif attr_lower == "path" and attr_value.startswith("/"):
            cookie.path = attr_value
        elif attr_lower == "max-age":
            try:
                max_age = float(attr_value)
            except ValueError:
                pass
        elif attr_lower == "expires" and attr_value:
            # The simulated world writes Expires as "t=<seconds>"; real
            # date strings are treated as session cookies.
            if attr_value.startswith("t="):
                try:
                    cookie.expires = float(attr_value[2:])
                except ValueError:
                    pass
        elif attr_lower == "secure":
            cookie.secure = True
        elif attr_lower == "httponly":
            cookie.http_only = True
    if max_age is not None:  # Max-Age wins over Expires (RFC 6265 §4.1.2.2)
        cookie.expires = now + max_age
    return cookie


def format_set_cookie(cookie: Cookie) -> str:
    """Serialize a :class:`Cookie` back to a ``Set-Cookie`` header."""
    parts = [f"{cookie.name}={cookie.value}"]
    if not cookie.host_only and cookie.domain:
        parts.append(f"Domain={cookie.domain}")
    if cookie.path != "/":
        parts.append(f"Path={cookie.path}")
    if cookie.expires is not None:
        parts.append(f"Expires=t={cookie.expires}")
    if cookie.secure:
        parts.append("Secure")
    if cookie.http_only:
        parts.append("HttpOnly")
    return "; ".join(parts)


@dataclass
class CookieJar:
    """Client-side cookie store with RFC 6265 matching semantics."""

    _cookies: dict = field(default_factory=dict)  # (domain, path, name) -> Cookie

    def store(self, cookie: Cookie) -> None:
        """Insert or replace a cookie (same domain+path+name replaces)."""
        self._cookies[(cookie.domain, cookie.path, cookie.name)] = cookie

    def store_from_response(self, set_cookie_values: Iterable, request_host: str, now: float = 0.0) -> int:
        """Parse and store each ``Set-Cookie`` value; return count stored."""
        stored = 0
        for line in set_cookie_values:
            try:
                self.store(parse_set_cookie(line, request_host, now))
                stored += 1
            except CookieError:
                continue
        return stored

    def matching(self, host: str, path: str = "/", secure: bool = True, now: float = 0.0) -> list:
        """Return cookies to send for a request to ``host``/``path``.

        Expired cookies are evicted as a side effect, mirroring user-agent
        behaviour.
        """
        sendable = []
        for key in list(self._cookies):
            cookie = self._cookies[key]
            if cookie.expired(now):
                del self._cookies[key]
                continue
            if cookie.secure and not secure:
                continue
            if cookie.domain_matches(host) and cookie.path_matches(path):
                sendable.append(cookie)
        sendable.sort(key=lambda c: (-len(c.path), c.name))
        return sendable

    def cookie_header(self, host: str, path: str = "/", secure: bool = True, now: float = 0.0) -> str:
        """Build the request ``Cookie`` header value, or ``""`` if none."""
        pairs = [(c.name, c.value) for c in self.matching(host, path, secure, now)]
        return format_cookie_header(pairs)

    def clear(self) -> None:
        """Drop every cookie (private-mode teardown / factory reset)."""
        self._cookies.clear()

    def __len__(self) -> int:
        return len(self._cookies)

    def all(self) -> list:
        return list(self._cookies.values())
