"""Request/response body codecs.

The PII detector has to look *inside* bodies: form-encoded logins, JSON
telemetry batches from analytics SDKs, multipart uploads, and gzipped
payloads all appear in the simulated traffic.  This module provides the
encoders the service simulators use and the tolerant decoders the
detector uses.
"""

from __future__ import annotations

import gzip
import json
from typing import Iterable, Optional

from .url import decode_query, encode_query

FORM_URLENCODED = "application/x-www-form-urlencoded"
JSON_TYPE = "application/json"
MULTIPART_PREFIX = "multipart/form-data"
TEXT_PLAIN = "text/plain"
OCTET_STREAM = "application/octet-stream"


class BodyError(ValueError):
    """Raised by strict encoders on invalid input."""


def encode_form(fields: Iterable) -> bytes:
    """Encode (key, value) pairs as ``application/x-www-form-urlencoded``."""
    return encode_query(fields).encode("ascii")


def decode_form(body: bytes) -> list:
    """Decode a urlencoded body to (key, value) pairs (tolerant)."""
    return decode_query(body.decode("utf-8", errors="replace"))


def encode_json(payload) -> bytes:
    """Encode a JSON-serializable payload with stable key order."""
    try:
        return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise BodyError(f"payload is not JSON-serializable: {exc}") from exc


def decode_json(body: bytes) -> Optional[object]:
    """Decode a JSON body; return None if it is not valid JSON."""
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None


def multipart_content_type(boundary: str) -> str:
    return f"{MULTIPART_PREFIX}; boundary={boundary}"


def encode_multipart(fields: Iterable, boundary: str) -> bytes:
    """Encode (name, value) text fields as multipart/form-data."""
    if not boundary or any(c.isspace() for c in boundary):
        raise BodyError(f"invalid multipart boundary: {boundary!r}")
    chunks = []
    for name, value in fields:
        chunks.append(f"--{boundary}\r\n".encode())
        chunks.append(
            f'Content-Disposition: form-data; name="{name}"\r\n\r\n'.encode()
        )
        chunks.append(str(value).encode("utf-8"))
        chunks.append(b"\r\n")
    chunks.append(f"--{boundary}--\r\n".encode())
    return b"".join(chunks)


def parse_multipart_boundary(content_type: str) -> Optional[str]:
    """Extract the boundary parameter from a multipart content type."""
    if not content_type.lower().startswith(MULTIPART_PREFIX):
        return None
    for param in content_type.split(";")[1:]:
        key, _, value = param.strip().partition("=")
        if key.lower() == "boundary" and value:
            return value.strip('"')
    return None


def decode_multipart(body: bytes, boundary: str) -> list:
    """Decode multipart text fields to (name, value) pairs (tolerant)."""
    fields = []
    delimiter = f"--{boundary}".encode()
    for part in body.split(delimiter):
        part = part.strip(b"\r\n")
        if not part or part == b"--":
            continue
        header_blob, sep, value = part.partition(b"\r\n\r\n")
        if not sep:
            continue
        name = None
        for line in header_blob.split(b"\r\n"):
            text = line.decode("utf-8", errors="replace")
            if text.lower().startswith("content-disposition"):
                for param in text.split(";")[1:]:
                    key, _, raw = param.strip().partition("=")
                    if key.lower() == "name":
                        name = raw.strip('"')
        if name is not None:
            fields.append((name, value.decode("utf-8", errors="replace")))
    return fields


def gzip_compress(body: bytes) -> bytes:
    """Compress with a fixed mtime so output is deterministic."""
    return gzip.compress(body, mtime=0)


def gzip_decompress(body: bytes) -> Optional[bytes]:
    """Decompress a gzip body; return None if it is not valid gzip."""
    try:
        return gzip.decompress(body)
    except (OSError, EOFError):
        return None


# Decoding is pure and the same beacon/telemetry bodies recur thousands
# of times per trace; memoize full decode results.  The cached pairs
# list is copied out per call, but the text and parsed JSON are shared —
# callers treat both as read-only.
_DECODE_CACHE: dict = {}
_DECODE_CACHE_MAX = 8192


def decode_body(body: bytes, content_type: str, content_encoding: str = "") -> dict:
    """Best-effort structured decode of a captured body.

    Returns a dict with:

    - ``text``: the body as text after content-encoding removal
    - ``pairs``: (key, value) pairs when form/multipart/JSON-flattened
    - ``json``: the parsed JSON object when applicable, else None

    Never raises: undecodable content falls back to replacement text and
    empty pairs, which is what the detector wants for opaque payloads.
    """
    key = (body, content_type, content_encoding)
    cached = _DECODE_CACHE.get(key)
    if cached is not None:
        return {"text": cached[0], "pairs": list(cached[1]), "json": cached[2]}
    decoded = _decode_body_uncached(body, content_type, content_encoding)
    if len(_DECODE_CACHE) >= _DECODE_CACHE_MAX:
        _DECODE_CACHE.clear()
    _DECODE_CACHE[key] = (decoded["text"], tuple(decoded["pairs"]), decoded["json"])
    return decoded


def _decode_body_uncached(body: bytes, content_type: str, content_encoding: str) -> dict:
    if content_encoding.lower() == "gzip":
        inflated = gzip_decompress(body)
        if inflated is not None:
            body = inflated
    original_content_type = content_type or ""
    content_type = original_content_type.lower()
    pairs: list = []
    parsed_json = None
    if content_type.startswith(FORM_URLENCODED):
        pairs = decode_form(body)
    elif content_type.startswith(JSON_TYPE) or content_type.endswith("+json"):
        parsed_json = decode_json(body)
        if parsed_json is not None:
            pairs = flatten_json(parsed_json)
    elif content_type.startswith(MULTIPART_PREFIX):
        # Boundary is case-sensitive: extract it from the original header.
        boundary = parse_multipart_boundary(original_content_type)
        if boundary:
            pairs = decode_multipart(body, boundary)
    text = body.decode("utf-8", errors="replace")
    return {"text": text, "pairs": pairs, "json": parsed_json}


def flatten_json(payload, prefix: str = "") -> list:
    """Flatten nested JSON into dotted-key (key, value) string pairs.

    ``{"user": {"email": "x"}}`` becomes ``[("user.email", "x")]`` —
    the shape the ReCon feature extractor and matcher operate on.
    """
    pairs = []
    if isinstance(payload, dict):
        for key, value in payload.items():
            dotted = f"{prefix}.{key}" if prefix else str(key)
            pairs.extend(flatten_json(value, dotted))
    elif isinstance(payload, list):
        for index, value in enumerate(payload):
            dotted = f"{prefix}[{index}]" if prefix else f"[{index}]"
            pairs.extend(flatten_json(value, dotted))
    else:
        value = "" if payload is None else payload
        pairs.append((prefix, str(value)))
    return pairs
