"""Simulated network: server registry, connections, and transports.

The :class:`Network` maps hostnames to handler objects (the simulated
first- and third-party servers from :mod:`repro.services`).  Clients do
not talk to it directly; they go through a :class:`Transport`, which
hands out :class:`Connection` objects.  The interception proxy
(:mod:`repro.proxy`) is an alternative Transport that records flows —
swapping transports is exactly how a handset "connects to the VPN".
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

from ..tls.handshake import ServerTlsProfile
from .message import Request, Response


class NetworkError(Exception):
    """Raised when a connection cannot be established or routed."""


@runtime_checkable
class Handler(Protocol):
    """A simulated HTTP server for one or more hostnames."""

    def handle(self, request: Request) -> Response: ...


class Network:
    """Routes requests to registered handlers by hostname.

    Registration accepts exact names (``api.yelp.example``) or wildcard
    names (``*.yelp.example``) that match one or more labels.  Each
    hostname may also carry a :class:`ServerTlsProfile` describing its
    HTTPS behaviour; hosts without one are HTTP-only.
    """

    def __init__(self) -> None:
        self._exact: dict = {}
        self._wildcard: dict = {}
        self._tls: dict = {}

    def register(
        self,
        hostname: str,
        handler: Handler,
        tls: Optional[ServerTlsProfile] = None,
    ) -> None:
        name = hostname.lower()
        if name.startswith("*."):
            self._wildcard[name[2:]] = handler
        else:
            self._exact[name] = handler
        if tls is not None:
            self._tls[name.lstrip("*.")] = tls

    def lookup(self, hostname: str) -> Handler:
        name = hostname.lower()
        handler = self._exact.get(name)
        if handler is not None:
            return handler
        parts = name.split(".")
        for i in range(1, len(parts)):
            handler = self._wildcard.get(".".join(parts[i:]))
            if handler is not None:
                return handler
        raise NetworkError(f"no route to host {hostname!r}")

    def knows(self, hostname: str) -> bool:
        try:
            self.lookup(hostname)
        except NetworkError:
            return False
        return True

    def tls_profile(self, hostname: str) -> ServerTlsProfile:
        """Return the TLS profile for ``hostname`` (default: standard)."""
        name = hostname.lower()
        profile = self._tls.get(name)
        if profile is not None:
            return profile
        parts = name.split(".")
        for i in range(1, len(parts)):
            profile = self._tls.get(".".join(parts[i:]))
            if profile is not None:
                # Re-issue under the concrete hostname so SNI matches.
                return ServerTlsProfile(
                    hostname=name,
                    certificate=profile.certificate,
                    app_pins=profile.app_pins,
                )
        return ServerTlsProfile.standard(name)

    def dispatch(self, request: Request) -> Response:
        """Route ``request`` to its handler and return the response."""
        return self.lookup(request.host).handle(request)


@runtime_checkable
class Connection(Protocol):
    """One logical TCP connection as seen by a client session."""

    def send(self, request: Request) -> Response: ...

    def close(self) -> None: ...


@runtime_checkable
class Transport(Protocol):
    """Connection factory: either direct, or via the recording proxy."""

    def connect(self, host: str, port: int, scheme: str, enforce_pins: bool = False) -> Connection: ...


class DirectConnection:
    """A connection that bypasses any proxy (not recorded)."""

    def __init__(self, network: Network, host: str) -> None:
        self._network = network
        self._host = host
        self._closed = False

    def send(self, request: Request) -> Response:
        if self._closed:
            raise NetworkError("send on closed connection")
        if request.host != self._host:
            raise NetworkError(
                f"request host {request.host!r} does not match connection host {self._host!r}"
            )
        return self._network.dispatch(request)

    def close(self) -> None:
        self._closed = True


class DirectTransport:
    """Transport used when the device is not tunneled through the proxy."""

    def __init__(self, network: Network) -> None:
        self._network = network

    def connect(self, host: str, port: int, scheme: str, enforce_pins: bool = False) -> Connection:
        if not self._network.knows(host):
            raise NetworkError(f"no route to host {host!r}")
        return DirectConnection(self._network, host.lower())


class TransportFault(NetworkError):
    """A deterministic, injected network failure (refusal/truncation/stall)."""


FAULT_REFUSE = "refuse"  # connect() fails outright
FAULT_TRUNCATE = "truncate"  # request is delivered; the response never arrives
FAULT_STALL = "stall"  # the connection hangs for stall_seconds, then serves

FAULT_KINDS = (FAULT_REFUSE, FAULT_TRUNCATE, FAULT_STALL)


class FaultInjectingConnection:
    """Wraps a connection to truncate or stall its exchanges."""

    def __init__(self, inner: Connection, kind: str, clock=None, stall_seconds: float = 30.0) -> None:
        self._inner = inner
        self._kind = kind
        self._clock = clock
        self._stall_seconds = stall_seconds

    def send(self, request: Request) -> Response:
        if self._kind == FAULT_STALL and self._clock is not None:
            self._clock.advance(self._stall_seconds)
        response = self._inner.send(request)
        if self._kind == FAULT_TRUNCATE:
            # The server processed the request (any proxy in the inner
            # transport recorded it), but the client never sees the
            # response — a mid-stream connection reset.
            raise TransportFault(f"connection truncated mid-response ({request.host})")
        return response

    def close(self) -> None:
        self._inner.close()


class FaultInjectingTransport:
    """Deterministic chaos layer over any :class:`Transport`.

    ``plan`` maps connection ordinals to fault kinds.  Ordinals count
    every ``connect()`` issued through this wrapper; pass a shared
    ``counter`` list when one logical plan spans several wrapper
    instances (e.g. the per-capture transports a phone hands out), so
    the ordinal sequence stays global and reproducible.
    """

    def __init__(
        self,
        inner: Transport,
        plan: dict,
        clock=None,
        stall_seconds: float = 30.0,
        counter: Optional[list] = None,
    ) -> None:
        self._inner = inner
        self._plan = dict(plan)
        self._clock = clock
        self._stall_seconds = stall_seconds
        self._counter = counter if counter is not None else [0]

    def connect(self, host: str, port: int, scheme: str, enforce_pins: bool = False) -> Connection:
        ordinal = self._counter[0]
        self._counter[0] += 1
        kind = self._plan.get(ordinal)
        if kind == FAULT_REFUSE:
            raise TransportFault(f"connection #{ordinal} to {host!r} refused")
        connection = self._inner.connect(host, port, scheme, enforce_pins=enforce_pins)
        if kind is None:
            return connection
        return FaultInjectingConnection(connection, kind, self._clock, self._stall_seconds)
