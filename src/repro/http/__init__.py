"""HTTP substrate: URLs, headers, cookies, messages, bodies, sessions."""

from .body import (
    FORM_URLENCODED,
    JSON_TYPE,
    decode_body,
    decode_form,
    decode_json,
    encode_form,
    encode_json,
    encode_multipart,
    flatten_json,
    gzip_compress,
    gzip_decompress,
)
from .cookies import Cookie, CookieJar, parse_cookie_header, parse_set_cookie
from .headers import Headers
from .message import (
    MessageError,
    Request,
    Response,
    parse_request,
    parse_response,
    serialize_request,
    serialize_response,
)
from .url import Url, UrlError, decode_query, encode_query, parse_url, percent_decode, percent_encode

__all__ = [
    "Cookie",
    "CookieJar",
    "FORM_URLENCODED",
    "Headers",
    "JSON_TYPE",
    "MessageError",
    "Request",
    "Response",
    "Url",
    "UrlError",
    "decode_body",
    "decode_form",
    "decode_json",
    "decode_query",
    "encode_form",
    "encode_json",
    "encode_multipart",
    "encode_query",
    "flatten_json",
    "gzip_compress",
    "gzip_decompress",
    "parse_cookie_header",
    "parse_request",
    "parse_response",
    "parse_set_cookie",
    "parse_url",
    "percent_decode",
    "percent_encode",
    "serialize_request",
    "serialize_response",
]
