"""HTTP client session: cookies, redirects, connection pooling.

Both the simulated apps and the simulated browsers fetch through a
:class:`ClientSession`.  The session owns redirect-following (the web
RTB redirect chains in the paper ride on this), cookie handling, and a
small keep-alive connection pool whose behaviour determines how many
TCP flows a workload produces — the quantity Figure 1b measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .cookies import CookieJar
from .headers import Headers
from .message import Request, Response
from .transport import Connection, NetworkError, Transport
from .url import Url, parse_url

DEFAULT_MAX_REDIRECTS = 10
DEFAULT_REQUESTS_PER_CONNECTION = 8


class TooManyRedirects(Exception):
    """Raised when a redirect chain exceeds the session limit."""


@dataclass
class FetchResult:
    """Outcome of one logical fetch, including any redirect hops."""

    response: Response
    url: Url
    hops: list  # list[tuple[Url, Response]] — intermediate redirects
    requests_sent: int

    @property
    def redirects(self) -> int:
        return len(self.hops)


class _PooledConnection:
    def __init__(self, connection: Connection) -> None:
        self.connection = connection
        self.requests = 0


class ClientSession:
    """A cookie-aware HTTP client over a pluggable transport.

    ``enforce_pins`` is set by app clients whose service ships a TLS pin
    set; browsers leave it False.  ``now_fn`` supplies simulated time for
    cookie expiry decisions.
    """

    def __init__(
        self,
        transport: Transport,
        user_agent: str = "repro/1.0",
        cookie_jar: Optional[CookieJar] = None,
        enforce_pins: bool = False,
        max_redirects: int = DEFAULT_MAX_REDIRECTS,
        requests_per_connection: int = DEFAULT_REQUESTS_PER_CONNECTION,
        now_fn=None,
        send_cookies: bool = True,
    ) -> None:
        if max_redirects < 0:
            raise ValueError("max_redirects cannot be negative")
        if requests_per_connection < 1:
            raise ValueError("requests_per_connection must be >= 1")
        self.transport = transport
        self.user_agent = user_agent
        self.cookie_jar = cookie_jar if cookie_jar is not None else CookieJar()
        self.enforce_pins = enforce_pins
        self.max_redirects = max_redirects
        self.requests_per_connection = requests_per_connection
        self.send_cookies = send_cookies
        self._now_fn = now_fn if now_fn is not None else (lambda: 0.0)
        self._pool: dict = {}
        self.connections_opened = 0
        self.requests_sent = 0

    # -- connection pool ---------------------------------------------------

    def _connection_for(self, url: Url) -> _PooledConnection:
        key = (url.host, url.effective_port, url.scheme)
        pooled = self._pool.get(key)
        if pooled is None or pooled.requests >= self.requests_per_connection:
            if pooled is not None:
                pooled.connection.close()
            connection = self.transport.connect(
                url.host, url.effective_port, url.scheme, enforce_pins=self.enforce_pins
            )
            pooled = _PooledConnection(connection)
            self._pool[key] = pooled
            self.connections_opened += 1
        return pooled

    def close(self) -> None:
        """Close every pooled connection."""
        for pooled in self._pool.values():
            pooled.connection.close()
        self._pool.clear()

    def __enter__(self) -> "ClientSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request sending ---------------------------------------------------

    def _prepare(self, request: Request, owned: bool = False) -> Request:
        # ``owned`` requests (built by this session's get/post/redirect
        # handling, never seen by the caller again) are prepared in
        # place; external requests are copied so send() never mutates
        # its argument.
        prepared = request if owned else request.copy()
        prepared.headers.setdefault("Host", prepared.url.host)
        prepared.headers.setdefault("User-Agent", self.user_agent)
        prepared.headers.setdefault("Accept", "*/*")
        if self.send_cookies:
            header = self.cookie_jar.cookie_header(
                prepared.url.host,
                prepared.url.path,
                secure=prepared.url.scheme == "https",
                now=self._now_fn(),
            )
            if header:
                prepared.headers.set("Cookie", header)
        return prepared

    def _absorb_cookies(self, url: Url, response: Response) -> None:
        set_cookies = response.headers.get_all("Set-Cookie")
        if set_cookies:
            self.cookie_jar.store_from_response(set_cookies, url.host, now=self._now_fn())

    def send(self, request: Request, _owned: bool = False) -> Response:
        """Send one request without following redirects."""
        prepared = self._prepare(request, owned=_owned)
        pooled = self._connection_for(prepared.url)
        try:
            response = pooled.connection.send(prepared)
        except NetworkError:
            # Stale keep-alive connection: retry once on a fresh one.
            self._pool.pop(
                (prepared.url.host, prepared.url.effective_port, prepared.url.scheme), None
            )
            pooled = self._connection_for(prepared.url)
            response = pooled.connection.send(prepared)
        pooled.requests += 1
        self.requests_sent += 1
        self._absorb_cookies(prepared.url, response)
        return response

    def fetch(self, request: Request, _owned: bool = False) -> FetchResult:
        """Send a request and follow redirects up to the session limit."""
        hops = []
        current = request
        owned = _owned
        sent = 0
        while True:
            response = self.send(current, _owned=owned)
            owned = True  # redirect requests below are always ours
            sent += 1
            if not response.is_redirect:
                return FetchResult(
                    response=response, url=current.url, hops=hops, requests_sent=sent
                )
            if len(hops) >= self.max_redirects:
                raise TooManyRedirects(
                    f"more than {self.max_redirects} redirects from {request.url}"
                )
            hops.append((current.url, response))
            target = current.url.join(response.location or "")
            method = current.method
            body = current.body
            if response.status == 303 or (
                response.status in (301, 302) and method == "POST"
            ):
                method = "GET"
                body = b""
            current = Request.build(method, str(target), body=body)

    def get(self, url: str, headers: Optional[list] = None) -> FetchResult:
        """GET ``url`` following redirects."""
        return self.fetch(Request.build("GET", url, headers=headers), _owned=True)

    def post(
        self,
        url: str,
        body: bytes = b"",
        content_type: str = "application/x-www-form-urlencoded",
        headers: Optional[list] = None,
    ) -> FetchResult:
        """POST ``body`` to ``url`` following redirects."""
        return self.fetch(
            Request.build("POST", url, headers=headers, body=body, content_type=content_type),
            _owned=True,
        )
