"""Differential oracle: batch ≡ stream ≡ twins, byte for byte.

One scenario is collected exactly once; the resulting dataset is then
pushed through every execution path the repo offers and each path's
study is serialized to canonical JSON bytes.  Any byte difference is a
failure, reported as the first divergent field (recursive structural
diff), so a fuzz failure points straight at the layer that broke.

Paths compared against the ``workers=1`` batch reference:

- batch with ``workers=N`` (parallel per-session analysis);
- batch through each pinned :mod:`repro.par` backend — the process
  pool by default, whose workers re-serialize every session through
  the binary codec and own a fresh string-hash seed;
- streaming via :func:`repro.stream.stream_dataset` at each shard count;
- the fast Aho–Corasick matcher vs ``GroundTruthMatcher(slow=True)``
  per decrypted transaction and per generated probe text;
- the indexed EasyList engine vs ``FilterList.match_linear`` over the
  scenario's URL probes (scenario filters and the bundled list);
- PSL invariants (idempotence, reflexivity) over generated hostnames;
- the mitigation data plane: an installed all-allow policy is
  byte-inert, mitigated traffic analyzes identically in serial /
  process-pool / streaming, re-collection under the same policy and
  seed reproduces the mitigated study, and every residual leak is of a
  (type, party) cell the policy explicitly allows.

``mutators`` deliberately corrupt one path's output before comparison —
the mutation canary tests use this to prove the oracle actually looks.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from ..core.pipeline import analyze_dataset
from ..experiment.runner import ExperimentRunner
from ..pii.matcher import GroundTruthMatcher
from ..services.world import build_world
from ..stream.analyzer import stream_dataset
from ..trackerdb.abpfilter import FilterList
from ..trackerdb.easylist import bundled_easylist
from ..trackerdb.psl import DomainError, domain_key, registrable_domain, same_party
from .scenarios import Scenario, scenario_ground_truth


@dataclass(frozen=True)
class Divergence:
    """One observed disagreement between two supposedly equal paths."""

    component: str  # which comparison failed, e.g. "stream[shards=2]"
    path: str  # dotted path of the first divergent field
    expected: str
    actual: str

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class OracleReport:
    """Outcome of one scenario run through every path."""

    seed: int
    ok: bool
    divergences: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "divergences": [d.to_dict() for d in self.divergences],
            "stats": self.stats,
        }


def canonical_bytes(study) -> bytes:
    """Canonical serialization of a study: sorted keys, stable floats."""
    payload = {
        f"{analysis.service}|{analysis.os_name}|{analysis.medium}": analysis.to_dict()
        for analysis in study.analyses()
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def first_divergent_field(expected: bytes, actual: bytes):
    """Locate the first structural difference between two JSON payloads.

    Returns ``(dotted_path, expected_repr, actual_repr)``.  Falls back
    to a whole-document diff marker when either side fails to parse.
    """
    try:
        left = json.loads(expected.decode("utf-8"))
        right = json.loads(actual.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return ("<document>", repr(expected[:80]), repr(actual[:80]))
    return _diff(left, right, "$")


def _diff(left, right, path):
    if type(left) is not type(right):
        return (path, f"{type(left).__name__}:{left!r}"[:200], f"{type(right).__name__}:{right!r}"[:200])
    if isinstance(left, dict):
        for key in sorted(set(left) | set(right)):
            if key not in left:
                return (f"{path}.{key}", "<missing>", repr(right[key])[:200])
            if key not in right:
                return (f"{path}.{key}", repr(left[key])[:200], "<missing>")
            found = _diff(left[key], right[key], f"{path}.{key}")
            if found:
                return found
        return None
    if isinstance(left, list):
        for index in range(max(len(left), len(right))):
            if index >= len(left):
                return (f"{path}[{index}]", "<missing>", repr(right[index])[:200])
            if index >= len(right):
                return (f"{path}[{index}]", repr(left[index])[:200], "<missing>")
            found = _diff(left[index], right[index], f"{path}[{index}]")
            if found:
                return found
        return None
    if left != right:
        return (path, repr(left)[:200], repr(right)[:200])
    return None


def _first_divergent_line(expected: str, actual: str):
    """First differing line of two rendered texts (for render pins)."""
    left = expected.splitlines()
    right = actual.splitlines()
    for index in range(max(len(left), len(right))):
        want = left[index] if index < len(left) else "<missing>"
        got = right[index] if index < len(right) else "<missing>"
        if want != got:
            return (f"line {index}: {want}"[:200], f"line {index}: {got}"[:200])
    return (repr(expected)[:200], repr(actual)[:200])


def _match_signature(matches) -> tuple:
    """Order-independent fingerprint of a matcher result."""
    return tuple(
        sorted(
            (m.pii_type.value, m.value, m.encoding, m.source, getattr(m, "key", ""))
            for m in matches
        )
    )


def _identity(value):
    return value


def run_oracle(scenario: Scenario, mutators=None, executors=("process",)) -> OracleReport:
    """Run every differential comparison for one scenario.

    ``executors`` are extra :mod:`repro.par` backends pinned against
    the serial reference (the process pool is always worth pinning —
    it is the one backend whose workers have their own string-hash
    seed and cross a serialization boundary).
    """
    mutators = dict(mutators or {})

    def mutate(name, value):
        return mutators.get(name, _identity)(value)

    divergences = []
    stats = {"paths": 0, "matcher_probes": 0, "filter_probes": 0}

    specs = scenario.build_specs()
    world = build_world(specs)
    runner = ExperimentRunner(world, seed=scenario.study_seed)
    dataset = runner.run_study(specs, duration=scenario.duration)
    stats["sessions"] = len(dataset)
    stats["flows"] = dataset.total_flows()

    reference = analyze_dataset(
        dataset, specs, train_recon=scenario.train_recon, workers=1
    )
    expected = canonical_bytes(reference)

    def check_study(component, study, mutator_key):
        stats["paths"] += 1
        actual = canonical_bytes(mutate(mutator_key, study))
        if actual != expected:
            path, want, got = first_divergent_field(expected, actual)
            divergences.append(Divergence(component, path, want, got))

    # -- batch parallelism ---------------------------------------------------
    parallel = analyze_dataset(
        dataset, specs, train_recon=scenario.train_recon, workers=4
    )
    check_study("batch[workers=4]", parallel, "workers")

    # -- execution backends (thread pool above; process pool pinned too) -----
    for backend in dict.fromkeys(executors):
        pooled = analyze_dataset(
            dataset,
            specs,
            train_recon=scenario.train_recon,
            workers=4,
            executor=backend,
        )
        check_study(f"batch[{backend},workers=4]", pooled, backend)

    # -- streaming, every shard count ---------------------------------------
    for shards in scenario.shard_counts:
        streamed = stream_dataset(
            dataset, specs, shards=shards, train_recon=scenario.train_recon
        )
        check_study(f"stream[shards={shards}]", streamed, "stream")

    # -- columnar aggregation engine ----------------------------------------
    # Two pins per seed: (a) sharded partial-aggregate merges equal the
    # single-batch aggregate in any merge order; (b) every consumer's
    # columnar rendering is byte-identical to the row-wise reference.
    from ..analysis import columnar
    from ..analysis.figures import fig1e, render_series
    from ..analysis.longitudinal import render_drift, summarize_drift
    from ..analysis.reach import render_reach
    from ..analysis.tables import (
        render_table1,
        render_table2,
        render_table3,
        table1,
        table2,
        table3,
    )

    stats["columnar_checks"] = 0

    def check_columnar_bytes(component, expected_payload, actual_payload):
        stats["columnar_checks"] += 1
        if actual_payload != expected_payload:
            path, want, got = first_divergent_field(expected_payload, actual_payload)
            divergences.append(Divergence(component, path, want, got))

    def check_columnar_text(component, expected_text, actual_text):
        stats["columnar_checks"] += 1
        actual_text = mutate("columnar", actual_text)
        if actual_text != expected_text:
            want, got = _first_divergent_line(expected_text, actual_text)
            divergences.append(Divergence(component, "<render>", want, got))

    whole = columnar.study_aggregate(reference, shards=1)
    partials = columnar.shard_aggregates(reference, shards=3)
    agg_expected = whole.canonical_bytes()
    check_columnar_bytes(
        "columnar[merge shards=3]",
        agg_expected,
        columnar.merge_aggregates(partials).canonical_bytes(),
    )
    check_columnar_bytes(
        "columnar[merge reversed]",
        agg_expected,
        columnar.merge_aggregates(partials[::-1]).canonical_bytes(),
    )

    check_columnar_text(
        "columnar[table1]",
        render_table1(table1(reference)),
        render_table1(table1(whole)),
    )
    check_columnar_text(
        "columnar[table2]",
        render_table2(table2(reference)),
        render_table2(table2(whole)),
    )
    check_columnar_text(
        "columnar[table3]",
        render_table3(table3(reference)),
        render_table3(table3(whole)),
    )
    for os_name, series in fig1e(reference).items():
        check_columnar_text(
            f"columnar[fig1e:{os_name}]",
            render_series(series),
            render_series(fig1e(whole)[os_name]),
        )
    check_columnar_text(
        "columnar[reach]", render_reach(reference), render_reach(whole)
    )
    check_columnar_text(
        "columnar[drift]",
        render_drift(summarize_drift(reference, reference)),
        render_drift(summarize_drift(whole, whole)),
    )

    # -- campaign engine -----------------------------------------------------
    # A small population over the scenario's own specs, pinned four
    # ways: shard-count invariance (1 vs 3), merge-order invariance
    # (forward vs reversed fold of the same partials), rows ≡ columnar
    # folds, and serial ≡ process-pool execution — all byte-for-byte on
    # the canonical campaign aggregate.
    from ..campaign import CampaignContext, PopulationSpec, merge_campaigns, plan_shards, run_campaign

    stats["campaign_checks"] = 0
    population = 6
    pop_spec = PopulationSpec(
        services_per_user=(1, 3),
        sessions_per_service=(1, 2),
        session_duration=scenario.duration,
        bootstrap_replicates=25,
    )

    def check_campaign_bytes(component, expected_payload, actual_payload):
        stats["campaign_checks"] += 1
        if actual_payload != expected_payload:
            path, want, got = first_divergent_field(expected_payload, actual_payload)
            divergences.append(Divergence(component, path, want, got))

    campaign_reference = run_campaign(
        population,
        seed=scenario.study_seed,
        population_spec=pop_spec,
        services=specs,
        executor="serial",
        shards=1,
        agg="columnar",
    )
    campaign_expected = campaign_reference.canonical_bytes()

    rows_context = CampaignContext(
        pop_spec, specs, scenario.study_seed, dims=("os",), agg="rows"
    )
    campaign_partials = [
        rows_context.run_shard(start, stop)
        for start, stop in plan_shards(population, 3)
    ]
    check_campaign_bytes(
        "campaign[shards=3,rows]",
        campaign_expected,
        mutate("campaign", merge_campaigns(campaign_partials)).canonical_bytes(),
    )
    check_campaign_bytes(
        "campaign[merge reversed]",
        campaign_expected,
        merge_campaigns(campaign_partials[::-1]).canonical_bytes(),
    )
    campaign_process = run_campaign(
        population,
        seed=scenario.study_seed,
        population_spec=pop_spec,
        services=specs,
        executor="process",
        workers=2,
        shards=2,
    )
    check_campaign_bytes(
        "campaign[process,workers=2]",
        campaign_expected,
        campaign_process.canonical_bytes(),
    )

    # Scale-out data plane pins: the KIND_CAGG codec must round-trip to
    # identical canonical bytes, worker-side reduction (pool workers
    # folding locally, adaptive chunk geometry) must match the serial
    # master fold, and the blob tree reduction must match a serial
    # left fold of the same shard blobs.
    from ..net import codec as _codec

    check_campaign_bytes(
        "campaign[codec roundtrip]",
        campaign_expected,
        mutate(
            "campaign", _codec.decode_campaign(_codec.encode_campaign(campaign_reference))
        ).canonical_bytes(),
    )
    campaign_worker = run_campaign(
        population,
        seed=scenario.study_seed,
        population_spec=pop_spec,
        services=specs,
        executor="thread",
        workers=2,
        reduce="worker",
        agg="columnar",
    )
    check_campaign_bytes(
        "campaign[worker-reduce,adaptive]",
        campaign_expected,
        campaign_worker.canonical_bytes(),
    )
    from ..campaign import reduce_campaign_blobs

    shard_blobs = [
        _codec.encode_campaign(partial) for partial in campaign_partials
    ]
    check_campaign_bytes(
        "campaign[tree-reduce blobs]",
        campaign_expected,
        reduce_campaign_blobs(
            shard_blobs, executor="thread", workers=2, window=2
        ).canonical_bytes(),
    )

    # -- mitigation data plane ----------------------------------------------
    # Four pins per seed: (a) an installed-but-inert (all-allow) policy
    # leaves the study byte-identical to the reference; (b) the
    # mitigated dataset analyzes identically in serial, process-pool
    # and streaming; (c) re-collecting under the same policy and seed
    # reproduces the mitigated study byte for byte; (d) the residual
    # invariant — every leak surviving mitigation is of a (type, party)
    # cell the policy explicitly allows.
    from ..core.pipeline import categorizer_for
    from ..mitigate.policy import (
        ACTION_ALLOW,
        FIRST_PARTY,
        THIRD_PARTY,
        MitigationPolicy,
        default_policy,
    )

    stats["mitigate_checks"] = 0
    stats["mitigate_residual_probes"] = 0

    def check_mitigated(component, study, expected_payload):
        stats["mitigate_checks"] += 1
        actual = canonical_bytes(mutate("mitigate", study))
        if actual != expected_payload:
            path, want, got = first_divergent_field(expected_payload, actual)
            divergences.append(Divergence(component, path, want, got))

    inert_world = build_world(specs)
    inert_runner = ExperimentRunner(inert_world, seed=scenario.study_seed)
    inert_dataset = inert_runner.run_study(
        specs,
        duration=scenario.duration,
        mitigation=MitigationPolicy(label="inert"),
    )
    check_mitigated(
        "mitigate[inert-policy]",
        analyze_dataset(
            inert_dataset, specs, train_recon=scenario.train_recon, workers=1
        ),
        expected,
    )

    policy = default_policy()

    def collect_mitigated():
        world = build_world(specs)
        mitigated_runner = ExperimentRunner(world, seed=scenario.study_seed)
        return mitigated_runner.run_study(
            specs, duration=scenario.duration, mitigation=policy
        )

    mitigated_dataset = collect_mitigated()
    mitigated_reference = analyze_dataset(
        mitigated_dataset, specs, train_recon=scenario.train_recon, workers=1
    )
    mitigated_expected = canonical_bytes(mitigated_reference)

    check_mitigated(
        "mitigate[process,workers=2]",
        analyze_dataset(
            mitigated_dataset,
            specs,
            train_recon=scenario.train_recon,
            workers=2,
            executor="process",
        ),
        mitigated_expected,
    )
    check_mitigated(
        "mitigate[stream,shards=2]",
        stream_dataset(
            mitigated_dataset, specs, shards=2, train_recon=scenario.train_recon
        ),
        mitigated_expected,
    )
    check_mitigated(
        "mitigate[recollect]",
        analyze_dataset(
            collect_mitigated(), specs, train_recon=scenario.train_recon, workers=1
        ),
        mitigated_expected,
    )

    covered = policy.covered_types()
    categorizers = {spec.slug: categorizer_for(spec) for spec in specs}
    for analysis in mitigated_reference.analyses():
        categorizer = categorizers[analysis.service]
        for leak in analysis.leaks:
            stats["mitigate_residual_probes"] += 1
            host = leak.observation.hostname
            party = (
                FIRST_PARTY
                if leak.category.is_first_party or categorizer.is_sso_host(host)
                else THIRD_PARTY
            )
            action = policy.action_for(leak.pii_type, party)
            if action != ACTION_ALLOW or leak.pii_type in covered:
                divergences.append(
                    Divergence(
                        component=(
                            f"mitigate[residual:{analysis.service}|"
                            f"{analysis.os_name}|{analysis.medium}]"
                        ),
                        path=f"{leak.pii_type.value}@{host}",
                        expected=ACTION_ALLOW,
                        actual=action,
                    )
                )

    # -- fast vs slow PII matcher -------------------------------------------
    for record in sorted(dataset, key=lambda r: r.key):
        fast = GroundTruthMatcher(record.ground_truth)
        slow = GroundTruthMatcher(record.ground_truth, slow=True)
        for flow in record.trace:
            if not flow.decrypted:
                continue
            for txn in flow.transactions:
                fast_sig = _match_signature(fast.match_request(txn.request))
                slow_sig = _match_signature(
                    mutate("matcher", slow.match_request(txn.request))
                )
                stats["matcher_probes"] += 1
                if fast_sig != slow_sig:
                    divergences.append(
                        Divergence(
                            component=f"matcher[{'|'.join(record.key)}]",
                            path=txn.request.url,
                            expected=repr(fast_sig)[:200],
                            actual=repr(slow_sig)[:200],
                        )
                    )

    truth = scenario_ground_truth(scenario.seed)
    fast_text = GroundTruthMatcher(truth)
    slow_text = GroundTruthMatcher(truth, slow=True)
    for index, text in enumerate(scenario.texts):
        fast_sig = _match_signature(fast_text.match_text(text))
        slow_sig = _match_signature(mutate("matcher", slow_text.match_text(text)))
        stats["matcher_probes"] += 1
        if fast_sig != slow_sig:
            divergences.append(
                Divergence(
                    component=f"matcher[text:{index}]",
                    path=text[:80],
                    expected=repr(fast_sig)[:200],
                    actual=repr(slow_sig)[:200],
                )
            )

    # -- indexed vs linear EasyList engine ----------------------------------
    filter_lists = [
        ("scenario", FilterList.parse("\n".join(scenario.filters))),
        ("easylist", bundled_easylist()),
    ]
    for list_name, filter_list in filter_lists:
        for url, page_host, resource_type in scenario.urls:
            indexed = filter_list.match(url, page_host, resource_type)
            linear = mutate("filters", filter_list.match_linear(url, page_host, resource_type))
            stats["filter_probes"] += 1
            indexed_raw = indexed.raw if indexed is not None else None
            linear_raw = linear.raw if linear is not None else None
            if indexed_raw != linear_raw:
                divergences.append(
                    Divergence(
                        component=f"filters[{list_name}]",
                        path=f"{url} page={page_host} type={resource_type}",
                        expected=repr(indexed_raw),
                        actual=repr(linear_raw),
                    )
                )

    # -- PSL invariants ------------------------------------------------------
    for host in scenario.hostnames:
        try:
            key = domain_key(host)
            if domain_key(key) != key:
                divergences.append(
                    Divergence("psl[idempotent]", host, key, domain_key(key))
                )
            if not same_party(host, host):
                divergences.append(
                    Divergence("psl[reflexive]", host, "same_party(h, h)", "False")
                )
            try:
                registrable = registrable_domain(host)
            except DomainError:
                pass
            else:
                if registrable_domain(registrable) != registrable:
                    divergences.append(
                        Divergence(
                            "psl[registrable-idempotent]",
                            host,
                            registrable,
                            registrable_domain(registrable),
                        )
                    )
        except Exception as exc:  # invariants must never raise
            divergences.append(Divergence("psl[crash]", host, "no exception", repr(exc)))

    # -- ingest service ------------------------------------------------------
    # The server's second execution engine: uploading this scenario's
    # records as one codec bundle and draining the job queue must
    # produce result bytes identical to the offline pipeline assembled
    # through the same payload builder.  Ingest analyzes with matching
    # only (no ReCon training), so the reference here is the no-recon
    # study.
    import tempfile

    from ..ingest import IngestService, job_result_payload
    from ..net import codec
    from ..serve.app import canonical_json

    stats["ingest_checks"] = 0
    offline_no_recon = (
        reference
        if not scenario.train_recon
        else analyze_dataset(dataset, specs, train_recon=False, workers=1)
    )
    with tempfile.TemporaryDirectory(prefix="repro-qa-ingest-") as ingest_tmp:
        ingest = IngestService(ingest_tmp, executor="serial", specs=specs)
        upload = codec.frame(codec.KIND_BUNDLE, codec.encode_bundle(list(dataset)))
        ingest_job = ingest.submit(upload, tenant="oracle")
        ingest.run_pending()
        stats["ingest_checks"] += 1
        ingest_actual = ingest.store.result_bytes(ingest_job.job_id) or b'"<missing>"'
        ingest_expected = (
            canonical_json(
                job_result_payload(
                    ingest_job.job_id,
                    ingest_job.etag,
                    len(dataset),
                    mutate("ingest", offline_no_recon),
                )
            )
            + b"\n"
        )
        if ingest_actual != ingest_expected:
            path, want, got = first_divergent_field(ingest_expected, ingest_actual)
            divergences.append(Divergence("ingest[bundle]", path, want, got))

    # -- fault plan ----------------------------------------------------------
    if scenario.fault_plan:
        from .faults import run_fault_checks

        fault_divergences, fault_stats = run_fault_checks(
            scenario, specs, dataset, expected, mutators
        )
        divergences.extend(fault_divergences)
        stats.update(fault_stats)

    return OracleReport(
        seed=scenario.seed,
        ok=not divergences,
        divergences=divergences,
        stats=stats,
    )
