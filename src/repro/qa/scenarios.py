"""Seeded scenario generator.

One integer seed deterministically derives a full randomized world: a
small service catalog (random ad-SDK/tracker mixes, leak-code strings,
credential routes, HTTPS flags), a persona-derived identifier set, and
vocabularies of probe texts, URLs, ABP filter lines, and hostnames for
the detector/matcher twins.  Every random draw comes from a private
:class:`random.Random` seeded through SHA-256 — no global RNG state is
read or written, so the same seed always produces byte-identical
scenarios regardless of interpreter hash randomization or call order.

Scenarios serialize to plain JSON (:meth:`Scenario.to_dict`) so a
failing case can be written to disk, shrunk, and replayed with
``repro fuzz --replay repro.json``.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass, field

from ..device.persona import generate_persona
from ..device.phone import Permission
from ..pii.encodings import variants
from ..pii.types import PiiType
from ..services import thirdparty
from ..services.catalog import CatalogRow, _build_spec
from ..services.thirdparty import AA_ROLES, AD_EXCHANGE, CDN, IDENTITY

# ---------------------------------------------------------------------------
# Deterministic sub-RNG derivation
# ---------------------------------------------------------------------------


def _sub_rng(seed: int, *parts) -> random.Random:
    """A private RNG for one labelled stream derived from the seed.

    Separate streams mean adding a draw to one component (say, the URL
    vocabulary) cannot shift every other component's output — seeds stay
    stable across harness evolution.
    """
    text = ":".join([str(seed)] + [str(part) for part in parts])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


# ---------------------------------------------------------------------------
# Vocabulary pools (derived once from the registries; sorted for determinism)
# ---------------------------------------------------------------------------


def _pools():
    registry = thirdparty.registry()
    app_sdks = sorted(
        domain
        for domain, party in registry.items()
        if "app" in party.media and party.role in AA_ROLES
    )
    web_trackers = sorted(
        domain
        for domain, party in registry.items()
        if "web" in party.media and party.role in AA_ROLES
    )
    exchanges = sorted(
        domain for domain, party in registry.items() if party.role == AD_EXCHANGE
    )
    identity = sorted(
        domain
        for domain, party in registry.items()
        if party.role in (IDENTITY,) and "app" in party.media
    )
    hostnames = sorted(host for party in registry.values() for host in party.hostnames)
    return app_sdks, web_trackers, exchanges, identity, hostnames


_APP_SDK_POOL, _WEB_TRACKER_POOL, _EXCHANGE_POOL, _IDENTITY_POOL, _PARTY_HOSTNAMES = _pools()

_CATEGORIES = (
    "Business", "Education", "Entertainment", "Lifestyle",
    "Music", "News", "Shopping", "Social", "Travel", "Weather",
)

_ALL_CODES = ("B", "D", "E", "G", "L", "N", "P", "U", "PW", "UID")
_LOGIN_CODES = frozenset({"E", "U", "PW"})

_WORDS = (
    "session", "token", "page", "view", "click", "cart", "search", "profile",
    "weather", "news", "deal", "coupon", "video", "score", "event", "sync",
    "init", "beacon", "pixel", "bid", "creative", "slot", "banner", "geo",
)

_HOST_LABELS = (
    "ads", "track", "pixel", "cdn", "api", "beacon", "sync", "static",
    "collect", "metrics", "tag", "rtb", "img", "edge", "mobile",
)

# Mix of real PSL suffixes (including multi-label ones), the reserved
# test suffixes, and strings that are NOT public suffixes — exercising
# both branches of repro.trackerdb.psl.
_SUFFIX_POOL = (
    "com", "net", "org", "io", "tv", "co.uk", "com.au", "co.jp",
    "example", "test", "internal", "zz", "abcxyz",
)

_RESOURCE_TYPES = ("script", "image", "subdocument", "xmlhttprequest", "stylesheet", "other")

_FILTER_OPTION_TYPES = ("script", "image", "subdocument", "xmlhttprequest", "stylesheet")


# ---------------------------------------------------------------------------
# Public vocabulary helpers (also used by the property-based tests)
# ---------------------------------------------------------------------------


def random_hostname(rng: random.Random) -> str:
    """A random hostname, occasionally degenerate (IP, bare suffix, caps)."""
    roll = rng.random()
    if roll < 0.05:
        return ".".join(str(rng.randrange(256)) for _ in range(4))
    if roll < 0.10:
        return rng.choice(_SUFFIX_POOL)
    labels = [rng.choice(_HOST_LABELS) for _ in range(rng.randint(1, 3))]
    host = ".".join(labels + [rng.choice(_SUFFIX_POOL)])
    if rng.random() < 0.10:
        host = host.upper()
    if rng.random() < 0.05:
        host += "."
    return host


def random_url(rng: random.Random, hosts=()) -> str:
    """A random URL over registry hosts, generated hosts, or raw IPs."""
    pool = list(hosts) or _PARTY_HOSTNAMES
    roll = rng.random()
    if roll < 0.55:
        host = rng.choice(pool)
    else:
        host = random_hostname(rng).rstrip(".") or "localhost"
    scheme = rng.choice(("http", "https"))
    segments = [rng.choice(_WORDS) for _ in range(rng.randint(0, 3))]
    path = "/" + "/".join(segments)
    if segments and rng.random() < 0.4:
        path += rng.choice((".js", ".gif", ".png", ".html"))
    if rng.random() < 0.5:
        pairs = [
            f"{rng.choice(_WORDS)}={rng.randrange(10_000)}"
            for _ in range(rng.randint(1, 3))
        ]
        path += "?" + "&".join(pairs)
    return f"{scheme}://{host}{path}"


def random_filter_line(rng: random.Random) -> str:
    """A random EasyList-style filter line (sometimes comment/unsupported)."""
    roll = rng.random()
    if roll < 0.08:
        return "! comment " + rng.choice(_WORDS)
    if roll < 0.12:
        return f"##.{rng.choice(_WORDS)}"  # element hiding: parser must skip
    if roll < 0.30:
        domain = rng.choice(_PARTY_HOSTNAMES).split(".", 1)[-1]
        body = f"||{domain}^"
    elif roll < 0.55:
        body = f"||{random_hostname(rng).rstrip('.')}^"
    elif roll < 0.75:
        body = "/" + rng.choice(_WORDS) + rng.choice(("/*", ".js", "_", "/"))
    else:
        body = rng.choice(_WORDS) + rng.choice(("banner", "pixel", "ad", "sync"))
    options = []
    if rng.random() < 0.3:
        options.append(rng.choice(("third-party", "~third-party")))
    if rng.random() < 0.3:
        prefix = "~" if rng.random() < 0.3 else ""
        options.append(prefix + rng.choice(_FILTER_OPTION_TYPES))
    if rng.random() < 0.15:
        entries = []
        for _ in range(rng.randint(1, 2)):
            prefix = "~" if rng.random() < 0.4 else ""
            entries.append(prefix + rng.choice(_PARTY_HOSTNAMES).split(".", 1)[-1])
        options.append("domain=" + "|".join(entries))
    if rng.random() < 0.10:
        body = "@@" + body
    if options:
        body += "$" + ",".join(options)
    return body


# ---------------------------------------------------------------------------
# Ground truth + probe texts
# ---------------------------------------------------------------------------


def scenario_ground_truth(seed: int) -> dict:
    """The identifier set (PiiType → values) the probe texts plant."""
    persona = generate_persona(_sub_rng(seed, "persona"))
    truth = persona.ground_truth()
    rng = _sub_rng(seed, "ids")
    truth[PiiType.UNIQUE_ID] = [
        "".join(rng.choice("0123456789abcdef") for _ in range(32)),
        "35" + "".join(rng.choice("0123456789") for _ in range(13)),
    ]
    truth[PiiType.DEVICE_INFO] = ["Nexus 5", "4.4.4"]
    return truth


def _mutate_value(rng: random.Random, value: str) -> str:
    """A near-miss: one character changed — must NOT match."""
    if not value:
        return "x"
    index = rng.randrange(len(value))
    old = value[index]
    alphabet = "0123456789" if old.isdigit() else "abcdefghijklmnopqrstuvwxyz"
    new = rng.choice([c for c in alphabet if c != old.lower()] or ["x"])
    return value[:index] + new + value[index + 1:]


def _random_texts(seed: int, count: int = 14) -> tuple:
    truth = scenario_ground_truth(seed)
    pairs = sorted(
        (pii_type.value, value)
        for pii_type, values in truth.items()
        for value in values
    )
    rng = _sub_rng(seed, "texts")
    texts = []
    for _ in range(count):
        tokens = []
        for _ in range(rng.randint(0, 3)):
            _, value = rng.choice(pairs)
            forms = variants(value)
            tokens.append(rng.choice(sorted(forms)) if forms else value)
        for _ in range(rng.randint(1, 4)):
            roll = rng.random()
            if roll < 0.35:
                tokens.append(rng.choice(_WORDS))
            elif roll < 0.55:
                tokens.append("".join(rng.choice("0123456789abcdef") for _ in range(rng.randint(8, 40))))
            elif roll < 0.70:
                tokens.append(str(rng.randrange(10 ** rng.randint(3, 12))))
            elif roll < 0.85:
                _, value = rng.choice(pairs)
                tokens.append(_mutate_value(rng, value))
            else:
                # Coordinate-shaped tokens straddling the GPS tolerance.
                base = rng.uniform(-90.0, 90.0)
                tokens.append(f"{base + rng.uniform(-0.05, 0.05):.6f}")
        rng.shuffle(tokens)
        style = rng.random()
        if style < 0.35:
            keys = [rng.choice(_WORDS) for _ in tokens]
            texts.append("&".join(f"{k}={v}" for k, v in zip(keys, tokens)))
        elif style < 0.60:
            texts.append(json.dumps(
                {f"{rng.choice(_WORDS)}{i}": token for i, token in enumerate(tokens)},
                sort_keys=True,
            ))
        elif style < 0.80:
            texts.append("; ".join(f"{rng.choice(_WORDS)}={v}" for v in tokens))
        else:
            texts.append(" ".join(tokens))
    return tuple(texts)


# ---------------------------------------------------------------------------
# Randomized service rows
# ---------------------------------------------------------------------------


def _random_codes(rng: random.Random, login: bool) -> str:
    pool = [c for c in _ALL_CODES if login or c not in _LOGIN_CODES]
    chosen = rng.sample(pool, rng.randint(0, min(5, len(pool))))
    out = []
    for code in chosen:
        roll = rng.random()
        if roll < 0.12:
            out.append(code + ":a")
        elif roll < 0.24:
            out.append(code + ":i")
        else:
            out.append(code)
    return ",".join(out)


def _random_service(rng: random.Random, index: int) -> dict:
    login = rng.random() < 0.6
    sdks = rng.sample(_APP_SDK_POOL, rng.randint(1, min(6, len(_APP_SDK_POOL))))
    trackers = rng.sample(_WEB_TRACKER_POOL, rng.randint(1, min(8, len(_WEB_TRACKER_POOL))))
    exchanges = rng.sample(_EXCHANGE_POOL, rng.randint(0, min(3, len(_EXCHANGE_POOL))))
    app_codes = _random_codes(rng, login)
    web_codes = _random_codes(rng, login)
    credential_routes = []
    if login and rng.random() < 0.3:
        medium = rng.choice(("app", "web"))
        pool = sdks if medium == "app" else trackers
        credential_routes.append((medium, rng.choice(("PW", "E")), rng.choice(pool)))
    present = sorted({
        token.partition(":")[0]
        for token in (app_codes + "," + web_codes).split(",")
        if token
    })
    plaintext = tuple(code for code in present if rng.random() < 0.15)
    permissions = [Permission.LOCATION, Permission.PHONE_STATE]
    if rng.random() < 0.2:
        permissions.append(Permission.CONTACTS)
    api_lo = rng.randint(1, 3)
    return {
        "name": f"QA Service {index}",
        "category": rng.choice(_CATEGORIES),
        "rank": index * 7 + rng.randrange(5) + 1,
        "domain": f"qasvc{index}.example",
        "extra_domains": (f"qasvc{index}cdn.example",) if rng.random() < 0.3 else (),
        "login": login,
        "ios_only": rng.random() < 0.1,
        "app_https": rng.random() < 0.85,
        "web_https": rng.random() < 0.85,
        "sdks": ",".join(sdks),
        "trackers": ",".join(trackers),
        "exchanges": ",".join(exchanges),
        "ad_slots": rng.randint(0, 4),
        "app_codes": app_codes,
        "web_codes": web_codes,
        "plaintext": plaintext,
        "credential_routes": tuple(credential_routes),
        "loc_fanout": "all" if rng.random() < 0.2 else "ads",
        "web_loc_fanout": rng.randint(0, 4),
        "web_beacon_rate": rng.randint(1, 3),
        "api_calls": (api_lo, api_lo + rng.randint(0, 3)),
        "permissions": tuple(permissions),
    }


def _row_from_dict(data: dict) -> CatalogRow:
    kwargs = dict(data)
    for key in ("extra_domains", "plaintext", "api_calls", "permissions"):
        if key in kwargs:
            kwargs[key] = tuple(kwargs[key])
    if "credential_routes" in kwargs:
        kwargs["credential_routes"] = tuple(tuple(route) for route in kwargs["credential_routes"])
    return CatalogRow(**kwargs)


def _jsonify(value):
    """Direct JSON-shape conversion (tuples -> lists), no text round-trip."""
    if isinstance(value, dict):
        return {key: _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    return value


# ---------------------------------------------------------------------------
# Scenario
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One reproducible fuzz case; JSON-serializable end to end."""

    seed: int
    study_seed: int
    duration: float
    train_recon: bool
    shard_counts: tuple
    services: tuple  # CatalogRow kwargs dicts
    texts: tuple
    urls: tuple  # (url, page_host, resource_type)
    filters: tuple
    hostnames: tuple
    fault_plan: dict = field(default=None)

    def build_specs(self) -> list:
        """Materialize the service rows into runnable ServiceSpecs."""
        return [_build_spec(_row_from_dict(row)) for row in self.services]

    def to_dict(self) -> dict:
        return _jsonify(asdict(self))

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        return cls(
            seed=int(data["seed"]),
            study_seed=int(data["study_seed"]),
            duration=float(data["duration"]),
            train_recon=bool(data["train_recon"]),
            shard_counts=tuple(int(n) for n in data["shard_counts"]),
            services=tuple(dict(row) for row in data["services"]),
            texts=tuple(data["texts"]),
            urls=tuple(tuple(probe) for probe in data["urls"]),
            filters=tuple(data["filters"]),
            hostnames=tuple(data["hostnames"]),
            fault_plan=dict(data["fault_plan"]) if data.get("fault_plan") else None,
        )

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


def generate_scenario(seed: int, faults: bool = False, max_services: int = 4) -> Scenario:
    """Derive a full scenario from one integer seed."""
    rng = _sub_rng(seed, "scenario")
    n_services = rng.randint(2, max(2, max_services))
    services = tuple(
        _random_service(_sub_rng(seed, "svc", index), index)
        for index in range(n_services)
    )
    qa_hosts = [f"www.qasvc{index}.example" for index in range(n_services)]

    url_rng = _sub_rng(seed, "urls")
    urls = tuple(
        (
            random_url(url_rng, hosts=tuple(_PARTY_HOSTNAMES) + tuple(qa_hosts)),
            url_rng.choice(tuple(qa_hosts) + ("news.example", "")),
            url_rng.choice(_RESOURCE_TYPES),
        )
        for _ in range(40)
    )

    filter_rng = _sub_rng(seed, "filters")
    filters = tuple(random_filter_line(filter_rng) for _ in range(30))

    host_rng = _sub_rng(seed, "hostnames")
    hostnames = tuple(random_hostname(host_rng) for _ in range(30))

    fault_plan = None
    if faults:
        from .faults import FaultPlan

        fault_plan = FaultPlan.from_rng(_sub_rng(seed, "faults")).to_dict()

    return Scenario(
        seed=seed,
        study_seed=rng.randrange(1, 1_000_000),
        duration=rng.choice((20.0, 30.0, 45.0)),
        train_recon=rng.random() < 0.25,
        shard_counts=(1, 2, 4),
        services=services,
        texts=_random_texts(seed),
        urls=urls,
        filters=filters,
        hostnames=hostnames,
        fault_plan=fault_plan,
    )
