"""Differential fuzzing & fault-injection harness.

The paper's headline numbers are produced by three execution paths
(batch :func:`~repro.core.pipeline.analyze_dataset`, the sharded
streaming pipeline, and the serving read path) plus fast/slow twins of
the PII matcher and the EasyList engine.  This package generates
randomized worlds from a single seed (:mod:`repro.qa.scenarios`), runs
every path over them and asserts byte-level equality
(:mod:`repro.qa.oracle`), injects deterministic faults — kills, torn
journal tails, transport chaos, exploding proxy addons — and checks the
documented recovery invariants (:mod:`repro.qa.faults`), and shrinks
failing seeds to small JSON reproducers (:mod:`repro.qa.shrink`).

Entry point: ``repro fuzz --seed N --rounds K --faults``.
"""

from .faults import ExplodingAddon, FaultPlan, tear_journal
from .oracle import Divergence, OracleReport, canonical_bytes, first_divergent_field, run_oracle
from .scenarios import (
    Scenario,
    generate_scenario,
    random_filter_line,
    random_hostname,
    random_url,
    scenario_ground_truth,
)
from .shrink import shrink, write_reproducer

__all__ = [
    "Divergence",
    "ExplodingAddon",
    "FaultPlan",
    "OracleReport",
    "Scenario",
    "canonical_bytes",
    "first_divergent_field",
    "generate_scenario",
    "random_filter_line",
    "random_hostname",
    "random_url",
    "run_oracle",
    "scenario_ground_truth",
    "shrink",
    "tear_journal",
    "write_reproducer",
]
