"""Deterministic fault plans and their recovery invariants.

A :class:`FaultPlan` is derived from the scenario seed, serializes to
JSON, and drives five chaos checks:

- **Kill + resume** (``kill_events``): abort the sharded streamer after
  N published events (no final snapshot), optionally tear the journal
  tail (clean cut, binary garbage, or mid-UTF-8), resume, and require
  the finalized study to equal the batch reference byte for byte.
- **Transport chaos** (``transport``): wrap every phone transport in a
  :class:`~repro.http.transport.FaultInjectingTransport` refusing,
  truncating, or stalling chosen connection ordinals.  The collected
  chaos dataset must analyze identically in batch and streaming — the
  oracle's equivalence must hold on degraded traffic too.
- **Addon chaos** (``addon_chaos``): register an addon whose callbacks
  raise.  The capture must complete, produce the *same* dataset as a
  fault-free run of the same seed, and the proxy must have recorded the
  addon failures in ``addon_errors`` instead of propagating them.
- **Serve snapshot** (``serve_check``): point a ``ResultStore`` at a
  streaming checkpoint, append torn half-written tails to the journal
  (including a mid-UTF-8 cut), force reloads, and require every served
  snapshot to stay byte-identical — serve never exposes a torn write.
- **Ingest faults** (``ingest_check``): a truncated upload body must be
  rejected atomically (no job directory, no journal line, no queue
  slot), a torn ingest job-journal tail must not stop recovery from
  requeuing parked jobs, and a worker crash mid-analysis must leave the
  job resumable — in every recovered case the replayed result bytes
  must equal the offline no-recon study's.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path

from ..core.pipeline import analyze_dataset
from ..experiment.runner import ExperimentRunner
from ..http.transport import FAULT_KINDS, FaultInjectingTransport
from ..serve.store import ResultStore
from ..services.world import build_world
from ..stream.analyzer import DatasetStreamer, stream_dataset
from ..stream.checkpoint import JOURNAL_NAME, FlowJournal

TORN_MODES = ("cut", "garbage", "utf8")

# Torn-tail payloads: a half-written JSON line, raw binary garbage, and
# a line ending mid-way through a multi-byte UTF-8 character.
_TORN_PARTIAL_JSON = b'{"seq": 9999999, "kind": "flow", "ses'
_TORN_GARBAGE = b'{"seq": 9999999, "kind": "flow"\xff\xfe\x00'
_TORN_UTF8 = '{"seq": 9999999, "note": "caf'.encode("utf-8") + "é".encode("utf-8")[:1]


@dataclass(frozen=True)
class FaultPlan:
    """JSON-serializable description of one scenario's injected faults."""

    kill_events: tuple = ()
    torn_tail: str = ""  # "", or one of TORN_MODES
    torn_bytes: int = 7  # cut size for mode "cut"
    transport: tuple = ()  # ((connection ordinal, fault kind), ...)
    stall_seconds: float = 30.0
    addon_chaos: bool = True
    addon_every: int = 3
    serve_check: bool = True
    ingest_check: bool = True
    campaign_check: bool = True

    @classmethod
    def from_rng(cls, rng) -> "FaultPlan":
        ordinals = {}
        for _ in range(rng.randint(1, 4)):
            ordinals[rng.randrange(0, 60)] = rng.choice(FAULT_KINDS)
        # New fields draw *after* every existing one so plans derived
        # from old seeds keep their original values.
        return cls(
            kill_events=tuple(sorted(rng.sample(range(3, 300), rng.randint(1, 2)))),
            torn_tail=rng.choice(("",) + TORN_MODES),
            torn_bytes=rng.randint(1, 40),
            transport=tuple(sorted(ordinals.items())),
            stall_seconds=float(rng.choice((15, 30, 60))),
            addon_chaos=rng.random() < 0.8,
            addon_every=rng.randint(2, 5),
            serve_check=rng.random() < 0.8,
            ingest_check=rng.random() < 0.8,
            campaign_check=rng.random() < 0.8,
        )

    def to_dict(self) -> dict:
        return json.loads(json.dumps(asdict(self)))

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            kill_events=tuple(int(n) for n in data.get("kill_events", ())),
            torn_tail=str(data.get("torn_tail", "")),
            torn_bytes=int(data.get("torn_bytes", 7)),
            transport=tuple(
                (int(ordinal), str(kind)) for ordinal, kind in data.get("transport", ())
            ),
            stall_seconds=float(data.get("stall_seconds", 30.0)),
            addon_chaos=bool(data.get("addon_chaos", True)),
            addon_every=int(data.get("addon_every", 3)),
            serve_check=bool(data.get("serve_check", True)),
            ingest_check=bool(data.get("ingest_check", True)),
            campaign_check=bool(data.get("campaign_check", True)),
        )


def tear_journal(path, mode: str, amount: int = 7) -> None:
    """Corrupt a journal's tail the way a crash would."""
    path = Path(path)
    data = path.read_bytes()
    if mode == "cut":
        cut = max(1, min(amount, max(1, len(data) - 1)))
        path.write_bytes(data[:-cut])
    elif mode == "garbage":
        path.write_bytes(data + _TORN_GARBAGE)
    elif mode == "utf8":
        path.write_bytes(data + _TORN_UTF8)
    else:
        raise ValueError(f"unknown torn-tail mode {mode!r}")


class ExplodingAddon:
    """A proxy addon whose callbacks raise every ``every``-th invocation."""

    def __init__(self, every: int = 3) -> None:
        self.every = max(1, every)
        self.calls = 0

    def _maybe_explode(self, label: str) -> None:
        self.calls += 1
        if self.calls % self.every == 0:
            raise RuntimeError(f"exploding addon: {label} #{self.calls}")

    def tcp_connect(self, flow) -> None:
        self._maybe_explode("tcp_connect")

    def rewrite_request(self, flow, request):
        # A rewrite callback that raises must be isolated by the
        # transactional rewrite stage; when it survives, it rewrites
        # nothing.
        self._maybe_explode("rewrite_request")
        return None

    def request(self, flow, request) -> None:
        self._maybe_explode("request")

    def response(self, flow, request, response) -> None:
        self._maybe_explode("response")

    def capture_stop(self, trace) -> None:
        self._maybe_explode("capture_stop")


def _divergence(component, path, expected, actual):
    from .oracle import Divergence, first_divergent_field

    if isinstance(expected, bytes) and isinstance(actual, bytes):
        where, want, got = first_divergent_field(expected, actual)
        return Divergence(component, f"{path}:{where}", want, got)
    return Divergence(component, path, str(expected), str(actual))


def check_kill_resume(scenario, specs, dataset, expected, plan, mutate):
    """Abort mid-stream (optionally tearing the journal), resume, compare."""
    from .oracle import canonical_bytes

    out = []
    for kill in plan.kill_events:
        with tempfile.TemporaryDirectory(prefix="repro-qa-ckpt-") as tmp:
            first = DatasetStreamer(
                dataset, specs, shards=2, checkpoint_dir=tmp, checkpoint_every=16
            )
            first.run(limit=kill)
            first.analyzer.abort()
            journal_path = Path(tmp) / JOURNAL_NAME
            if plan.torn_tail:
                tear_journal(journal_path, plan.torn_tail, plan.torn_bytes)
                # Recovery must drop the torn tail, leaving only
                # complete, parseable lines behind.
                probe = FlowJournal(journal_path, resume=True)
                probe.close()
                for line in journal_path.read_bytes().splitlines():
                    try:
                        json.loads(line.decode("utf-8"))
                    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                        out.append(
                            _divergence(
                                f"kill-resume[{kill}:{plan.torn_tail}]",
                                "journal line after recovery",
                                "parseable JSON",
                                repr(exc),
                            )
                        )
                        break
            resumed = DatasetStreamer(
                dataset,
                specs,
                shards=2,
                checkpoint_dir=tmp,
                checkpoint_every=16,
                resume=True,
            )
            resumed.run()
            study = mutate("stream", resumed.finalize(train_recon=scenario.train_recon))
            actual = canonical_bytes(study)
            if actual != expected:
                out.append(
                    _divergence(
                        f"kill-resume[{kill}:{plan.torn_tail or 'clean'}]",
                        "study",
                        expected,
                        actual,
                    )
                )
    return out


def check_transport_chaos(scenario, specs, plan, mutate):
    """Collect under transport faults; batch and stream must still agree."""
    from .oracle import canonical_bytes

    world = build_world(specs)
    runner = ExperimentRunner(world, seed=scenario.study_seed)
    fault_map = {int(ordinal): kind for ordinal, kind in plan.transport}
    counter = [0]

    def wrapper(transport):
        return FaultInjectingTransport(
            transport,
            fault_map,
            clock=world.clock,
            stall_seconds=plan.stall_seconds,
            counter=counter,
        )

    def install_faults(phone):
        phone.transport_wrapper = wrapper

    chaos_dataset = runner.run_study(
        specs, duration=scenario.duration, phone_setup=install_faults
    )
    batch = analyze_dataset(chaos_dataset, specs, train_recon=False, workers=1)
    expected = canonical_bytes(batch)
    streamed = mutate(
        "stream", stream_dataset(chaos_dataset, specs, shards=2, train_recon=False)
    )
    actual = canonical_bytes(streamed)
    out = []
    if actual != expected:
        out.append(_divergence("transport-chaos[stream]", "study", expected, actual))
    return out, {"transport_faults_hit": sum(1 for o in fault_map if o < counter[0])}


def check_addon_chaos(scenario, specs, expected, plan, mutate):
    """A raising addon must not change results, and must be recorded."""
    from .oracle import canonical_bytes

    world = build_world(specs)
    world.proxy.add_addon(ExplodingAddon(every=plan.addon_every))
    runner = ExperimentRunner(world, seed=scenario.study_seed)
    dataset = runner.run_study(specs, duration=scenario.duration)
    study = mutate(
        "addon",
        analyze_dataset(dataset, specs, train_recon=scenario.train_recon, workers=1),
    )
    out = []
    actual = canonical_bytes(study)
    if actual != expected:
        out.append(_divergence("addon-chaos[study]", "study", expected, actual))
    if not world.proxy.addon_errors:
        out.append(
            _divergence(
                "addon-chaos[errors]", "proxy.addon_errors", "non-empty", "empty"
            )
        )
    return out, {"addon_errors": len(world.proxy.addon_errors)}


def check_mitigation_chaos(scenario, specs, plan, mutate):
    """A raising rewrite stage must not corrupt mitigated collection.

    Two mitigated collections of the same seed — one clean, one with an
    exploding addon whose ``rewrite_request`` raises every Nth call —
    must analyze byte-identically, and the proxy must have logged the
    rewrite failures instead of letting them touch a flow.
    """
    from ..mitigate.policy import default_policy
    from .oracle import canonical_bytes

    policy = default_policy()

    def collect(chaos: bool):
        world = build_world(specs)
        if chaos:
            world.proxy.add_addon(ExplodingAddon(every=plan.addon_every))
        runner = ExperimentRunner(world, seed=scenario.study_seed)
        dataset = runner.run_study(
            specs, duration=scenario.duration, mitigation=policy
        )
        return dataset, world.proxy

    clean_dataset, _ = collect(chaos=False)
    expected = canonical_bytes(
        analyze_dataset(clean_dataset, specs, train_recon=False, workers=1)
    )
    chaos_dataset, proxy = collect(chaos=True)
    study = mutate(
        "mitigate",
        analyze_dataset(chaos_dataset, specs, train_recon=False, workers=1),
    )
    out = []
    actual = canonical_bytes(study)
    if actual != expected:
        out.append(_divergence("mitigate-chaos[study]", "study", expected, actual))
    rewrite_errors = [
        entry for entry in proxy.addon_errors if entry[0] == "rewrite_request"
    ]
    if not rewrite_errors:
        out.append(
            _divergence(
                "mitigate-chaos[errors]",
                "rewrite_request addon_errors",
                "non-empty",
                "empty",
            )
        )
    return out, {"rewrite_errors": len(rewrite_errors)}


def check_serve_snapshot(scenario, specs, dataset, mutate):
    """Serve must never expose a half-written journal append."""
    from .oracle import canonical_bytes

    reference = analyze_dataset(dataset, specs, train_recon=False, workers=1)
    expected = canonical_bytes(reference)
    out = []
    with tempfile.TemporaryDirectory(prefix="repro-qa-serve-") as tmp:
        streamer = DatasetStreamer(dataset, specs, shards=1, checkpoint_dir=tmp)
        streamer.run()
        streamer.finalize(train_recon=False)
        store = ResultStore(tmp, services=specs, train_recon=False, check_interval=0.0)

        def served() -> bytes:
            return canonical_bytes(mutate("serve", store.snapshot.study))

        if served() != expected:
            out.append(_divergence("serve[load]", "snapshot", expected, served()))

        journal_path = Path(tmp) / JOURNAL_NAME
        original = journal_path.read_bytes()
        for label, tail in (
            ("torn-append", _TORN_PARTIAL_JSON),
            ("torn-utf8", _TORN_UTF8),
        ):
            with journal_path.open("ab") as handle:
                handle.write(tail)
            store.maybe_reload()
            if served() != expected:
                out.append(_divergence(f"serve[{label}]", "snapshot", expected, served()))
            journal_path.write_bytes(original)
        store.maybe_reload()
        if served() != expected:
            out.append(_divergence("serve[restore]", "snapshot", expected, served()))
    return out


def check_ingest_faults(scenario, specs, dataset, plan, mutate):
    """Uploads fail atomically; parked and crashed jobs resume identically.

    Three invariants for the ingest data plane:

    - a truncated upload body is rejected with ``CodecError`` and leaves
      *nothing* behind — no job directory, no journal line, no queue slot;
    - a torn job-journal tail (crash mid-append) must not stop recovery
      from requeuing the job, and the replayed result must match the
      offline no-recon study byte for byte;
    - a worker crash mid-analysis leaves the job resumable: a fresh
      service picks it up, skips the records already on disk, and still
      produces the identical result bytes.
    """
    from ..ingest import IngestService, WorkerCrash, job_result_payload
    from ..net import codec
    from ..net.codec import CodecError
    from ..serve.app import canonical_json

    out = []
    records = list(dataset)
    if not records:
        return out
    body = codec.frame(codec.KIND_BUNDLE, codec.encode_bundle(records))
    offline = analyze_dataset(dataset, specs, train_recon=False, workers=1)

    def expected_result(job) -> bytes:
        payload = job_result_payload(
            job.job_id, job.etag, len(records), mutate("ingest", offline)
        )
        return canonical_json(payload) + b"\n"

    # Truncated upload body: rejected, and rejected *atomically*.
    with tempfile.TemporaryDirectory(prefix="repro-qa-ingest-") as tmp:
        service = IngestService(tmp, executor="serial", specs=specs)
        cut = max(1, min(plan.torn_bytes, len(body) - len(codec.MAGIC) - 2))
        try:
            service.submit(body[:-cut], tenant="chaos")
            out.append(
                _divergence(
                    "ingest-faults[truncated]", "submit", "CodecError", "accepted"
                )
            )
        except CodecError:
            pass
        jobs_dir = Path(tmp) / "jobs"
        leftovers = sorted(p.name for p in jobs_dir.iterdir()) if jobs_dir.exists() else []
        if leftovers:
            out.append(
                _divergence(
                    "ingest-faults[truncated]", "jobs dir", "empty", repr(leftovers)
                )
            )
        if service.queue.pending():
            out.append(
                _divergence(
                    "ingest-faults[truncated]",
                    "queue",
                    "empty",
                    f"{service.queue.pending()} pending",
                )
            )

    # Torn job-journal tail: recovery requeues, replay is byte-identical.
    with tempfile.TemporaryDirectory(prefix="repro-qa-ingest-") as tmp:
        service = IngestService(tmp, executor="serial", specs=specs)
        job = service.submit(body, tenant="chaos")
        tear_journal(
            Path(tmp) / "journal.jsonl", plan.torn_tail or "garbage", plan.torn_bytes
        )
        resumed = IngestService(tmp, executor="serial", specs=specs)
        resumed.run_pending()
        actual = resumed.store.result_bytes(job.job_id) or b'"<missing>"'
        if actual != expected_result(job):
            out.append(
                _divergence(
                    "ingest-faults[torn-journal]",
                    "result",
                    expected_result(job),
                    actual,
                )
            )

    # Worker crash mid-analysis: partial results survive, resume finishes.
    with tempfile.TemporaryDirectory(prefix="repro-qa-ingest-") as tmp:
        service = IngestService(tmp, executor="serial", specs=specs)
        job = service.submit(body, tenant="chaos")
        service.crash_after = 1
        try:
            service.run_pending()
            out.append(
                _divergence(
                    "ingest-faults[crash]", "run_pending", "WorkerCrash", "completed"
                )
            )
        except WorkerCrash:
            pass
        resumed = IngestService(tmp, executor="serial", specs=specs)
        resumed.run_pending()
        actual = resumed.store.result_bytes(job.job_id) or b'"<missing>"'
        if actual != expected_result(job):
            out.append(
                _divergence(
                    "ingest-faults[crash]", "result", expected_result(job), actual
                )
            )
    return out


def check_campaign_resume(scenario, specs, mutate):
    """Kill a checkpointed campaign mid-run, resume, compare bytes.

    A small population is driven with the ``abort_after_users`` chaos
    hook (the deterministic stand-in for kill -9) under a tight
    checkpoint interval; the resumed run re-plans only the remaining
    user range, so its shard boundaries differ from the uninterrupted
    reference — which is exactly what the merge algebra must absorb.
    """
    from ..campaign import CampaignAborted, PopulationSpec, run_campaign

    population = 6
    pop_spec = PopulationSpec(
        services_per_user=(1, 2),
        sessions_per_service=(1, 1),
        session_duration=scenario.duration,
        bootstrap_replicates=10,
    )
    kwargs = dict(
        seed=scenario.study_seed,
        population_spec=pop_spec,
        services=specs,
        executor="serial",
        agg="columnar",
    )
    expected = run_campaign(population, shards=3, **kwargs).canonical_bytes()
    out = []
    with tempfile.TemporaryDirectory(prefix="repro-qa-campaign-") as ckpt:
        try:
            run_campaign(
                population,
                shards=3,
                checkpoint_dir=ckpt,
                checkpoint_every=2,
                abort_after_users=3,
                **kwargs,
            )
            out.append(
                _divergence(
                    "campaign[kill]", "abort", "CampaignAborted", "completed"
                )
            )
        except CampaignAborted:
            pass
        resumed = run_campaign(
            population, checkpoint_dir=ckpt, resume=True, **kwargs
        )
        actual = mutate("campaign", resumed).canonical_bytes()
        if actual != expected:
            out.append(_divergence("campaign[kill+resume]", "aggregate", expected, actual))
    return out


def run_fault_checks(scenario, specs, dataset, expected, mutators=None):
    """Run every check the scenario's fault plan enables."""
    mutators = dict(mutators or {})

    def mutate(name, value):
        fn = mutators.get(name)
        return fn(value) if fn else value

    plan = FaultPlan.from_dict(scenario.fault_plan)
    divergences = []
    stats = {"fault_checks": 0}

    divergences.extend(
        check_kill_resume(scenario, specs, dataset, expected, plan, mutate)
    )
    stats["fault_checks"] += len(plan.kill_events)

    if plan.transport:
        found, chaos_stats = check_transport_chaos(scenario, specs, plan, mutate)
        divergences.extend(found)
        stats.update(chaos_stats)
        stats["fault_checks"] += 1

    if plan.addon_chaos:
        found, addon_stats = check_addon_chaos(scenario, specs, expected, plan, mutate)
        divergences.extend(found)
        stats.update(addon_stats)
        stats["fault_checks"] += 1

        found, rewrite_stats = check_mitigation_chaos(scenario, specs, plan, mutate)
        divergences.extend(found)
        stats.update(rewrite_stats)
        stats["fault_checks"] += 1

    if plan.serve_check:
        divergences.extend(check_serve_snapshot(scenario, specs, dataset, mutate))
        stats["fault_checks"] += 1

    if plan.ingest_check:
        divergences.extend(check_ingest_faults(scenario, specs, dataset, plan, mutate))
        stats["fault_checks"] += 3

    if plan.campaign_check:
        divergences.extend(check_campaign_resume(scenario, specs, mutate))
        stats["fault_checks"] += 1

    return divergences, stats
