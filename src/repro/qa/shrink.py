"""Greedy scenario shrinker.

Given a failing scenario and a predicate ("does this still fail?"),
repeatedly try structure-preserving reductions — drop a service, halve
the probe vocabularies, drop fault classes, disable ReCon training,
shrink the shard matrix, shorten the session — keeping each reduction
only if the failure survives.  The result is written as a JSON
reproducer replayable with ``repro fuzz --replay FILE``.

Everything here is deterministic: reductions are tried in a fixed
order, so the same failing seed always shrinks to the same reproducer.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

from .scenarios import Scenario


def _halve(items: tuple) -> tuple:
    return tuple(items[: max(1, len(items) // 2)])


def _reductions(scenario: Scenario):
    """Yield candidate reduced scenarios, most aggressive first."""
    # Drop one service at a time (keep at least one).
    if len(scenario.services) > 1:
        for index in range(len(scenario.services)):
            kept = tuple(
                row for i, row in enumerate(scenario.services) if i != index
            )
            yield replace(scenario, services=kept)
    # Shrink the differential-probe vocabularies.
    if len(scenario.texts) > 1:
        yield replace(scenario, texts=_halve(scenario.texts))
    if len(scenario.urls) > 1:
        yield replace(scenario, urls=_halve(scenario.urls))
    if len(scenario.filters) > 1:
        yield replace(scenario, filters=_halve(scenario.filters))
    if len(scenario.hostnames) > 1:
        yield replace(scenario, hostnames=_halve(scenario.hostnames))
    # Shrink the execution matrix.
    if len(scenario.shard_counts) > 1:
        yield replace(scenario, shard_counts=(scenario.shard_counts[0],))
    if scenario.train_recon:
        yield replace(scenario, train_recon=False)
    if scenario.duration > 10.0:
        yield replace(scenario, duration=max(10.0, scenario.duration / 2))
    # Drop fault classes one at a time.
    plan = scenario.fault_plan or {}
    if plan:
        if len(plan.get("kill_events", ())) > 1:
            yield replace(
                scenario,
                fault_plan={**plan, "kill_events": list(plan["kill_events"])[:1]},
            )
        if plan.get("torn_tail"):
            yield replace(scenario, fault_plan={**plan, "torn_tail": ""})
        if plan.get("transport"):
            yield replace(scenario, fault_plan={**plan, "transport": []})
        if plan.get("addon_chaos"):
            yield replace(scenario, fault_plan={**plan, "addon_chaos": False})
        if plan.get("serve_check"):
            yield replace(scenario, fault_plan={**plan, "serve_check": False})
        yield replace(scenario, fault_plan=None)


def shrink(scenario: Scenario, is_failing, max_steps: int = 40) -> Scenario:
    """Greedily minimize ``scenario`` while ``is_failing`` stays true.

    ``is_failing`` receives a candidate :class:`Scenario` and returns
    whether the original failure still reproduces.  ``max_steps`` bounds
    the number of predicate evaluations (each one is a full oracle run).
    """
    current = scenario
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for candidate in _reductions(current):
            steps += 1
            if is_failing(candidate):
                current = candidate
                improved = True
                break
            if steps >= max_steps:
                break
    return current


def write_reproducer(scenario: Scenario, report, path) -> Path:
    """Write a replayable JSON reproducer for one failure."""
    path = Path(path)
    payload = {
        "scenario": scenario.to_dict(),
        "report": report.to_dict() if report is not None else None,
        "replay": f"repro fuzz --replay {path.name}",
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
