"""Population model: who the simulated users are.

The paper's study is one scripted tester driving every cell; a
*campaign* scales that to a population of N simulated users, each with
their own :class:`~repro.device.persona.Persona`, OS, service mix,
usage intensity, app-vs-web preference, and permission-grant behaviour.

Everything is a pure function of ``(PopulationSpec, services, seed,
user_id)``: the sampler derives one sub-RNG per (component, user) from
sha256 labels — the same pattern as :mod:`repro.qa.scenarios` — so the
persona stream is identical across processes and PYTHONHASHSEED values,
and any shard split of the user-id range reproduces exactly the same
users.  That structural determinism is what makes campaign aggregates
invariant under shard count, worker count, and merge order.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Sequence, Union

from ..analysis.stats import poisson_weights
from ..device.persona import Persona, generate_persona
from ..device.phone import ANDROID, IOS, Permission
from ..ioutil import atomic_write_json

#: Canonical OS iteration order (matches the paper's tables).
OS_ORDER = (ANDROID, IOS)

#: Canonical medium iteration order.
MEDIUM_ORDER = ("app", "web")


class PopulationError(Exception):
    """Raised on invalid population specifications."""


def _check_fraction(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise PopulationError(f"{name} must be in [0, 1]: {value}")


def _check_range(name: str, pair: Sequence) -> tuple:
    lo, hi = pair
    if lo > hi or lo < 0:
        raise PopulationError(f"{name} must be a (lo, hi) pair with 0 <= lo <= hi: {pair}")
    return (lo, hi)


@dataclass(frozen=True)
class PopulationSpec:
    """Distributions a persona population is drawn from.

    The calibrated default approximates the paper-era US smartphone
    market: slight Android majority, users who lean app-first (comScore
    2015-style mobile minutes), a service mix dominated by shopping /
    travel / entertainment, and permission prompts that are *usually*
    but not always approved (unlike the methodology's always-approve
    tester).
    """

    #: OS market share; keys must be known OS names, weights positive.
    os_share: dict = field(
        default_factory=lambda: {ANDROID: 0.55, IOS: 0.45}
    )
    #: Probability a user is app-first (vs mobile-web-first).
    app_preference: float = 0.62
    #: How strongly a session sticks to the user's preferred medium.
    preference_strength: float = 0.85
    #: Relative draw weight per service category (unlisted: 1.0).
    category_weights: dict = field(
        default_factory=lambda: {
            "Shopping": 1.6,
            "Travel": 1.2,
            "Entertainment": 1.4,
            "Social": 1.8,
            "News": 1.3,
            "Weather": 1.5,
            "Music": 1.2,
            "Lifestyle": 1.0,
            "Education": 0.6,
            "Business": 0.5,
        }
    )
    #: How many distinct services a user touches (inclusive range).
    services_per_user: tuple = (2, 6)
    #: Sessions per chosen service (inclusive range).
    sessions_per_service: tuple = (1, 2)
    #: Base simulated session length (seconds) before intensity scaling.
    session_duration: float = 45.0
    #: Per-user usage-intensity multiplier range applied to durations.
    intensity_range: tuple = (0.5, 1.5)
    #: Probability a user approves each runtime permission prompt.
    permission_grant_rates: dict = field(
        default_factory=lambda: {
            Permission.LOCATION: 0.80,
            Permission.PHONE_STATE: 0.70,
            Permission.CONTACTS: 0.45,
            Permission.STORAGE: 0.90,
        }
    )
    #: Poisson(1) bootstrap replicates carried by campaign aggregates.
    bootstrap_replicates: int = 50

    def __post_init__(self) -> None:
        if not self.os_share:
            raise PopulationError("os_share must not be empty")
        for os_name, weight in self.os_share.items():
            if os_name not in OS_ORDER:
                raise PopulationError(f"unknown OS {os_name!r} in os_share")
            if weight < 0:
                raise PopulationError(f"negative os_share for {os_name!r}: {weight}")
        if not any(self.os_share.values()):
            raise PopulationError("os_share weights sum to zero")
        _check_fraction("app_preference", self.app_preference)
        _check_fraction("preference_strength", self.preference_strength)
        object.__setattr__(
            self, "services_per_user", _check_range("services_per_user", self.services_per_user)
        )
        object.__setattr__(
            self,
            "sessions_per_service",
            _check_range("sessions_per_service", self.sessions_per_service),
        )
        if self.services_per_user[0] < 1:
            raise PopulationError("services_per_user minimum must be >= 1")
        if self.sessions_per_service[0] < 1:
            raise PopulationError("sessions_per_service minimum must be >= 1")
        if self.session_duration <= 0:
            raise PopulationError(f"session_duration must be positive: {self.session_duration}")
        lo, hi = self.intensity_range
        if lo <= 0 or lo > hi:
            raise PopulationError(f"intensity_range must satisfy 0 < lo <= hi: {self.intensity_range}")
        for permission, rate in self.permission_grant_rates.items():
            if permission not in Permission.ALL:
                raise PopulationError(f"unknown permission {permission!r} in grant rates")
            _check_fraction(f"grant rate for {permission!r}", rate)
        if self.bootstrap_replicates < 1:
            raise PopulationError(
                f"bootstrap_replicates must be >= 1: {self.bootstrap_replicates}"
            )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "os_share": dict(sorted(self.os_share.items())),
            "app_preference": self.app_preference,
            "preference_strength": self.preference_strength,
            "category_weights": dict(sorted(self.category_weights.items())),
            "services_per_user": list(self.services_per_user),
            "sessions_per_service": list(self.sessions_per_service),
            "session_duration": self.session_duration,
            "intensity_range": list(self.intensity_range),
            "permission_grant_rates": dict(sorted(self.permission_grant_rates.items())),
            "bootstrap_replicates": self.bootstrap_replicates,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PopulationSpec":
        known = {
            "os_share",
            "app_preference",
            "preference_strength",
            "category_weights",
            "services_per_user",
            "sessions_per_service",
            "session_duration",
            "intensity_range",
            "permission_grant_rates",
            "bootstrap_replicates",
        }
        unknown = set(data) - known
        if unknown:
            raise PopulationError(f"unknown PopulationSpec fields: {sorted(unknown)}")
        kwargs = dict(data)
        for key in ("services_per_user", "sessions_per_service", "intensity_range"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)

    def save(self, path: Union[str, Path]) -> None:
        atomic_write_json(path, self.to_dict())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PopulationSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


@dataclass(frozen=True)
class SessionPlan:
    """One planned session of one user (a study cell plus a duration)."""

    service: str
    os_name: str
    medium: str
    duration: float
    seq: int  # per-user session index, for labelling/seeding


@dataclass(frozen=True)
class UserPersona:
    """One sampled member of the population.

    ``persona`` carries the searchable PII identity (name, email,
    coordinates, …); ``plans`` is the user's deterministic session
    schedule; ``grants`` the set of permissions this user approves when
    prompted.
    """

    user_id: int
    persona: Persona
    os_name: str
    prefers_app: bool
    intensity: float
    services: tuple
    plans: tuple
    grants: frozenset

    @property
    def preferred_medium(self) -> str:
        return "app" if self.prefers_app else "web"

    def cohort(self, dims: Sequence) -> str:
        """Cohort label along the given dimensions (sorted, stable)."""
        parts = []
        for dim in dims:
            if dim == "os":
                parts.append(self.os_name)
            elif dim == "medium":
                parts.append(f"{self.preferred_medium}-first")
            elif dim == "intensity":
                parts.append("heavy" if self.intensity >= 1.0 else "light")
            else:
                raise PopulationError(f"unknown cohort dimension {dim!r}")
        return "/".join(parts) if parts else "all"


def _weighted_choice(rng: random.Random, items: Sequence, weights: Sequence):
    total = sum(weights)
    if total <= 0:
        return items[rng.randrange(len(items))]
    point = rng.random() * total
    acc = 0.0
    for item, weight in zip(items, weights):
        acc += weight
        if point < acc:
            return item
    return items[-1]


class PersonaSampler:
    """Draws :class:`UserPersona` streams from a :class:`PopulationSpec`.

    ``user(i)`` is a pure function of ``(spec, services, seed, i)``:
    every random decision uses a sub-RNG derived from a sha256 label
    naming the component and the user id, so streams for different
    components are independent and the whole sampler is reproducible
    across processes and hash seeds.
    """

    def __init__(self, spec: PopulationSpec, services: Sequence, seed: int) -> None:
        if not services:
            raise PopulationError("PersonaSampler needs at least one service")
        self.spec = spec
        self.seed = int(seed)
        # Catalog order is the canonical service order for the campaign.
        self.services = list(services)
        self._by_os = {
            os_name: [s for s in self.services if os_name in s.oses]
            for os_name in OS_ORDER
        }
        for os_name, weight in sorted(spec.os_share.items()):
            if weight > 0 and not self._by_os[os_name]:
                raise PopulationError(f"no services support OS {os_name!r}")

    def _rng(self, *parts) -> random.Random:
        text = "|".join(["campaign", str(self.seed)] + [str(p) for p in parts])
        digest = hashlib.sha256(text.encode("utf-8")).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    # -- per-user draws ------------------------------------------------------

    def user(self, user_id: int) -> UserPersona:
        spec = self.spec
        persona = generate_persona(self._rng("persona", user_id))
        rng = self._rng("mix", user_id)

        os_names = sorted(spec.os_share)
        os_name = _weighted_choice(
            rng, os_names, [spec.os_share[name] for name in os_names]
        )
        prefers_app = rng.random() < spec.app_preference
        intensity = rng.uniform(*spec.intensity_range)

        pool = list(self._by_os[os_name])
        lo, hi = spec.services_per_user
        count = min(rng.randint(lo, hi), len(pool))
        chosen = []
        for _ in range(count):
            weights = [
                spec.category_weights.get(s.category, 1.0) for s in pool
            ]
            pick = _weighted_choice(rng, pool, weights)
            chosen.append(pick)
            pool.remove(pick)

        plans = []
        seq = 0
        stick = spec.preference_strength
        for service in chosen:
            sessions = rng.randint(*spec.sessions_per_service)
            for _ in range(sessions):
                preferred = rng.random() < stick
                if prefers_app:
                    medium = "app" if preferred else "web"
                else:
                    medium = "web" if preferred else "app"
                duration = round(spec.session_duration * intensity, 1)
                plans.append(
                    SessionPlan(
                        service=service.slug,
                        os_name=os_name,
                        medium=medium,
                        duration=duration,
                        seq=seq,
                    )
                )
                seq += 1

        grant_rng = self._rng("grants", user_id)
        grants = frozenset(
            permission
            for permission, rate in sorted(spec.permission_grant_rates.items())
            if grant_rng.random() < rate
        )

        return UserPersona(
            user_id=user_id,
            persona=persona,
            os_name=os_name,
            prefers_app=prefers_app,
            intensity=intensity,
            services=tuple(s.slug for s in chosen),
            plans=tuple(plans),
            grants=grants,
        )

    def iter_users(self, start: int, stop: int) -> Iterator:
        """Users ``start`` (inclusive) to ``stop`` (exclusive), lazily."""
        for user_id in range(start, stop):
            yield self.user(user_id)

    def bootstrap_weights(self, user_id: int) -> list:
        """The user's fixed Poisson(1) bootstrap weight vector.

        Keyed by user id only — never by shard or arrival order — so
        shard-local bootstrap accumulators merge into exactly the
        resampling a single-pass run would produce.
        """
        return poisson_weights(
            self._rng("boot", user_id), self.spec.bootstrap_replicates
        )

    # -- cell geometry -------------------------------------------------------

    def service_order(self, slug: str) -> int:
        """Canonical index of a service in the campaign's catalog order."""
        for index, service in enumerate(self.services):
            if service.slug == slug:
                return index
        raise PopulationError(f"unknown service {slug!r}")


def cell_order(service_index: int, os_name: str, medium: str) -> int:
    """Canonical presentation order of a study cell.

    A pure function of the cell key — unlike the row-wise study's
    insertion counter — so the same cell gets the same order in every
    shard and ``CellAggregate.merge``'s ``min(order)`` is a no-op.
    """
    return (
        service_index * (len(OS_ORDER) * len(MEDIUM_ORDER))
        + OS_ORDER.index(os_name) * len(MEDIUM_ORDER)
        + MEDIUM_ORDER.index(medium)
    )


def parse_cohort_dims(text: Optional[str]) -> tuple:
    """Parse a ``--cohorts`` value (``os,medium``; ``none`` = one cohort)."""
    if not text or text == "none":
        return ()
    dims = tuple(part.strip() for part in text.split(",") if part.strip())
    for dim in dims:
        if dim not in ("os", "medium", "intensity"):
            raise PopulationError(
                f"unknown cohort dimension {dim!r} (choose from os, medium, intensity)"
            )
    return dims
