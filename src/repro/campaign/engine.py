"""The campaign engine: populations of users as mergeable cohorts.

A *campaign* simulates N users drawn by :class:`PersonaSampler`,
executes every planned session through the existing scripted
:class:`~repro.experiment.runner.ExperimentRunner`, analyzes each with
the unchanged detection pipeline, and folds the results straight into
mergeable partial aggregates — the population never materializes:

- the user-id range is planned into contiguous *shards* (a pure
  function of N, never of the worker count);
- each shard reduces to a :class:`CampaignAggregate` — per-cohort
  :class:`CohortAggregate` partials holding a columnar
  :class:`~repro.analysis.columnar.StudyAggregate`, per-user
  :class:`~repro.analysis.stats.Moments`, user-leak counters for Wilson
  intervals, and Poisson-bootstrap sums keyed by user id;
- shard partials stream back through :meth:`repro.par.Executor.map_sessions`
  and merge associatively, so any shard count, worker count, or merge
  order yields identical canonical bytes (pinned in the QA oracle).

Every user is a pure function of ``(PopulationSpec, services, seed,
user_id)``: each session gets a fresh single-service world and a
runner seeded from the user id, which is what makes the shard geometry
invisible to the results.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from collections import deque
from pathlib import Path
from typing import Iterable, Optional, Sequence

from ..ioutil import atomic_write_json

from ..analysis.columnar import (
    AGG_AUTO,
    CellAggregate,
    ServiceMeta,
    StudyAggregate,
    aggregate_blob,
    encode_cells,
    resolve_agg,
)
from ..analysis.stats import BootstrapSums, Moments, wilson_interval
from ..core.pipeline import analyze_session
from ..experiment.runner import ExperimentRunner
from ..experiment.scripts import persona_script
from ..services.world import build_world
from .population import (
    PersonaSampler,
    PopulationSpec,
    UserPersona,
    cell_order,
    parse_cohort_dims,
)

#: Per-user metrics the cohort aggregates keep Moments + bootstrap for.
USER_METRIC_KEYS = ("sessions", "flows_total", "aa_flows", "aa_bytes", "leak_events")

#: Target users per shard; the shard plan is a pure function of N only.
SHARD_TARGET_USERS = 256

#: Reduction topologies: ``master`` is the serial reference fold,
#: ``worker`` pushes the fold into the pool workers, ``auto`` picks
#: worker whenever a parallel backend is in play.
REDUCE_MODES = ("auto", "master", "worker")

#: Default users between checkpoint writes when a checkpoint dir is set.
CHECKPOINT_EVERY_USERS = 1024


class CampaignError(Exception):
    """Raised on invalid campaign configuration or merge mismatches."""


class CampaignAborted(CampaignError):
    """Raised by the ``abort_after_users`` chaos hook — a deterministic
    stand-in for kill -9 mid-campaign, used by the fault plan and the
    CI resume smoke to exercise checkpoint recovery."""


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------


class CohortAggregate:
    """One cohort's mergeable partial reduction.

    Embeds a full :class:`StudyAggregate` (so the paper's tables render
    per cohort through the shared row-builder tails) plus user-level
    accumulators: Moments over per-user metrics, the leaking-user
    counter Wilson intervals come from, and per-replicate Poisson
    bootstrap sums.  :meth:`merge` is associative and exact — counts
    and bootstrap sums are integer adds, Moments merge on Shewchuk
    partials, and the study aggregate's own merge algebra does the
    rest.
    """

    __slots__ = (
        "label",
        "replicates",
        "users",
        "users_leaking",
        "sessions",
        "study",
        "user_moments",
        "bootstrap",
    )

    def __init__(self, label: str, replicates: int) -> None:
        self.label = label
        self.replicates = replicates
        self.users = 0
        self.users_leaking = 0
        self.sessions = 0
        self.study = StudyAggregate()
        self.user_moments = {key: Moments() for key in USER_METRIC_KEYS}
        self.bootstrap = {key: BootstrapSums(replicates) for key in USER_METRIC_KEYS}

    def add_user(self, metrics: dict, leaked: bool, weights: Sequence) -> None:
        self.users += 1
        self.users_leaking += 1 if leaked else 0
        self.sessions += metrics["sessions"]
        for key in USER_METRIC_KEYS:
            value = metrics[key]
            self.user_moments[key].add(value)
            self.bootstrap[key].add(value, weights)

    def merge(self, other: "CohortAggregate") -> "CohortAggregate":
        if other.label != self.label:
            raise CampaignError(f"cannot merge cohort {other.label!r} into {self.label!r}")
        if other.replicates != self.replicates:
            raise CampaignError(
                f"bootstrap replicate mismatch: {self.replicates} != {other.replicates}"
            )
        self.users += other.users
        self.users_leaking += other.users_leaking
        self.sessions += other.sessions
        self.study.merge(other.study)
        self.user_moments = {
            key: self.user_moments[key].merge(other.user_moments[key])
            for key in USER_METRIC_KEYS
        }
        self.bootstrap = {
            key: self.bootstrap[key].merge(other.bootstrap[key])
            for key in USER_METRIC_KEYS
        }
        return self

    # -- intervals -----------------------------------------------------------

    def leak_fraction(self) -> float:
        if not self.users:
            return 0.0
        return self.users_leaking / self.users

    def leak_interval(self, confidence: float = 0.95) -> tuple:
        """Wilson CI for the fraction of users with >= 1 leak."""
        return wilson_interval(self.users_leaking, self.users, confidence)

    def metric_interval(self, key: str, confidence: float = 0.95) -> tuple:
        """Bootstrap CI for the per-user mean of one metric."""
        return self.bootstrap[key].interval(confidence)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """Exact (partials-preserving) form for IPC and merging."""
        return {
            "label": self.label,
            "replicates": self.replicates,
            "users": self.users,
            "users_leaking": self.users_leaking,
            "sessions": self.sessions,
            "study": self.study.to_dict(),
            "user_moments": {k: m.to_dict() for k, m in self.user_moments.items()},
            "bootstrap": {k: b.to_dict() for k, b in self.bootstrap.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CohortAggregate":
        cohort = cls(data["label"], data["replicates"])
        cohort.users = data["users"]
        cohort.users_leaking = data["users_leaking"]
        cohort.sessions = data["sessions"]
        cohort.study = StudyAggregate.from_dict(data["study"])
        cohort.user_moments = {
            key: Moments.from_dict(entry)
            for key, entry in data["user_moments"].items()
        }
        cohort.bootstrap = {
            key: BootstrapSums.from_dict(entry)
            for key, entry in data["bootstrap"].items()
        }
        return cohort

    def canonical_dict(self) -> dict:
        """Comparison form: Moments collapsed to correctly rounded sums
        (merge-order-invariant), bootstrap sums already exact ints."""
        payload = self.to_dict()
        payload["study"] = self.study.canonical_dict()
        payload["user_moments"] = {
            key: {
                "count": m.count,
                "sum": m.sum(),
                "sumsq": m.sumsq(),
                "min": m._min,
                "max": m._max,
            }
            for key, m in self.user_moments.items()
        }
        return payload


class CampaignAggregate:
    """The campaign-level mergeable partial: cohorts keyed by label.

    Shards produce one of these each; :meth:`merge` folds another in
    (cohorts merge pairwise, new labels append).  ``canonical_bytes``
    is the byte-exact comparison form the QA oracle and the CI smoke
    job diff — identical for any shard split, worker count, or merge
    order.
    """

    def __init__(self, seed: int, dims: tuple, replicates: int) -> None:
        self.seed = seed
        self.dims = tuple(dims)
        self.replicates = replicates
        self.cohorts: dict = {}  # label -> CohortAggregate

    @property
    def users(self) -> int:
        return sum(cohort.users for cohort in self.cohorts.values())

    @property
    def sessions(self) -> int:
        return sum(cohort.sessions for cohort in self.cohorts.values())

    def cohort(self, label: str) -> CohortAggregate:
        cohort = self.cohorts.get(label)
        if cohort is None:
            cohort = self.cohorts[label] = CohortAggregate(label, self.replicates)
        return cohort

    def ordered_cohorts(self) -> list:
        return [self.cohorts[label] for label in sorted(self.cohorts)]

    def overall(self) -> CohortAggregate:
        """All cohorts merged into one population-wide aggregate."""
        total = CohortAggregate("all", self.replicates)
        for cohort in self.ordered_cohorts():
            clone = CohortAggregate.from_dict(cohort.to_dict())
            clone.label = "all"
            total.merge(clone)
        return total

    def merge(self, other: "CampaignAggregate") -> "CampaignAggregate":
        if (other.seed, other.dims, other.replicates) != (
            self.seed,
            self.dims,
            self.replicates,
        ):
            raise CampaignError(
                "cannot merge campaign partials with different "
                f"(seed, dims, replicates): {(self.seed, self.dims, self.replicates)} "
                f"!= {(other.seed, other.dims, other.replicates)}"
            )
        for label, cohort in sorted(other.cohorts.items()):
            mine = self.cohorts.get(label)
            if mine is None:
                self.cohorts[label] = CohortAggregate.from_dict(cohort.to_dict())
            else:
                mine.merge(cohort)
        return self

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "dims": list(self.dims),
            "replicates": self.replicates,
            "cohorts": [cohort.to_dict() for cohort in self.ordered_cohorts()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignAggregate":
        agg = cls(data["seed"], tuple(data["dims"]), data["replicates"])
        for entry in data["cohorts"]:
            cohort = CohortAggregate.from_dict(entry)
            agg.cohorts[cohort.label] = cohort
        return agg

    def canonical_dict(self) -> dict:
        return {
            "seed": self.seed,
            "dims": list(self.dims),
            "replicates": self.replicates,
            "users": self.users,
            "sessions": self.sessions,
            "cohorts": [cohort.canonical_dict() for cohort in self.ordered_cohorts()],
        }

    def canonical_bytes(self) -> bytes:
        return json.dumps(self.canonical_dict(), sort_keys=True).encode("utf-8")

    def digest(self) -> str:
        return hashlib.sha256(self.canonical_bytes()).hexdigest()


def merge_campaigns(partials: Iterable) -> CampaignAggregate:
    """Fold shard partials (in the given order) into one aggregate."""
    merged = None
    for partial in partials:
        if merged is None:
            merged = CampaignAggregate(partial.seed, partial.dims, partial.replicates)
        merged.merge(partial)
    if merged is None:
        raise CampaignError("no campaign partials to merge")
    return merged


# ---------------------------------------------------------------------------
# Context: everything a shard needs, shippable to pool workers
# ---------------------------------------------------------------------------


class CampaignContext:
    """Bound (population spec, services, seed, cohorts, agg mode).

    Workers rebuild one from ``(specs, config_dict)`` via the pool
    initializer; the dict is JSON-safe so the spawn start method works
    identically to fork.
    """

    def __init__(
        self,
        population_spec: PopulationSpec,
        services: Sequence,
        seed: int,
        dims: tuple = ("os",),
        agg: str = AGG_AUTO,
    ) -> None:
        self.population_spec = population_spec
        self.services = list(services)
        self.seed = int(seed)
        self.dims = tuple(dims)
        self.agg = resolve_agg(agg)
        self.sampler = PersonaSampler(population_spec, self.services, self.seed)
        self.specs_by_slug = {spec.slug: spec for spec in self.services}
        self.metas = [
            ServiceMeta.from_spec(spec, index)
            for index, spec in enumerate(self.services)
        ]
        self._order_by_slug = {
            spec.slug: index for index, spec in enumerate(self.services)
        }

    def config(self) -> dict:
        """The JSON-safe half of the worker context (specs ship as
        pickled objects alongside, like the analysis stages)."""
        return {
            "population_spec": self.population_spec.to_dict(),
            "seed": self.seed,
            "dims": list(self.dims),
            "agg": self.agg,
        }

    @classmethod
    def from_config(cls, services: Sequence, config: dict) -> "CampaignContext":
        return cls(
            PopulationSpec.from_dict(config["population_spec"]),
            services,
            config["seed"],
            dims=tuple(config["dims"]),
            agg=config["agg"],
        )

    # -- per-user simulation -------------------------------------------------

    def user_seed(self, user_id: int) -> int:
        text = f"campaign|{self.seed}|runner|{user_id}"
        return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")

    def simulate_user(self, user: UserPersona) -> list:
        """Run and analyze every planned session; ``[(order, analysis)]``.

        Each session gets a *fresh* single-service world and a runner
        seeded purely from the user id, so a user's traffic is
        independent of which shard or worker simulates them.
        """
        cells = []
        grants = user.grants

        def setup(phone) -> None:
            phone.permission_decider = (
                lambda app_slug, permission: permission in grants
            )

        for plan in user.plans:
            spec = self.specs_by_slug[plan.service]
            world = build_world([spec])
            runner = ExperimentRunner(
                world, seed=self.user_seed(user.user_id), persona=user.persona
            )
            script = persona_script(
                spec,
                duration=plan.duration,
                rng=self.sampler._rng("script", user.user_id, plan.seq),
            )
            record = runner.run_session(
                spec,
                plan.os_name,
                plan.medium,
                duration=plan.duration,
                script=script,
                phone_setup=setup,
            )
            analysis = analyze_session(record, spec, recon=None)
            order = cell_order(
                self._order_by_slug[plan.service], plan.os_name, plan.medium
            )
            cells.append((order, analysis))
        return cells

    # -- folds (rows / columnar twins) ---------------------------------------

    def _fold_rows(self, study: StudyAggregate, cells: list) -> None:
        """Row-wise fold of ``(order, analysis)`` pairs — mirrors
        :func:`~repro.analysis.columnar.aggregate_batch` exactly (same
        groupings, same Moments updates), so the two ``--agg`` paths
        produce byte-identical canonical aggregates."""
        for meta in self.metas:
            mine = study.services.get(meta.slug)
            if mine is None or meta.order < mine.order:
                study.services[meta.slug] = meta
        moments = study.moments
        for order, analysis in cells:
            cell = CellAggregate(
                analysis.service, analysis.os_name, analysis.medium, order
            )
            cell.flows_total = analysis.flows_total
            cell.aa_flows = analysis.aa_flows
            cell.aa_bytes = analysis.aa_bytes
            cell.aa_domains = set(analysis.aa_domains)
            groups: dict = {}
            events = 0
            for leak in analysis.leaks:
                key = (
                    leak.observation.domain,
                    leak.observation.hostname,
                    leak.observation.pii_type,
                )
                groups[key] = groups.get(key, 0) + 1
                events += 1
            cell.leak_groups = groups
            existing = study.cells.get(cell.key)
            if existing is None:
                study.cells[cell.key] = cell
            else:
                existing.merge(cell)
            moments["flows_total"].add(cell.flows_total)
            moments["aa_flows"].add(cell.aa_flows)
            moments["aa_bytes"].add(cell.aa_bytes)
            moments["leak_events"].add(events)

    def _fold_columnar(self, study: StudyAggregate, cells: list) -> None:
        """Columnar fold: encode the cells into one batch blob, run the
        kernel, merge the partial in — the codec round-trip is the same
        one the process pool ships."""
        study.merge(aggregate_blob(encode_cells(self.metas, cells)))

    def fold_user(self, agg: CampaignAggregate, user: UserPersona, cells: list) -> None:
        cohort = agg.cohort(user.cohort(self.dims))
        if self.agg == "columnar":
            self._fold_columnar(cohort.study, cells)
        else:
            self._fold_rows(cohort.study, cells)
        metrics = {
            "sessions": len(cells),
            "flows_total": sum(a.flows_total for _, a in cells),
            "aa_flows": sum(a.aa_flows for _, a in cells),
            "aa_bytes": sum(a.aa_bytes for _, a in cells),
            "leak_events": sum(len(a.leaks) for _, a in cells),
        }
        leaked = any(a.leaks for _, a in cells)
        cohort.add_user(metrics, leaked, self.sampler.bootstrap_weights(user.user_id))

    # -- shard execution -----------------------------------------------------

    def run_shard(self, start: int, stop: int) -> CampaignAggregate:
        """Simulate users ``[start, stop)`` into one shard partial."""
        agg = CampaignAggregate(
            self.seed, self.dims, self.population_spec.bootstrap_replicates
        )
        for user in self.sampler.iter_users(start, stop):
            self.fold_user(agg, user, self.simulate_user(user))
        return agg


# ---------------------------------------------------------------------------
# Shard planning + driver
# ---------------------------------------------------------------------------


def default_shard_count(population: int) -> int:
    """Shards as a pure function of N (never of the worker count), so
    the plan — hence every partial — is host-independent."""
    return max(1, math.ceil(population / SHARD_TARGET_USERS))


def plan_shards(population: int, shards: Optional[int] = None) -> list:
    """Contiguous ``(start, stop)`` user-id ranges covering the population."""
    if population < 1:
        raise CampaignError(f"population must be >= 1: {population}")
    count = default_shard_count(population) if shards is None else int(shards)
    count = max(1, min(count, population))
    base, extra = divmod(population, count)
    ranges = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def _offset_ranges(ranges: list, offset: int) -> list:
    return [(start + offset, stop + offset) for start, stop in ranges]


class AdaptiveSharder:
    """Feedback-driven chunk planner for the worker-reduce driver.

    Starts at the static :data:`SHARD_TARGET_USERS` chunk size, then
    re-sizes from an EWMA of observed worker throughput so each chunk
    lands near ``target_seconds`` of simulation — big enough that the
    coordinator folds O(population / max_users) partials instead of
    O(population / 256), small enough to stay observable.  Near the end
    the remaining range is split across ``workers * 2`` chunks so one
    straggler cannot serialize the tail.  Only the *boundaries* move:
    user ``i`` is a pure function of (spec, services, seed, i), so the
    merge algebra keeps every re-chunking byte-identical.
    """

    def __init__(
        self,
        population: int,
        workers: int,
        start: int = 0,
        target_seconds: float = 2.0,
        min_users: int = 32,
        max_users: int = 8192,
        initial: int = SHARD_TARGET_USERS,
    ) -> None:
        self.population = population
        self.workers = max(1, workers)
        self.next_start = start
        self.target_seconds = target_seconds
        self.min_users = max(1, min_users)
        self.max_users = max(self.min_users, max_users)
        self._size = max(self.min_users, min(initial, self.max_users))
        self._rate: Optional[float] = None

    def next_range(self) -> Optional[tuple]:
        if self.next_start >= self.population:
            return None
        remaining = self.population - self.next_start
        tail = max(self.min_users, math.ceil(remaining / (self.workers * 2)))
        size = min(self._size, tail, remaining)
        shard_range = (self.next_start, self.next_start + size)
        self.next_start += size
        return shard_range

    def observe(self, users: int, elapsed: float) -> None:
        if elapsed <= 0.0 or users <= 0:
            return
        rate = users / elapsed
        self._rate = rate if self._rate is None else 0.5 * self._rate + 0.5 * rate
        self._size = int(
            min(self.max_users, max(self.min_users, self._rate * self.target_seconds))
        )


class _FixedPlan:
    """Pre-planned chunk geometry (explicit ``shards=``) behind the
    planner interface — deterministic chunking for tests and smokes."""

    def __init__(self, ranges: list) -> None:
        self._ranges = iter(ranges)

    def next_range(self) -> Optional[tuple]:
        return next(self._ranges, None)

    def observe(self, users: int, elapsed: float) -> None:
        pass


def checkpoint_key(population: int, specs: Sequence, config: dict) -> str:
    """Fingerprint of everything that determines a campaign's result —
    resuming under a different configuration must fail loudly, not
    silently merge incompatible partials."""
    payload = {
        "population": population,
        "services": [spec.slug for spec in specs],
        "config": config,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


class CampaignCheckpoint:
    """Crash-safe checkpoint directory for resumable campaigns.

    Layout: ``partial-<next_user>.cagg`` (the merged prefix aggregate
    as a framed KIND_CAGG file) plus ``state.json`` naming the current
    partial, its digest, the next unprocessed user index, and the
    configuration key.  Both writes are atomic and ordered partial
    first, so a crash between them leaves ``state.json`` pointing at
    the previous fully-written partial — every on-disk state is
    consistent.  Stale partials are garbage-collected only after the
    state file has moved on.
    """

    STATE_FILE = "state.json"

    def __init__(self, directory, key: str, every: Optional[int] = None) -> None:
        self.directory = Path(directory)
        self.key = key
        self.every = (
            CHECKPOINT_EVERY_USERS if every is None else max(1, int(every))
        )
        self._last_saved = 0

    def load(self) -> Optional[tuple]:
        """``(next_user, merged)`` from the last checkpoint, or ``None``
        when the directory holds no state yet."""
        from ..net import codec

        state_path = self.directory / self.STATE_FILE
        try:
            state = json.loads(state_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            raise CampaignError(
                f"unreadable campaign checkpoint {state_path}: {exc}"
            ) from exc
        if state.get("key") != self.key:
            raise CampaignError(
                f"checkpoint {state_path} was written by a different campaign "
                "configuration (population/seed/spec/services/cohorts mismatch)"
            )
        partial_path = self.directory / state["partial"]
        merged = codec.read_campaign(partial_path)
        if merged.digest() != state["digest"]:
            raise CampaignError(
                f"checkpoint partial {partial_path} does not match the "
                f"recorded digest {state['digest']}"
            )
        next_user = int(state["next_user"])
        self._last_saved = next_user
        return next_user, merged

    def save(self, merged: CampaignAggregate, next_user: int) -> None:
        from ..net import codec

        self.directory.mkdir(parents=True, exist_ok=True)
        name = f"partial-{next_user:012d}.cagg"
        codec.write_campaign(self.directory / name, merged)
        atomic_write_json(
            self.directory / self.STATE_FILE,
            {
                "version": 1,
                "key": self.key,
                "next_user": next_user,
                "partial": name,
                "digest": merged.digest(),
            },
        )
        for stale in self.directory.glob("partial-*.cagg"):
            if stale.name != name:
                stale.unlink(missing_ok=True)
        self._last_saved = next_user

    def maybe_save(self, merged: CampaignAggregate, next_user: int) -> bool:
        if next_user - self._last_saved < self.every:
            return False
        self.save(merged, next_user)
        return True


class _ProgressLog:
    """Progress lines with a sliding-window rate and ETA appended.

    The prefix (``shard i/n`` on the master path) and the
    ``done/population users simulated`` core are unchanged from the
    original single-line format; the rate/ETA ride behind a ``|`` so
    the line stays grep-stable for existing consumers.
    """

    def __init__(self, population: int, log, start: int = 0, window: int = 16) -> None:
        self.population = population
        self.log = log
        self._samples: deque = deque([(time.monotonic(), start)], maxlen=window)

    def update(self, prefix: str, done: int) -> None:
        if self.log is None:
            return
        now = time.monotonic()
        then, done_then = self._samples[0]
        self._samples.append((now, done))
        line = f"{prefix}: {done}/{self.population} users simulated"
        if now > then and done > done_then:
            rate = (done - done_then) / (now - then)
            eta = (self.population - done) / rate
            line += f" | {rate:.1f} users/s, ETA {eta:.0f}s"
        self.log(line)


def _resolve_reduce(reduce: str, engine) -> str:
    if reduce not in REDUCE_MODES:
        raise CampaignError(
            f"unknown reduce mode {reduce!r} (choose one of {REDUCE_MODES})"
        )
    if reduce != "auto":
        return reduce
    return "worker" if engine.workers > 1 and engine.name != "serial" else "master"


def run_campaign(
    population: int,
    seed: int = 7,
    population_spec: Optional[PopulationSpec] = None,
    services: Optional[Sequence] = None,
    cohorts="os",
    shards: Optional[int] = None,
    executor=None,
    workers: int = 1,
    agg: str = AGG_AUTO,
    log=None,
    reduce: str = "auto",
    checkpoint_dir=None,
    resume: bool = False,
    checkpoint_every: Optional[int] = None,
    abort_after_users: Optional[int] = None,
) -> CampaignAggregate:
    """Simulate a population and return the merged campaign aggregate.

    ``executor`` is a :mod:`repro.par` backend (instance, name, or
    ``None`` for serial); ``cohorts`` is a dimension list (``"os"``,
    ``"os,medium"``, ``"none"``, or a tuple).  Memory stays flat at any
    population size: partials stream back and fold immediately.

    ``reduce`` picks the reduction topology.  ``master`` is the
    reference: fixed :func:`plan_shards` geometry, every shard partial
    shipped back and folded serially by the coordinator.  ``worker``
    submits larger contiguous chunks so pool workers fold shard-sized
    work locally and ship one partial per chunk — O(chunks) coordinator
    merges instead of O(shards) — with chunk sizes driven by
    :class:`AdaptiveSharder` unless ``shards`` pins the geometry.
    ``auto`` (default) picks ``worker`` on parallel backends.  Both
    modes produce identical ``canonical_bytes`` (oracle-pinned).

    ``checkpoint_dir`` enables crash-safe periodic checkpoints (every
    ``checkpoint_every`` users) through :class:`CampaignCheckpoint`;
    ``resume=True`` continues from the directory's last consistent
    state.  Chunks always fold in submission order, so the merged
    aggregate covers the contiguous prefix ``[0, next_user)`` — that is
    what makes the (partial, next_user) pair a complete checkpoint.
    ``abort_after_users`` is a deterministic chaos hook that raises
    :class:`CampaignAborted` once that many users have folded.
    """
    from ..par import resolve_executor
    from ..services.catalog import build_catalog

    specs = list(services) if services is not None else build_catalog()
    spec = population_spec if population_spec is not None else PopulationSpec()
    dims = parse_cohort_dims(cohorts) if isinstance(cohorts, str) else tuple(cohorts)
    context = CampaignContext(spec, specs, seed, dims=dims, agg=agg)
    engine = resolve_executor(executor, workers)
    mode = _resolve_reduce(reduce, engine)
    if population < 1:
        raise CampaignError(f"population must be >= 1: {population}")

    merged = CampaignAggregate(context.seed, context.dims, spec.bootstrap_replicates)
    start_user = 0
    checkpointer = None
    if checkpoint_dir is not None:
        checkpointer = CampaignCheckpoint(
            checkpoint_dir,
            checkpoint_key(population, specs, context.config()),
            every=checkpoint_every,
        )
        if resume:
            loaded = checkpointer.load()
            if loaded is not None:
                start_user, merged = loaded
    elif resume:
        raise CampaignError("resume requires a checkpoint directory")

    if start_user >= population:
        return merged

    progress = _ProgressLog(population, log, start=start_user)
    abort_at = None if abort_after_users is None else start_user + abort_after_users

    def folded(done_users: int) -> None:
        if checkpointer is not None:
            checkpointer.maybe_save(merged, done_users)
        if abort_at is not None and done_users >= abort_at:
            raise CampaignAborted(
                f"campaign aborted after {done_users - start_user} user(s) "
                f"(abort_after_users={abort_after_users})"
            )

    if mode == "master":
        ranges = _offset_ranges(plan_shards(population - start_user, shards), start_user)
        for index, partial in enumerate(
            engine.map_sessions(ranges, specs, context.config())
        ):
            merged.merge(partial)
            done_users = ranges[index][1]
            progress.update(f"shard {index + 1}/{len(ranges)}", done_users)
            folded(done_users)
    else:
        with engine.session_pool(specs, context.config()) as pool:
            if shards is not None:
                planner = _FixedPlan(
                    _offset_ranges(plan_shards(population - start_user, shards), start_user)
                )
            else:
                planner = AdaptiveSharder(population, pool.workers, start=start_user)
            window = max(2, pool.workers * 2)
            pending: deque = deque()

            def fill() -> None:
                while len(pending) < window:
                    shard_range = planner.next_range()
                    if shard_range is None:
                        break
                    pending.append((shard_range, pool.submit(shard_range)))

            chunk_index = 0
            fill()
            while pending:
                shard_range, future = pending.popleft()
                elapsed, partial = future.result()
                planner.observe(shard_range[1] - shard_range[0], elapsed)
                merged.merge(partial)
                chunk_index += 1
                progress.update(f"chunk {chunk_index}", shard_range[1])
                folded(shard_range[1])
                fill()

    if checkpointer is not None:
        checkpointer.save(merged, population)
    return merged


def reduce_campaign_blobs(
    blobs: Iterable, executor=None, workers: int = 1, window: Optional[int] = None
) -> CampaignAggregate:
    """Tree-reduce KIND_CAGG blobs into one :class:`CampaignAggregate`.

    The reference path (serial backend or ``workers <= 1``) decodes
    every blob and left-folds — exactly the coordinator's master
    reduce.  A parallel backend folds contiguous windows of blobs on
    the workers (:meth:`~repro.par.Executor.map_merge`), repeating in
    rounds until one merged blob remains, so the coordinator decodes
    O(1) payloads instead of O(blobs).  Associativity of the merge
    algebra makes the tree byte-identical to the serial fold.
    """
    from ..net import codec
    from ..par import resolve_executor

    blobs = list(blobs)
    if not blobs:
        raise CampaignError("no campaign partials to merge")
    engine = resolve_executor(executor, workers)
    if engine.name == "serial" or engine.workers <= 1 or len(blobs) == 1:
        return merge_campaigns(codec.decode_campaign(blob) for blob in blobs)
    size = window if window else max(2, math.ceil(len(blobs) / engine.workers))
    while len(blobs) > 1:
        windows = [blobs[i : i + size] for i in range(0, len(blobs), size)]
        blobs = engine.map_merge(windows)
    return codec.decode_campaign(blobs[0])
