"""The campaign engine: populations of users as mergeable cohorts.

A *campaign* simulates N users drawn by :class:`PersonaSampler`,
executes every planned session through the existing scripted
:class:`~repro.experiment.runner.ExperimentRunner`, analyzes each with
the unchanged detection pipeline, and folds the results straight into
mergeable partial aggregates — the population never materializes:

- the user-id range is planned into contiguous *shards* (a pure
  function of N, never of the worker count);
- each shard reduces to a :class:`CampaignAggregate` — per-cohort
  :class:`CohortAggregate` partials holding a columnar
  :class:`~repro.analysis.columnar.StudyAggregate`, per-user
  :class:`~repro.analysis.stats.Moments`, user-leak counters for Wilson
  intervals, and Poisson-bootstrap sums keyed by user id;
- shard partials stream back through :meth:`repro.par.Executor.map_sessions`
  and merge associatively, so any shard count, worker count, or merge
  order yields identical canonical bytes (pinned in the QA oracle).

Every user is a pure function of ``(PopulationSpec, services, seed,
user_id)``: each session gets a fresh single-service world and a
runner seeded from the user id, which is what makes the shard geometry
invisible to the results.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Iterable, Optional, Sequence

from ..analysis.columnar import (
    AGG_AUTO,
    CellAggregate,
    ServiceMeta,
    StudyAggregate,
    aggregate_blob,
    encode_cells,
    resolve_agg,
)
from ..analysis.stats import BootstrapSums, Moments, wilson_interval
from ..core.pipeline import analyze_session
from ..experiment.runner import ExperimentRunner
from ..experiment.scripts import persona_script
from ..services.world import build_world
from .population import (
    PersonaSampler,
    PopulationSpec,
    UserPersona,
    cell_order,
    parse_cohort_dims,
)

#: Per-user metrics the cohort aggregates keep Moments + bootstrap for.
USER_METRIC_KEYS = ("sessions", "flows_total", "aa_flows", "aa_bytes", "leak_events")

#: Target users per shard; the shard plan is a pure function of N only.
SHARD_TARGET_USERS = 256


class CampaignError(Exception):
    """Raised on invalid campaign configuration or merge mismatches."""


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------


class CohortAggregate:
    """One cohort's mergeable partial reduction.

    Embeds a full :class:`StudyAggregate` (so the paper's tables render
    per cohort through the shared row-builder tails) plus user-level
    accumulators: Moments over per-user metrics, the leaking-user
    counter Wilson intervals come from, and per-replicate Poisson
    bootstrap sums.  :meth:`merge` is associative and exact — counts
    and bootstrap sums are integer adds, Moments merge on Shewchuk
    partials, and the study aggregate's own merge algebra does the
    rest.
    """

    __slots__ = (
        "label",
        "replicates",
        "users",
        "users_leaking",
        "sessions",
        "study",
        "user_moments",
        "bootstrap",
    )

    def __init__(self, label: str, replicates: int) -> None:
        self.label = label
        self.replicates = replicates
        self.users = 0
        self.users_leaking = 0
        self.sessions = 0
        self.study = StudyAggregate()
        self.user_moments = {key: Moments() for key in USER_METRIC_KEYS}
        self.bootstrap = {key: BootstrapSums(replicates) for key in USER_METRIC_KEYS}

    def add_user(self, metrics: dict, leaked: bool, weights: Sequence) -> None:
        self.users += 1
        self.users_leaking += 1 if leaked else 0
        self.sessions += metrics["sessions"]
        for key in USER_METRIC_KEYS:
            value = metrics[key]
            self.user_moments[key].add(value)
            self.bootstrap[key].add(value, weights)

    def merge(self, other: "CohortAggregate") -> "CohortAggregate":
        if other.label != self.label:
            raise CampaignError(f"cannot merge cohort {other.label!r} into {self.label!r}")
        if other.replicates != self.replicates:
            raise CampaignError(
                f"bootstrap replicate mismatch: {self.replicates} != {other.replicates}"
            )
        self.users += other.users
        self.users_leaking += other.users_leaking
        self.sessions += other.sessions
        self.study.merge(other.study)
        self.user_moments = {
            key: self.user_moments[key].merge(other.user_moments[key])
            for key in USER_METRIC_KEYS
        }
        self.bootstrap = {
            key: self.bootstrap[key].merge(other.bootstrap[key])
            for key in USER_METRIC_KEYS
        }
        return self

    # -- intervals -----------------------------------------------------------

    def leak_fraction(self) -> float:
        if not self.users:
            return 0.0
        return self.users_leaking / self.users

    def leak_interval(self, confidence: float = 0.95) -> tuple:
        """Wilson CI for the fraction of users with >= 1 leak."""
        return wilson_interval(self.users_leaking, self.users, confidence)

    def metric_interval(self, key: str, confidence: float = 0.95) -> tuple:
        """Bootstrap CI for the per-user mean of one metric."""
        return self.bootstrap[key].interval(confidence)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """Exact (partials-preserving) form for IPC and merging."""
        return {
            "label": self.label,
            "replicates": self.replicates,
            "users": self.users,
            "users_leaking": self.users_leaking,
            "sessions": self.sessions,
            "study": self.study.to_dict(),
            "user_moments": {k: m.to_dict() for k, m in self.user_moments.items()},
            "bootstrap": {k: b.to_dict() for k, b in self.bootstrap.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CohortAggregate":
        cohort = cls(data["label"], data["replicates"])
        cohort.users = data["users"]
        cohort.users_leaking = data["users_leaking"]
        cohort.sessions = data["sessions"]
        cohort.study = StudyAggregate.from_dict(data["study"])
        cohort.user_moments = {
            key: Moments.from_dict(entry)
            for key, entry in data["user_moments"].items()
        }
        cohort.bootstrap = {
            key: BootstrapSums.from_dict(entry)
            for key, entry in data["bootstrap"].items()
        }
        return cohort

    def canonical_dict(self) -> dict:
        """Comparison form: Moments collapsed to correctly rounded sums
        (merge-order-invariant), bootstrap sums already exact ints."""
        payload = self.to_dict()
        payload["study"] = self.study.canonical_dict()
        payload["user_moments"] = {
            key: {
                "count": m.count,
                "sum": m.sum(),
                "sumsq": m.sumsq(),
                "min": m._min,
                "max": m._max,
            }
            for key, m in self.user_moments.items()
        }
        return payload


class CampaignAggregate:
    """The campaign-level mergeable partial: cohorts keyed by label.

    Shards produce one of these each; :meth:`merge` folds another in
    (cohorts merge pairwise, new labels append).  ``canonical_bytes``
    is the byte-exact comparison form the QA oracle and the CI smoke
    job diff — identical for any shard split, worker count, or merge
    order.
    """

    def __init__(self, seed: int, dims: tuple, replicates: int) -> None:
        self.seed = seed
        self.dims = tuple(dims)
        self.replicates = replicates
        self.cohorts: dict = {}  # label -> CohortAggregate

    @property
    def users(self) -> int:
        return sum(cohort.users for cohort in self.cohorts.values())

    @property
    def sessions(self) -> int:
        return sum(cohort.sessions for cohort in self.cohorts.values())

    def cohort(self, label: str) -> CohortAggregate:
        cohort = self.cohorts.get(label)
        if cohort is None:
            cohort = self.cohorts[label] = CohortAggregate(label, self.replicates)
        return cohort

    def ordered_cohorts(self) -> list:
        return [self.cohorts[label] for label in sorted(self.cohorts)]

    def overall(self) -> CohortAggregate:
        """All cohorts merged into one population-wide aggregate."""
        total = CohortAggregate("all", self.replicates)
        for cohort in self.ordered_cohorts():
            clone = CohortAggregate.from_dict(cohort.to_dict())
            clone.label = "all"
            total.merge(clone)
        return total

    def merge(self, other: "CampaignAggregate") -> "CampaignAggregate":
        if (other.seed, other.dims, other.replicates) != (
            self.seed,
            self.dims,
            self.replicates,
        ):
            raise CampaignError(
                "cannot merge campaign partials with different "
                f"(seed, dims, replicates): {(self.seed, self.dims, self.replicates)} "
                f"!= {(other.seed, other.dims, other.replicates)}"
            )
        for label, cohort in sorted(other.cohorts.items()):
            mine = self.cohorts.get(label)
            if mine is None:
                self.cohorts[label] = CohortAggregate.from_dict(cohort.to_dict())
            else:
                mine.merge(cohort)
        return self

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "dims": list(self.dims),
            "replicates": self.replicates,
            "cohorts": [cohort.to_dict() for cohort in self.ordered_cohorts()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignAggregate":
        agg = cls(data["seed"], tuple(data["dims"]), data["replicates"])
        for entry in data["cohorts"]:
            cohort = CohortAggregate.from_dict(entry)
            agg.cohorts[cohort.label] = cohort
        return agg

    def canonical_dict(self) -> dict:
        return {
            "seed": self.seed,
            "dims": list(self.dims),
            "replicates": self.replicates,
            "users": self.users,
            "sessions": self.sessions,
            "cohorts": [cohort.canonical_dict() for cohort in self.ordered_cohorts()],
        }

    def canonical_bytes(self) -> bytes:
        return json.dumps(self.canonical_dict(), sort_keys=True).encode("utf-8")

    def digest(self) -> str:
        return hashlib.sha256(self.canonical_bytes()).hexdigest()


def merge_campaigns(partials: Iterable) -> CampaignAggregate:
    """Fold shard partials (in the given order) into one aggregate."""
    merged = None
    for partial in partials:
        if merged is None:
            merged = CampaignAggregate(partial.seed, partial.dims, partial.replicates)
        merged.merge(partial)
    if merged is None:
        raise CampaignError("no campaign partials to merge")
    return merged


# ---------------------------------------------------------------------------
# Context: everything a shard needs, shippable to pool workers
# ---------------------------------------------------------------------------


class CampaignContext:
    """Bound (population spec, services, seed, cohorts, agg mode).

    Workers rebuild one from ``(specs, config_dict)`` via the pool
    initializer; the dict is JSON-safe so the spawn start method works
    identically to fork.
    """

    def __init__(
        self,
        population_spec: PopulationSpec,
        services: Sequence,
        seed: int,
        dims: tuple = ("os",),
        agg: str = AGG_AUTO,
    ) -> None:
        self.population_spec = population_spec
        self.services = list(services)
        self.seed = int(seed)
        self.dims = tuple(dims)
        self.agg = resolve_agg(agg)
        self.sampler = PersonaSampler(population_spec, self.services, self.seed)
        self.specs_by_slug = {spec.slug: spec for spec in self.services}
        self.metas = [
            ServiceMeta.from_spec(spec, index)
            for index, spec in enumerate(self.services)
        ]
        self._order_by_slug = {
            spec.slug: index for index, spec in enumerate(self.services)
        }

    def config(self) -> dict:
        """The JSON-safe half of the worker context (specs ship as
        pickled objects alongside, like the analysis stages)."""
        return {
            "population_spec": self.population_spec.to_dict(),
            "seed": self.seed,
            "dims": list(self.dims),
            "agg": self.agg,
        }

    @classmethod
    def from_config(cls, services: Sequence, config: dict) -> "CampaignContext":
        return cls(
            PopulationSpec.from_dict(config["population_spec"]),
            services,
            config["seed"],
            dims=tuple(config["dims"]),
            agg=config["agg"],
        )

    # -- per-user simulation -------------------------------------------------

    def user_seed(self, user_id: int) -> int:
        text = f"campaign|{self.seed}|runner|{user_id}"
        return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")

    def simulate_user(self, user: UserPersona) -> list:
        """Run and analyze every planned session; ``[(order, analysis)]``.

        Each session gets a *fresh* single-service world and a runner
        seeded purely from the user id, so a user's traffic is
        independent of which shard or worker simulates them.
        """
        cells = []
        grants = user.grants

        def setup(phone) -> None:
            phone.permission_decider = (
                lambda app_slug, permission: permission in grants
            )

        for plan in user.plans:
            spec = self.specs_by_slug[plan.service]
            world = build_world([spec])
            runner = ExperimentRunner(
                world, seed=self.user_seed(user.user_id), persona=user.persona
            )
            script = persona_script(
                spec,
                duration=plan.duration,
                rng=self.sampler._rng("script", user.user_id, plan.seq),
            )
            record = runner.run_session(
                spec,
                plan.os_name,
                plan.medium,
                duration=plan.duration,
                script=script,
                phone_setup=setup,
            )
            analysis = analyze_session(record, spec, recon=None)
            order = cell_order(
                self._order_by_slug[plan.service], plan.os_name, plan.medium
            )
            cells.append((order, analysis))
        return cells

    # -- folds (rows / columnar twins) ---------------------------------------

    def _fold_rows(self, study: StudyAggregate, cells: list) -> None:
        """Row-wise fold of ``(order, analysis)`` pairs — mirrors
        :func:`~repro.analysis.columnar.aggregate_batch` exactly (same
        groupings, same Moments updates), so the two ``--agg`` paths
        produce byte-identical canonical aggregates."""
        for meta in self.metas:
            mine = study.services.get(meta.slug)
            if mine is None or meta.order < mine.order:
                study.services[meta.slug] = meta
        moments = study.moments
        for order, analysis in cells:
            cell = CellAggregate(
                analysis.service, analysis.os_name, analysis.medium, order
            )
            cell.flows_total = analysis.flows_total
            cell.aa_flows = analysis.aa_flows
            cell.aa_bytes = analysis.aa_bytes
            cell.aa_domains = set(analysis.aa_domains)
            groups: dict = {}
            events = 0
            for leak in analysis.leaks:
                key = (
                    leak.observation.domain,
                    leak.observation.hostname,
                    leak.observation.pii_type,
                )
                groups[key] = groups.get(key, 0) + 1
                events += 1
            cell.leak_groups = groups
            existing = study.cells.get(cell.key)
            if existing is None:
                study.cells[cell.key] = cell
            else:
                existing.merge(cell)
            moments["flows_total"].add(cell.flows_total)
            moments["aa_flows"].add(cell.aa_flows)
            moments["aa_bytes"].add(cell.aa_bytes)
            moments["leak_events"].add(events)

    def _fold_columnar(self, study: StudyAggregate, cells: list) -> None:
        """Columnar fold: encode the cells into one batch blob, run the
        kernel, merge the partial in — the codec round-trip is the same
        one the process pool ships."""
        study.merge(aggregate_blob(encode_cells(self.metas, cells)))

    def fold_user(self, agg: CampaignAggregate, user: UserPersona, cells: list) -> None:
        cohort = agg.cohort(user.cohort(self.dims))
        if self.agg == "columnar":
            self._fold_columnar(cohort.study, cells)
        else:
            self._fold_rows(cohort.study, cells)
        metrics = {
            "sessions": len(cells),
            "flows_total": sum(a.flows_total for _, a in cells),
            "aa_flows": sum(a.aa_flows for _, a in cells),
            "aa_bytes": sum(a.aa_bytes for _, a in cells),
            "leak_events": sum(len(a.leaks) for _, a in cells),
        }
        leaked = any(a.leaks for _, a in cells)
        cohort.add_user(metrics, leaked, self.sampler.bootstrap_weights(user.user_id))

    # -- shard execution -----------------------------------------------------

    def run_shard(self, start: int, stop: int) -> CampaignAggregate:
        """Simulate users ``[start, stop)`` into one shard partial."""
        agg = CampaignAggregate(
            self.seed, self.dims, self.population_spec.bootstrap_replicates
        )
        for user in self.sampler.iter_users(start, stop):
            self.fold_user(agg, user, self.simulate_user(user))
        return agg


# ---------------------------------------------------------------------------
# Shard planning + driver
# ---------------------------------------------------------------------------


def default_shard_count(population: int) -> int:
    """Shards as a pure function of N (never of the worker count), so
    the plan — hence every partial — is host-independent."""
    return max(1, math.ceil(population / SHARD_TARGET_USERS))


def plan_shards(population: int, shards: Optional[int] = None) -> list:
    """Contiguous ``(start, stop)`` user-id ranges covering the population."""
    if population < 1:
        raise CampaignError(f"population must be >= 1: {population}")
    count = default_shard_count(population) if shards is None else int(shards)
    count = max(1, min(count, population))
    base, extra = divmod(population, count)
    ranges = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def run_campaign(
    population: int,
    seed: int = 7,
    population_spec: Optional[PopulationSpec] = None,
    services: Optional[Sequence] = None,
    cohorts="os",
    shards: Optional[int] = None,
    executor=None,
    workers: int = 1,
    agg: str = AGG_AUTO,
    log=None,
) -> CampaignAggregate:
    """Simulate a population and return the merged campaign aggregate.

    ``executor`` is a :mod:`repro.par` backend (instance, name, or
    ``None`` for serial); shard partials stream back through
    :meth:`~repro.par.Executor.map_sessions` and fold immediately, so
    memory stays flat at any population size.  ``cohorts`` is a
    dimension list (``"os"``, ``"os,medium"``, ``"none"``, or a tuple).
    """
    from ..par import resolve_executor
    from ..services.catalog import build_catalog

    specs = list(services) if services is not None else build_catalog()
    spec = population_spec if population_spec is not None else PopulationSpec()
    dims = parse_cohort_dims(cohorts) if isinstance(cohorts, str) else tuple(cohorts)
    context = CampaignContext(spec, specs, seed, dims=dims, agg=agg)
    engine = resolve_executor(executor, workers)
    ranges = plan_shards(population, shards)
    merged = CampaignAggregate(context.seed, context.dims, spec.bootstrap_replicates)
    done_users = 0
    for index, partial in enumerate(
        engine.map_sessions(ranges, specs, context.config())
    ):
        merged.merge(partial)
        done_users += ranges[index][1] - ranges[index][0]
        if log is not None:
            log(
                f"shard {index + 1}/{len(ranges)}: "
                f"{done_users}/{population} users simulated"
            )
    return merged
