"""Population-scale campaign engine: N simulated users as mergeable cohorts.

Scales the paper's one-tester study to populations: a seeded
:class:`PersonaSampler` draws users from a configurable
:class:`PopulationSpec`, the engine plans them into deterministic
shards, simulates every session through the unchanged scripted runner
and detection pipeline, and folds the results into associatively
mergeable :class:`CohortAggregate` partials with Wilson and
Poisson-bootstrap confidence intervals.  Any shard count, worker
count, or merge order yields identical canonical bytes.
"""

from .engine import (
    REDUCE_MODES,
    USER_METRIC_KEYS,
    AdaptiveSharder,
    CampaignAborted,
    CampaignAggregate,
    CampaignCheckpoint,
    CampaignContext,
    CampaignError,
    CohortAggregate,
    checkpoint_key,
    default_shard_count,
    merge_campaigns,
    plan_shards,
    reduce_campaign_blobs,
    run_campaign,
)
from .population import (
    PersonaSampler,
    PopulationError,
    PopulationSpec,
    SessionPlan,
    UserPersona,
    cell_order,
    parse_cohort_dims,
)
from .report import cohort_summary_lines, render_campaign

__all__ = [
    "REDUCE_MODES",
    "USER_METRIC_KEYS",
    "AdaptiveSharder",
    "CampaignAborted",
    "CampaignAggregate",
    "CampaignCheckpoint",
    "CampaignContext",
    "CampaignError",
    "CohortAggregate",
    "checkpoint_key",
    "reduce_campaign_blobs",
    "PersonaSampler",
    "PopulationError",
    "PopulationSpec",
    "SessionPlan",
    "UserPersona",
    "cell_order",
    "cohort_summary_lines",
    "default_shard_count",
    "merge_campaigns",
    "parse_cohort_dims",
    "plan_shards",
    "render_campaign",
    "run_campaign",
]
