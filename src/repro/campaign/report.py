"""Campaign reporting: population tables with confidence intervals.

Renders a merged :class:`~repro.campaign.engine.CampaignAggregate` as
text: a population summary, one block per cohort with Wilson intervals
(fraction of users leaking) and Poisson-bootstrap intervals (per-user
metric means), and — because every cohort embeds a full columnar
:class:`~repro.analysis.columnar.StudyAggregate` — the paper's Table 1
and Table 3 rendered *per cohort* through the shared row-builder tails.

The output starts with the aggregate's canonical sha256 digest so the
CI smoke job (and anyone else) can diff two runs byte-for-byte on one
line.
"""

from __future__ import annotations

from ..analysis.tables import render_table1, render_table3, table1, table3
from .engine import USER_METRIC_KEYS, CampaignAggregate, CohortAggregate

#: Human labels for the per-user metric keys.
_METRIC_LABELS = {
    "sessions": "sessions/user",
    "flows_total": "flows/user",
    "aa_flows": "A&A flows/user",
    "aa_bytes": "A&A bytes/user",
    "leak_events": "leak events/user",
}


def _fmt_interval(low: float, high: float, scale: float = 1.0, precision: int = 2) -> str:
    return f"[{low * scale:.{precision}f}, {high * scale:.{precision}f}]"


def cohort_summary_lines(cohort: CohortAggregate, confidence: float = 0.95) -> list:
    """One cohort's user-level summary with CIs."""
    lines = [
        f"cohort {cohort.label}: {cohort.users} users, "
        f"{cohort.sessions} sessions, {len(cohort.study.cells)} cells"
    ]
    low, high = cohort.leak_interval(confidence)
    pct = 100.0 * cohort.leak_fraction()
    lines.append(
        f"  users leaking PII: {cohort.users_leaking}/{cohort.users} "
        f"({pct:.1f}%), {int(confidence * 100)}% Wilson CI "
        f"{_fmt_interval(low, high, scale=100.0, precision=1)}%"
    )
    for key in USER_METRIC_KEYS:
        moments = cohort.user_moments[key]
        if not moments.count:
            continue
        blow, bhigh = cohort.metric_interval(key, confidence)
        lines.append(
            f"  {_METRIC_LABELS[key]}: mean {moments.mean():.2f} "
            f"(std {moments.std():.2f}), bootstrap CI "
            f"{_fmt_interval(blow, bhigh)}"
        )
    return lines


def render_campaign(
    campaign: CampaignAggregate,
    confidence: float = 0.95,
    tables: bool = False,
) -> str:
    """Full text report; ``tables=True`` adds per-cohort Tables 1 & 3."""
    overall = campaign.overall()
    lines = [
        f"campaign digest {campaign.digest()}",
        f"population: {campaign.users} users, {campaign.sessions} sessions, "
        f"seed {campaign.seed}, cohorts by "
        f"{','.join(campaign.dims) if campaign.dims else 'none'}, "
        f"{campaign.replicates} bootstrap replicates",
        "",
    ]
    lines.extend(cohort_summary_lines(overall, confidence))
    for cohort in campaign.ordered_cohorts():
        lines.append("")
        lines.extend(cohort_summary_lines(cohort, confidence))
        if tables:
            lines.append("")
            lines.append(f"Table 1 ({cohort.label}):")
            lines.append(render_table1(table1(cohort.study)))
            lines.append(f"Table 3 ({cohort.label}):")
            lines.append(render_table3(table3(cohort.study)))
    return "\n".join(lines) + "\n"
