"""Production serving layer: the paper's recommender as a live service.

The deliverable end users actually touched was the interactive
app-vs-web recommender (https://recon.meddle.mobi/appvsweb/); this
package is that deployment surface for the reproduction.  It serves
precomputed study results — a saved dataset or a streaming checkpoint —
over a dependency-free asyncio HTTP API:

========================  ====================================================
``GET /healthz``          liveness + store version/ETag
``GET /metrics``          Prometheus text exposition
``GET /v1/services``      the studied services and where they leak
``GET /v1/services/{s}``  per-cell (OS x medium) leak and A&A detail
``POST /v1/recommend``    app-or-web verdicts under caller preferences
``POST /v1/traces``       upload a codec-framed trace bundle for analysis
``GET /v1/jobs/{id}``     ingest job state + progress
``GET /v1/jobs/{id}/result``  incremental or final job results (ETagged)
========================  ====================================================

The three job routes exist when the server is started with an
:class:`repro.ingest.IngestService` (``repro serve --ingest-dir``); see
:mod:`repro.ingest` for the upload data plane.

Layering (see DESIGN §5d): :class:`ResultStore` (versioned, hot-
reloading study snapshots) → :class:`LruTtlCache` (preference-keyed
response bytes) → :class:`ServeApp` (routing/handlers, 429s via
:class:`RateLimiter`) → :class:`ServeServer` (asyncio lifecycle,
bounded concurrency, graceful drain).  :mod:`repro.serve.loadgen`
closes the loop for ``make bench-serve``.
"""

from .app import Request, Response, ServeApp, canonical_json, recommend_payload
from .cache import LruTtlCache
from .loadgen import LoadReport, run_load, run_mixed_load
from .metrics import Counter, Gauge, Histogram, Registry
from .ratelimit import RateLimiter
from .server import BackgroundServer, ServeServer
from .store import ResultStore, StoreError, StoreSnapshot, dataset_from_journal

__all__ = [
    "BackgroundServer",
    "Counter",
    "Gauge",
    "Histogram",
    "LoadReport",
    "LruTtlCache",
    "RateLimiter",
    "Registry",
    "Request",
    "Response",
    "ResultStore",
    "ServeApp",
    "ServeServer",
    "StoreError",
    "StoreSnapshot",
    "canonical_json",
    "dataset_from_journal",
    "recommend_payload",
    "run_load",
    "run_mixed_load",
]
