"""HTTP routing and handlers for the recommender service.

Transport-free by design: :meth:`ServeApp.handle` maps a parsed
:class:`Request` to a :class:`Response`, so the full API contract is
testable without sockets and the asyncio server in
:mod:`repro.serve.server` stays a thin byte shuffler.

Request path for the API routes: hot-reload check on the store (one
``os.stat`` amortized), per-client token bucket (429 on empty), then
the handler — which for ``POST /v1/recommend`` consults the
preference-keyed response cache before scoring.  Every response is
stamped with the store snapshot's content ETag; conditional GETs
(``If-None-Match``) short-circuit to 304.

Recommendation responses are built by :func:`recommend_payload` straight
from :mod:`repro.core.recommend` dataclasses and serialized with one
canonical ``json.dumps`` configuration — which is what makes the served
bytes reproducible against a direct library call (pinned in
``tests/test_serve.py``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Optional

from ..core.recommend import (
    PrivacyPreferences,
    Recommender,
    preferences_from_dict,
    preferences_key,
)
from ..experiment.dataset import OSES
from .cache import LruTtlCache
from .metrics import Registry
from .ratelimit import RateLimiter
from .store import ResultStore, StoreSnapshot

JSON_TYPE = "application/json"
METRICS_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Largest accepted request body (a preference object is < 1 KiB).
MAX_BODY_BYTES = 64 * 1024


def canonical_json(payload) -> bytes:
    """The one serialization every response goes through.

    ``sort_keys`` + fixed separators make the bytes a pure function of
    the payload — the property both the response cache and the
    byte-identical acceptance test lean on.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


@dataclass
class Request:
    """One parsed HTTP request (transport-independent)."""

    method: str
    path: str
    headers: dict = field(default_factory=dict)  # lower-cased names
    body: bytes = b""
    client: str = "local"

    @property
    def client_id(self) -> str:
        """Rate-limit identity: explicit header first, else peer address."""
        return self.headers.get("x-client-id", self.client)


@dataclass
class Response:
    status: int
    body: bytes = b""
    content_type: str = JSON_TYPE
    headers: dict = field(default_factory=dict)
    route: str = "other"  # normalized route label for metrics


def json_response(status: int, payload, route: str, headers: Optional[dict] = None) -> Response:
    return Response(
        status=status,
        body=canonical_json(payload) + b"\n",
        headers=dict(headers or {}),
        route=route,
    )


def error_response(status: int, message: str, route: str, headers: Optional[dict] = None) -> Response:
    return json_response(status, {"error": message}, route, headers)


def _summarize_cell(analysis) -> dict:
    """The per-cell detail ``GET /v1/services/{name}`` exposes."""
    plaintext_types = sorted({r.pii_type.value for r in analysis.leaks if r.plaintext})
    return {
        "flows_total": analysis.flows_total,
        "leak_types": sorted(t.value for t in analysis.leak_types),
        "leak_events": len(analysis.leaks),
        "plaintext_leak_types": plaintext_types,
        "leak_domains": sorted(analysis.leak_domains),
        "aa_domains": sorted(analysis.aa_domains),
        "aa_flows": analysis.aa_flows,
        "aa_bytes": analysis.aa_bytes,
        "third_party_domains": len(analysis.third_party_domains),
    }


def recommend_payload(
    study,
    preferences: PrivacyPreferences,
    os_name: str,
    services: Optional[list] = None,
    etag: str = "",
) -> dict:
    """Build the ``POST /v1/recommend`` response payload.

    Exposed at module level so a direct library caller produces the
    exact structure (and therefore, through :func:`canonical_json`, the
    exact bytes) the service returns.
    """
    recommender = Recommender(study, preferences)
    if services:
        results = [study.by_slug(slug) for slug in services]
    else:
        results = study.services
    recommendations = []
    summary = {"app": 0, "web": 0, "either": 0}
    for result in results:
        recommendation = recommender.recommend_service(result, os_name)
        if recommendation is None:
            continue
        recommendations.append(recommendation.to_dict())
        summary[recommendation.choice] += 1
    return {
        "etag": etag,
        "os": os_name,
        "recommendations": recommendations,
        "summary": summary,
    }


class ServeApp:
    """Routes requests over one :class:`ResultStore`."""

    def __init__(
        self,
        store: ResultStore,
        cache: Optional[LruTtlCache] = None,
        limiter: Optional[RateLimiter] = None,
        registry: Optional[Registry] = None,
        ingest=None,
        clock=time.monotonic,
    ) -> None:
        self.store = store
        self.cache = cache if cache is not None else LruTtlCache()
        self.limiter = limiter  # None = rate limiting disabled
        self.ingest = ingest  # None = upload path disabled (read-only server)
        self.registry = registry if registry is not None else Registry()
        self._clock = clock
        self._started_at = clock()
        #: Test/ops hook: artificial per-request latency (seconds) the
        #: asyncio server awaits before dispatch — lets drain and
        #: timeout behavior be exercised deterministically.
        self.handler_delay = 0.0

        reg = self.registry
        self.requests_total = reg.counter(
            "repro_serve_requests_total", "Requests handled", ("route", "status")
        )
        self.request_seconds = reg.histogram(
            "repro_serve_request_seconds", "Request latency by route", ("route",)
        )
        self.cache_hits_total = reg.counter(
            "repro_serve_cache_hits_total", "Recommendation cache hits"
        )
        self.cache_misses_total = reg.counter(
            "repro_serve_cache_misses_total", "Recommendation cache misses"
        )
        self.ratelimit_dropped_total = reg.counter(
            "repro_serve_ratelimit_dropped_total", "Requests rejected with 429"
        )
        self.inflight = reg.gauge(
            "repro_serve_inflight_requests", "Requests currently being served"
        )
        self.cache_size = reg.gauge(
            "repro_serve_cache_entries", "Live recommendation cache entries"
        )
        self.store_version = reg.gauge(
            "repro_serve_store_version", "Result store snapshot version"
        )
        self.store_reloads = reg.gauge(
            "repro_serve_store_reloads_total", "Successful store hot reloads"
        )
        self.ingest_accepted_total = reg.counter(
            "repro_serve_ingest_accepted_total", "Uploads accepted as jobs"
        )
        self.ingest_rejected_total = reg.counter(
            "repro_serve_ingest_rejected_total", "Uploads rejected", ("reason",)
        )

    # -- dispatch ----------------------------------------------------------

    def blocking(self, request: Request) -> bool:
        """True when a request's handler does real work (decode + fsync)
        and the server should dispatch it off the event loop."""
        return (
            self.ingest is not None
            and request.method == "POST"
            and request.path.split("?", 1)[0] == "/v1/traces"
        )

    def handle(self, request: Request) -> Response:
        response = self._route(request)
        self.requests_total.inc(labels=(response.route, str(response.status)))
        return response

    def _route(self, request: Request) -> Response:
        path = request.path.split("?", 1)[0]
        if path == "/healthz":
            return self._only(request, "GET", "/healthz", self._handle_healthz)
        if path == "/metrics":
            return self._only(request, "GET", "/metrics", self._handle_metrics)
        if path == "/v1/services":
            return self._api(request, "GET", "/v1/services", self._handle_services)
        if path.startswith("/v1/services/"):
            slug = path[len("/v1/services/") :]
            return self._api(
                request,
                "GET",
                "/v1/services/{name}",
                lambda req, snap: self._handle_service_detail(req, snap, slug),
            )
        if path == "/v1/recommend":
            return self._api(request, "POST", "/v1/recommend", self._handle_recommend)
        if path == "/v1/traces":
            return self._ingest_api(request, "POST", "/v1/traces", self._handle_upload)
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/") :]
            if rest.endswith("/result") and "/" not in rest[: -len("/result")]:
                job_id = rest[: -len("/result")]
                return self._ingest_api(
                    request,
                    "GET",
                    "/v1/jobs/{id}/result",
                    lambda req: self._handle_job_result(req, job_id),
                )
            if rest and "/" not in rest:
                return self._ingest_api(
                    request,
                    "GET",
                    "/v1/jobs/{id}",
                    lambda req: self._handle_job_status(req, rest),
                )
        return error_response(404, f"no route for {path}", "other")

    def _ingest_api(self, request: Request, method: str, route: str, handler) -> Response:
        """Ingest path: method check + rate limit, no store snapshot.

        Job responses are versioned by the *job's* content ETag, not
        the result store's — an upload's result does not change when
        the precomputed store hot-reloads.
        """
        if self.ingest is None:
            return error_response(404, "ingest is disabled on this server", route)
        if request.method != method:
            return error_response(
                405, f"{route} supports {method} only", route, {"Allow": method}
            )
        if self.limiter is not None and not self.limiter.allow(request.client_id):
            self.ratelimit_dropped_total.inc()
            retry_after = max(1, round(self.limiter.retry_after(request.client_id)))
            return error_response(
                429, "rate limit exceeded", route, {"Retry-After": str(retry_after)}
            )
        return handler(request)

    def _only(self, request: Request, method: str, route: str, handler) -> Response:
        if request.method != method:
            return error_response(
                405, f"{route} supports {method} only", route, {"Allow": method}
            )
        return handler(request)

    def _api(self, request: Request, method: str, route: str, handler) -> Response:
        """Common API path: method check, hot reload, rate limit, ETag."""
        if request.method != method:
            return error_response(
                405, f"{route} supports {method} only", route, {"Allow": method}
            )
        if self.limiter is not None and not self.limiter.allow(request.client_id):
            self.ratelimit_dropped_total.inc()
            retry_after = max(1, round(self.limiter.retry_after(request.client_id)))
            return error_response(
                429, "rate limit exceeded", route, {"Retry-After": str(retry_after)}
            )
        snapshot = self.store.maybe_reload()
        etag = f'"{snapshot.etag}"'
        if method == "GET":
            if_none_match = request.headers.get("if-none-match", "")
            if etag in {tag.strip() for tag in if_none_match.split(",")}:
                response = Response(status=304, route=route, headers={"ETag": etag})
                return response
        response = handler(request, snapshot)
        response.headers.setdefault("ETag", etag)
        return response

    # -- handlers ----------------------------------------------------------

    def _handle_healthz(self, request: Request) -> Response:
        snapshot = self.store.maybe_reload()
        payload = {
            "status": "ok",
            "etag": snapshot.etag,
            "source": snapshot.source,
            "store_version": snapshot.version,
            "services": snapshot.service_count,
            "uptime_seconds": round(self._clock() - self._started_at, 3),
        }
        return json_response(200, payload, "/healthz", {"ETag": f'"{snapshot.etag}"'})

    def _handle_metrics(self, request: Request) -> Response:
        # Pull-style gauges are refreshed at scrape time.
        self.cache_size.set(len(self.cache))
        self.store_version.set(self.store.snapshot.version)
        self.store_reloads.set(self.store.reloads)
        cache_stats = self.cache.stats()
        self.cache_hits_total_sync(cache_stats)
        return Response(
            status=200,
            body=self.registry.render().encode("utf-8"),
            content_type=METRICS_TYPE,
            route="/metrics",
        )

    def cache_hits_total_sync(self, cache_stats: dict) -> None:
        """Mirror the cache's own counters into the exposition.

        The cache counts internally (it is also used without an app, by
        unit tests and the CLI); the exposition shows the cache's totals
        rather than double-counting on the request path.
        """
        current_hits = self.cache_hits_total.value()
        current_misses = self.cache_misses_total.value()
        self.cache_hits_total.inc(cache_stats["hits"] - current_hits)
        self.cache_misses_total.inc(cache_stats["misses"] - current_misses)

    def _handle_services(self, request: Request, snapshot: StoreSnapshot) -> Response:
        services = []
        for result in snapshot.study.services:
            spec = result.spec
            services.append(
                {
                    "service": spec.slug,
                    "name": spec.name,
                    "category": spec.category,
                    "rank": spec.rank,
                    "oses": sorted({os_name for os_name, _ in result.sessions}),
                    "leaks_via_app": result.leaked_via("app"),
                    "leaks_via_web": result.leaked_via("web"),
                }
            )
        payload = {"etag": snapshot.etag, "services": services}
        return json_response(200, payload, "/v1/services")

    def _handle_service_detail(
        self, request: Request, snapshot: StoreSnapshot, slug: str
    ) -> Response:
        route = "/v1/services/{name}"
        try:
            result = snapshot.study.by_slug(slug)
        except KeyError:
            return error_response(404, f"unknown service {slug!r}", route)
        cells = {
            f"{os_name}/{medium}": _summarize_cell(analysis)
            for (os_name, medium), analysis in sorted(result.sessions.items())
        }
        payload = {
            "etag": snapshot.etag,
            "service": result.spec.slug,
            "name": result.spec.name,
            "category": result.spec.category,
            "rank": result.spec.rank,
            "cells": cells,
        }
        return json_response(200, payload, route)

    def _handle_recommend(self, request: Request, snapshot: StoreSnapshot) -> Response:
        route = "/v1/recommend"
        if len(request.body) > MAX_BODY_BYTES:
            return error_response(413, "request body too large", route)
        try:
            data = json.loads(request.body.decode("utf-8")) if request.body.strip() else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return error_response(400, f"invalid JSON body: {exc}", route)
        if not isinstance(data, dict):
            return error_response(400, "body must be a JSON object", route)
        unknown = sorted(set(data) - {"os", "services", "preferences"})
        if unknown:
            return error_response(400, f"unknown field(s): {', '.join(unknown)}", route)

        os_name = data.get("os", "android")
        if os_name not in OSES:
            return error_response(
                400, f"unknown os {os_name!r} (valid: {', '.join(OSES)})", route
            )
        services = data.get("services")
        if services is not None:
            if not isinstance(services, list) or not all(
                isinstance(s, str) for s in services
            ):
                return error_response(400, "'services' must be a list of slugs", route)
            known = {result.spec.slug for result in snapshot.study.services}
            missing = sorted(set(services) - known)
            if missing:
                return error_response(
                    400, f"unknown service(s): {', '.join(missing)}", route
                )
        try:
            preferences = preferences_from_dict(data.get("preferences") or {})
        except ValueError as exc:
            return error_response(400, str(exc), route)

        cache_key = (
            snapshot.etag,
            os_name,
            tuple(services) if services else None,
            preferences_key(preferences),
        )
        body = self.cache.get(cache_key)
        cache_state = "hit"
        if body is None:
            cache_state = "miss"
            payload = recommend_payload(
                snapshot.study, preferences, os_name, services, etag=snapshot.etag
            )
            body = canonical_json(payload) + b"\n"
            self.cache.put(cache_key, body)
        return Response(
            status=200,
            body=body,
            route=route,
            headers={"X-Cache": cache_state},
        )

    # -- ingest handlers ---------------------------------------------------

    def _handle_upload(self, request: Request) -> Response:
        # Imported here, not at module top: repro.ingest.service imports
        # this module for canonical_json/recommend_payload.
        from ..ingest import IngestError, QueueFull, RateLimited, UploadTooLarge
        from ..net.codec import CodecError

        route = "/v1/traces"
        ingest = self.ingest
        if len(request.body) > ingest.max_upload_bytes:
            self.ingest_rejected_total.inc(labels=("too_large",))
            return error_response(
                413,
                f"upload of {len(request.body)} bytes exceeds "
                f"limit {ingest.max_upload_bytes}",
                route,
            )
        try:
            job = ingest.submit(request.body, tenant=request.client_id)
        except UploadTooLarge as exc:
            self.ingest_rejected_total.inc(labels=("too_large",))
            return error_response(413, str(exc), route)
        except (CodecError, IngestError) as exc:
            self.ingest_rejected_total.inc(labels=("invalid",))
            return error_response(400, str(exc), route)
        except RateLimited as exc:
            self.ingest_rejected_total.inc(labels=("rate",))
            retry_after = max(1, round(exc.retry_after))
            return error_response(
                429, str(exc), route, {"Retry-After": str(retry_after)}
            )
        except QueueFull as exc:
            scope = exc.scope
            self.ingest_rejected_total.inc(labels=(f"queue_{scope}",))
            status = 429 if scope == "tenant" else 503
            return error_response(
                status, str(exc), route, {"Retry-After": str(ingest.retry_after())}
            )
        self.ingest_accepted_total.inc()
        payload = {
            "job": job.job_id,
            "state": job.state,
            "tenant": job.tenant,
            "records": job.records,
            "etag": job.etag,
        }
        return json_response(
            202, payload, route, {"Location": f"/v1/jobs/{job.job_id}"}
        )

    def _handle_job_status(self, request: Request, job_id: str) -> Response:
        route = "/v1/jobs/{id}"
        status = self.ingest.job_status(job_id)
        if status is None:
            return error_response(404, f"unknown job {job_id!r}", route)
        return json_response(200, status, route)

    def _handle_job_result(self, request: Request, job_id: str) -> Response:
        from ..ingest import partial_result_payload

        route = "/v1/jobs/{id}/result"
        ingest = self.ingest
        job = ingest.store.load(job_id)
        if job is None:
            return error_response(404, f"unknown job {job_id!r}", route)
        if job.state == "failed":
            return error_response(409, f"job failed: {job.error}", route)
        if job.state != "done":
            # Incremental results; no ETag while the body is still moving.
            payload = partial_result_payload(job, ingest.store.load_results(job_id))
            return json_response(200, payload, route)
        etag = f'"{job.etag}"'
        if_none_match = request.headers.get("if-none-match", "")
        if etag in {tag.strip() for tag in if_none_match.split(",")}:
            return Response(status=304, route=route, headers={"ETag": etag})
        cache_key = ("job", job_id, job.etag)
        body = self.cache.get(cache_key)
        cache_state = "hit"
        if body is None:
            cache_state = "miss"
            body = ingest.store.result_bytes(job_id)
            if body is None:
                return error_response(503, "result not yet durable; retry", route)
            self.cache.put(cache_key, body)
        return Response(
            status=200,
            body=body,
            route=route,
            headers={"ETag": etag, "X-Cache": cache_state},
        )
