"""Minimal Prometheus text-exposition metrics (dependency-free).

Implements the three instrument kinds the serving layer needs —
counters, gauges, and fixed-bucket histograms, all with optional labels
— and renders them in the Prometheus text format (version 0.0.4) that
every scraper speaks.  One :class:`Registry` per server; instruments are
created up front and updated lock-protected on the hot path (a dict
lookup and a float add — cheap enough to sit on every request).
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional

#: Latency buckets (seconds) tuned for a local in-memory service: the
#: warm-cache path sits well under 1 ms, the cold scoring path in the
#: single-digit milliseconds, and the tail buckets catch stalls.
DEFAULT_LATENCY_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def _format_labels(labelnames: tuple, labelvalues: tuple) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape(value)}"' for name, value in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


def _escape(value) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


class _Metric:
    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: tuple = ()) -> None:
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._values: dict = {}  # labelvalues tuple -> float

    def _key(self, labelvalues: tuple) -> tuple:
        if len(labelvalues) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {labelvalues}"
            )
        return tuple(str(v) for v in labelvalues)

    def render(self) -> list:
        lines = [f"# HELP {self.name} {self.help_text}", f"# TYPE {self.name} {self.kind}"]
        with self._lock:
            for labelvalues in sorted(self._values):
                label_text = _format_labels(self.labelnames, labelvalues)
                lines.append(
                    f"{self.name}{label_text} {_format_value(self._values[labelvalues])}"
                )
        return lines


class Counter(_Metric):
    kind = "counter"

    def inc(self, amount: float = 1.0, labels: tuple = ()) -> None:
        key = self._key(tuple(labels))
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, labels: tuple = ()) -> float:
        with self._lock:
            return self._values.get(self._key(tuple(labels)), 0.0)


class Gauge(_Metric):
    kind = "gauge"

    def set(self, value: float, labels: tuple = ()) -> None:
        key = self._key(tuple(labels))
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, labels: tuple = ()) -> None:
        key = self._key(tuple(labels))
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, labels: tuple = ()) -> None:
        self.inc(-amount, labels)

    def value(self, labels: tuple = ()) -> float:
        with self._lock:
            return self._values.get(self._key(tuple(labels)), 0.0)


class Histogram(_Metric):
    """Cumulative fixed-bucket histogram (`*_bucket`/`*_sum`/`*_count`)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: tuple = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        # labelvalues -> [per-bucket counts..., +Inf count, sum]
        self._series: dict = {}

    def observe(self, value: float, labels: tuple = ()) -> None:
        key = self._key(tuple(labels))
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = [0] * (len(self.buckets) + 1) + [0.0]
                self._series[key] = series
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series[i] += 1
                    break
            else:
                series[len(self.buckets)] += 1
            series[-1] += value

    def count(self, labels: tuple = ()) -> int:
        with self._lock:
            series = self._series.get(self._key(tuple(labels)))
            return sum(series[:-1]) if series else 0

    def render(self) -> list:
        lines = [f"# HELP {self.name} {self.help_text}", f"# TYPE {self.name} {self.kind}"]
        with self._lock:
            for labelvalues in sorted(self._series):
                series = self._series[labelvalues]
                cumulative = 0
                for i, bound in enumerate(self.buckets):
                    cumulative += series[i]
                    label_text = _format_labels(
                        self.labelnames + ("le",), labelvalues + (_format_value(bound),)
                    )
                    lines.append(f"{self.name}_bucket{label_text} {cumulative}")
                cumulative += series[len(self.buckets)]
                inf_text = _format_labels(self.labelnames + ("le",), labelvalues + ("+Inf",))
                lines.append(f"{self.name}_bucket{inf_text} {cumulative}")
                label_text = _format_labels(self.labelnames, labelvalues)
                lines.append(f"{self.name}_sum{label_text} {_format_value(series[-1])}")
                lines.append(f"{self.name}_count{label_text} {cumulative}")
        return lines


class Registry:
    """Owns every instrument and renders the ``/metrics`` exposition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict = {}

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric):
                    raise ValueError(f"metric {metric.name} re-registered with new kind")
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(self, name: str, help_text: str, labelnames: tuple = ()) -> Counter:
        return self._register(Counter(name, help_text, labelnames))

    def gauge(self, name: str, help_text: str, labelnames: tuple = ()) -> Gauge:
        return self._register(Gauge(name, help_text, labelnames))

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: tuple = (),
        buckets: Optional[Iterable[float]] = None,
    ) -> Histogram:
        return self._register(
            Histogram(name, help_text, labelnames, buckets or DEFAULT_LATENCY_BUCKETS)
        )

    def render(self) -> str:
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"
