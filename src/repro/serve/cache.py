"""Preference-keyed LRU+TTL cache for recommendation responses.

Scoring a study is pure: the same (study ETag, OS, preference weights,
service filter) always produces the same response bytes, so the serving
layer caches the *serialized body* and a warm hit is one dict lookup —
no scoring, no JSON encoding.  The study ETag inside the key makes the
whole cache self-invalidating across store reloads without a flush.

Bounded two ways, as a shared-fate cache in a long-lived server must be:
LRU eviction caps memory, and a per-entry TTL caps how long a popular
key can pin pre-reload bytes that nothing will ever invalidate by key
(e.g. after the preference vocabulary itself changes).  Hit/miss/
eviction/expiry counts are kept for the ``/metrics`` exposition.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

DEFAULT_MAXSIZE = 4096
DEFAULT_TTL = 300.0


class LruTtlCache:
    """Thread-safe LRU with per-entry TTL and hit/miss accounting."""

    def __init__(
        self,
        maxsize: int = DEFAULT_MAXSIZE,
        ttl: float = DEFAULT_TTL,
        clock=time.monotonic,
    ) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        if ttl <= 0:
            raise ValueError("ttl must be > 0")
        self.maxsize = maxsize
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict = OrderedDict()  # key -> (expires_at, value)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key):
        """The cached value, or ``None`` on miss/expiry (which counts a miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            expires_at, value = entry
            if self._clock() >= expires_at:
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key, value) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (self._clock() + self.ttl, value)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "ttl": self.ttl,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
            }
