"""Asyncio HTTP/1.1 server lifecycle for the recommender service.

A deliberately small production shell around :class:`ServeApp`:

- **HTTP/1.1 with keep-alive** — request line + headers parsed from the
  stream, bodies framed by ``Content-Length`` (no chunked uploads; the
  API's bodies are tiny preference objects).
- **Bounded concurrency** — an ``asyncio.Semaphore`` of ``--workers``
  permits; excess requests queue in the kernel accept backlog instead
  of stampeding the scorer.
- **Request timeouts** — each dispatch runs under ``wait_for``; a stall
  returns 503 rather than wedging the connection slot forever.
- **Structured access logs** — one JSON object per request on the
  ``repro.serve.access`` logger (route, status, latency, bytes, client).
- **Graceful drain** — SIGTERM/SIGINT stop the listener, let in-flight
  requests finish (up to ``drain_timeout``), then close idle keep-alive
  connections.  In-flight responses are never dropped; this is pinned
  by ``tests/test_serve.py``.

:class:`BackgroundServer` runs the same server on a daemon thread for
tests, examples, and the load-generator benchmarks.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import threading
import time
from typing import Optional

from .app import Request, Response, ServeApp, error_response

access_log = logging.getLogger("repro.serve.access")

DEFAULT_MAX_CONCURRENCY = 64
DEFAULT_REQUEST_TIMEOUT = 10.0
DEFAULT_DRAIN_TIMEOUT = 10.0

#: Hard caps on the wire protocol (defense against garbage input).
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_COUNT = 64
MAX_BODY_BYTES = 1 * 1024 * 1024

_REASONS = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """Malformed HTTP from the client (connection gets 400 + close)."""


class PayloadTooLarge(ProtocolError):
    """Declared body over the server's cap (connection gets 413 + close)."""


async def _read_request(
    reader: asyncio.StreamReader, client: str, max_body_bytes: int = MAX_BODY_BYTES
) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on clean EOF."""
    line = await reader.readline()
    if not line:
        return None  # client closed between requests
    if len(line) > MAX_REQUEST_LINE:
        raise ProtocolError("request line too long")
    try:
        method, target, version = line.decode("latin-1").split()
    except ValueError:
        raise ProtocolError(f"malformed request line {line!r}") from None
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported protocol {version!r}")
    headers: dict = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            raise ProtocolError("connection closed mid-headers")
        if len(headers) >= MAX_HEADER_COUNT:
            raise ProtocolError("too many headers")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(f"malformed header {raw!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ProtocolError("bad Content-Length") from None
        if length < 0:
            raise ProtocolError("bad Content-Length")
        if length > max_body_bytes:
            raise PayloadTooLarge(
                f"declared body of {length} bytes exceeds limit {max_body_bytes}"
            )
        body = await reader.readexactly(length)
    return Request(method=method.upper(), path=target, headers=headers, body=body, client=client)


def _response_bytes(response: Response, keep_alive: bool) -> bytes:
    reason = _REASONS.get(response.status, "Unknown")
    lines = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(response.body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in response.headers.items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + response.body


class ServeServer:
    """One listening socket serving one :class:`ServeApp`."""

    def __init__(
        self,
        app: ServeApp,
        host: str = "127.0.0.1",
        port: int = 0,
        max_concurrency: int = DEFAULT_MAX_CONCURRENCY,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
        max_body_bytes: int = MAX_BODY_BYTES,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        self.app = app
        self.host = host
        self.port = port  # replaced with the bound port after start()
        self.max_concurrency = max_concurrency
        self.request_timeout = request_timeout
        self.drain_timeout = drain_timeout
        self.max_body_bytes = max_body_bytes
        self.requests_served = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._stopped: Optional[asyncio.Event] = None
        self._draining = False
        self._inflight = 0
        self._writers: set = set()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._semaphore = asyncio.Semaphore(self.max_concurrency)
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(self._serve_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self, install_signal_handlers: bool = False) -> None:
        """Run until :meth:`request_shutdown` (or SIGTERM/SIGINT) fires."""
        if self._server is None:
            await self.start()
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self.request_shutdown)
                except (NotImplementedError, ValueError):
                    pass  # non-main thread or platform without signal support
        assert self._stopped is not None
        await self._stopped.wait()

    def run(self, install_signal_handlers: bool = True) -> None:
        """Blocking entry point (the CLI's)."""
        asyncio.run(self.serve_until_shutdown(install_signal_handlers))

    def request_shutdown(self) -> None:
        """Begin graceful drain; safe to call from the event-loop thread."""
        if self._loop is None or self._draining:
            return
        self._draining = True
        self._loop.create_task(self._drain())

    def request_shutdown_threadsafe(self) -> None:
        """SIGTERM equivalent callable from any thread (tests, embedders)."""
        if self._loop is None:
            return
        try:
            self._loop.call_soon_threadsafe(self.request_shutdown)
        except RuntimeError:
            pass  # loop already exited: nothing left to drain

    async def _drain(self) -> None:
        # 1. Stop accepting new connections.
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # 2. Let in-flight requests finish writing their responses.
        assert self._loop is not None
        deadline = self._loop.time() + self.drain_timeout
        while self._inflight > 0 and self._loop.time() < deadline:
            await asyncio.sleep(0.005)
        # 3. Close surviving (idle keep-alive) connections.
        for writer in list(self._writers):
            writer.close()
        assert self._stopped is not None
        self._stopped.set()

    # -- connection handling ----------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        client = peer[0] if peer else "unknown"
        self._writers.add(writer)
        try:
            while not self._draining:
                try:
                    request = await _read_request(reader, client, self.max_body_bytes)
                except ProtocolError as exc:
                    status = 413 if isinstance(exc, PayloadTooLarge) else 400
                    response = error_response(status, str(exc), "other")
                    writer.write(_response_bytes(response, keep_alive=False))
                    await writer.drain()
                    return
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    return
                if request is None:
                    return
                # In-flight covers dispatch *and* the response write, so
                # a drain never closes a connection mid-response.
                self._inflight += 1
                self.app.inflight.inc()
                try:
                    keep_alive = self._keep_alive(request)
                    response = await self._dispatch(request)
                    if self._draining:
                        keep_alive = False
                    # Count before the write: write() can send() to the
                    # socket directly, and send releases the GIL — a
                    # client may read the whole response and observe the
                    # counter before a post-write increment ever runs.
                    self.requests_served += 1
                    writer.write(_response_bytes(response, keep_alive=keep_alive))
                    await writer.drain()
                finally:
                    self._inflight -= 1
                    self.app.inflight.dec()
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    def _keep_alive(request: Request) -> bool:
        return request.headers.get("connection", "keep-alive").lower() != "close"

    async def _dispatch(self, request: Request) -> Response:
        assert self._semaphore is not None
        async with self._semaphore:  # bounded concurrency
            started = time.perf_counter()
            try:
                response = await asyncio.wait_for(
                    self._call_handler(request), timeout=self.request_timeout
                )
            except asyncio.TimeoutError:
                response = error_response(503, "request timed out", "other")
            except Exception as exc:  # a handler bug must not kill the connection task
                access_log.exception("handler error")
                response = error_response(500, f"internal error: {type(exc).__name__}", "other")
            elapsed = time.perf_counter() - started
        self.app.request_seconds.observe(elapsed, labels=(response.route,))
        self._log_access(request, response, elapsed)
        return response

    async def _call_handler(self, request: Request) -> Response:
        if self.app.handler_delay > 0:
            await asyncio.sleep(self.app.handler_delay)
        # Handlers the app marks as blocking (upload admission: decode,
        # validate, fsync) run on a thread so they stall only their own
        # request, not every connection multiplexed on the event loop.
        blocking = getattr(self.app, "blocking", None)
        if blocking is not None and blocking(request):
            assert self._loop is not None
            return await self._loop.run_in_executor(None, self.app.handle, request)
        return self.app.handle(request)

    def _log_access(self, request: Request, response: Response, elapsed: float) -> None:
        if not access_log.isEnabledFor(logging.INFO):
            return
        access_log.info(
            "%s",
            json.dumps(
                {
                    "ts": round(time.time(), 3),
                    "client": request.client,
                    "method": request.method,
                    "path": request.path,
                    "route": response.route,
                    "status": response.status,
                    "bytes": len(response.body),
                    "latency_ms": round(elapsed * 1000, 3),
                },
                sort_keys=True,
            ),
        )


class BackgroundServer:
    """Context manager running a :class:`ServeServer` on a daemon thread.

    The thread owns its own event loop; ``__enter__`` blocks until the
    socket is bound (so ``server.port`` is real), ``__exit__`` performs
    the same graceful drain SIGTERM would.
    """

    def __init__(self, app: ServeApp, **server_kwargs) -> None:
        self.server = ServeServer(app, **server_kwargs)
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    def _run(self) -> None:
        async def main() -> None:
            try:
                await self.server.start()
            except BaseException as exc:  # surface bind errors to the caller
                self._error = exc
                self._ready.set()
                raise
            self._ready.set()
            await self.server.serve_until_shutdown(install_signal_handlers=False)

        try:
            asyncio.run(main())
        except BaseException:
            if not self._ready.is_set():
                self._ready.set()

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(target=self._run, name="repro-serve", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise self._error
        if not self._ready.is_set():
            raise RuntimeError("server failed to start within 30s")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def shutdown(self, join_timeout: float = 30.0) -> None:
        self.server.request_shutdown_threadsafe()
        if self._thread is not None:
            self._thread.join(timeout=join_timeout)

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host
