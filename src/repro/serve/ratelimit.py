"""Per-client token-bucket rate limiting.

Each client (the ``X-Client-Id`` header when present, else the peer
address) owns one bucket of ``burst`` tokens refilled continuously at
``rate`` tokens/second; a request spends one token or is rejected with
429.  Refill is computed lazily from elapsed time on each ``allow``
call, so an idle limiter costs nothing.

The client table is itself LRU-bounded: an open service sees an
unbounded universe of client identifiers, and a limiter that grows one
dict entry per spoofed ID is a memory DoS — evicting the
least-recently-seen bucket at worst *re-grants* a stale client its
burst, which is the safe failure direction.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

DEFAULT_MAX_CLIENTS = 4096


class RateLimiter:
    """Token buckets keyed by client id."""

    def __init__(
        self,
        rate: float,
        burst: int,
        max_clients: int = DEFAULT_MAX_CLIENTS,
        clock=time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0 tokens/second")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_clients = max_clients
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: OrderedDict = OrderedDict()  # client -> [tokens, updated_at]
        self.allowed = 0
        self.dropped = 0

    def allow(self, client: str) -> bool:
        """Spend one token for ``client``; ``False`` means reject (429)."""
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = [self.burst, now]
                self._buckets[client] = bucket
                while len(self._buckets) > self.max_clients:
                    self._buckets.popitem(last=False)
            else:
                tokens, updated_at = bucket
                bucket[0] = min(self.burst, tokens + (now - updated_at) * self.rate)
                bucket[1] = now
                self._buckets.move_to_end(client)
            if bucket[0] >= 1.0:
                bucket[0] -= 1.0
                self.allowed += 1
                return True
            self.dropped += 1
            return False

    def retry_after(self, client: str) -> float:
        """Seconds until ``client`` earns its next token (for Retry-After)."""
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                return 0.0
            deficit = 1.0 - bucket[0]
            return max(0.0, deficit / self.rate)

    def stats(self) -> dict:
        with self._lock:
            return {
                "clients": len(self._buckets),
                "rate": self.rate,
                "burst": self.burst,
                "allowed": self.allowed,
                "dropped": self.dropped,
            }
