"""Versioned study store: the serving layer's source of truth.

A :class:`ResultStore` owns one result directory and keeps the fully
analyzed :class:`~repro.core.pipeline.StudyResult` built from it in
memory.  Two on-disk formats are accepted, matching the two ways this
codebase persists a campaign:

- a **dataset directory** written by ``Dataset.save`` (``repro collect``)
  — detected by its ``manifest.json``;
- a **streaming checkpoint directory** written by ``repro stream
  --checkpoint-dir`` — detected by its ``journal.jsonl``, whose events
  are folded back into a dataset without touching the journal (a serving
  process must never mutate a capture artifact).

Every load produces an immutable :class:`StoreSnapshot` carrying the
study plus a content-derived ETag; handlers read ``store.snapshot`` once
per request, so a concurrent reload can never hand a request half of an
old study and half of a new one.  Hot reload rides on the repo-wide
atomic-write discipline: writers replace ``manifest.json`` /
``journal.jsonl`` via :func:`repro.ioutil.atomic_write_text`, so a
changed :func:`repro.ioutil.file_fingerprint` always means a complete
new artifact is on disk, and :meth:`ResultStore.maybe_reload` swaps the
snapshot in one reference assignment.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..core.pipeline import StudyResult, analyze_dataset
from ..experiment.dataset import Dataset, SessionRecord
from ..ioutil import file_fingerprint
from ..net.trace import SessionMeta, Trace
from ..services.catalog import build_catalog
from ..stream.bus import FLOW, SESSION_END, SESSION_START, event_from_dict
from ..stream.checkpoint import JOURNAL_NAME

MANIFEST_NAME = "manifest.json"

#: Store source kinds (what :attr:`StoreSnapshot.source` reports).
SOURCE_DATASET = "dataset"
SOURCE_JOURNAL = "journal"


class StoreError(Exception):
    """Raised when a result directory is missing, malformed, or unknown."""


@dataclass(frozen=True)
class StoreSnapshot:
    """One immutable, fully analyzed view of the result directory."""

    study: StudyResult
    etag: str
    version: int  # monotonically increasing per reload
    source: str  # SOURCE_DATASET | SOURCE_JOURNAL
    fingerprint: tuple  # file_fingerprint of the source artifact
    loaded_at: float

    @property
    def service_count(self) -> int:
        return len(self.study.services)


def _read_journal_events(path: Path):
    """Yield journaled events read-only (tolerating a torn final line).

    Reads bytes: a concurrent writer can be torn mid-way through a
    multi-byte UTF-8 character, which must end the iteration like any
    other torn tail rather than raise ``UnicodeDecodeError``.
    """
    with path.open("rb") as handle:
        for raw in handle:
            if not raw.endswith(b"\n"):
                break  # torn final write still in progress
            raw = raw.strip()
            if not raw:
                continue
            try:
                data = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                break  # torn tail from a crash mid-append
            yield event_from_dict(data)


def dataset_from_journal(path: Union[str, Path]) -> Dataset:
    """Fold a streaming flow journal back into a :class:`Dataset`.

    The journal records the exact capture stream (session_start with
    ground truth, flows in capture order, session_end), so the rebuilt
    dataset analyzes identically to the one the stream was fed from.
    Sessions missing their ``session_end`` (killed mid-capture) are
    dropped — a checkpointed resume would re-stream them anyway.
    """
    path = Path(path)
    dataset = Dataset()
    key: Optional[tuple] = None
    meta: Optional[SessionMeta] = None
    ground_truth: dict = {}
    flows: list = []
    for event in _read_journal_events(path):
        if event.kind == SESSION_START:
            key = event.session
            meta = event.meta
            ground_truth = event.ground_truth or {}
            flows = []
        elif event.kind == SESSION_END and key is not None:
            service, os_name, medium = key
            trace_meta = meta or SessionMeta(service=service, os_name=os_name, medium=medium)
            dataset.add(
                SessionRecord(
                    service=service,
                    os_name=os_name,
                    medium=medium,
                    trace=Trace(meta=trace_meta, flows=flows),
                    ground_truth=ground_truth,
                    duration=trace_meta.duration,
                )
            )
            key = None
        elif event.kind == FLOW and key is not None:
            flows.append(event.flow)
    return dataset


def _content_etag(path: Path) -> str:
    """Strong ETag from the source artifact's bytes.

    Content-derived (not mtime-derived) so that re-saving identical
    results keeps client caches valid across a reload.
    """
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()[:16]


class ResultStore:
    """Loads, versions, and hot-reloads one result directory."""

    def __init__(
        self,
        directory: Union[str, Path],
        services: Optional[list] = None,
        train_recon: bool = False,
        workers: int = 1,
        check_interval: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        self.directory = Path(directory)
        self._services = services
        self._train_recon = train_recon
        self._workers = workers
        self.check_interval = check_interval
        self._clock = clock
        self._reload_lock = threading.Lock()
        self._version = 0
        self._last_check = float("-inf")
        self.reloads = 0  # successful swaps after the initial load
        self._snapshot = self._build()

    # -- reading -----------------------------------------------------------

    @property
    def snapshot(self) -> StoreSnapshot:
        """The current snapshot (grab once per request)."""
        return self._snapshot

    # -- loading -----------------------------------------------------------

    def _source(self) -> tuple:
        manifest = self.directory / MANIFEST_NAME
        if manifest.exists():
            return SOURCE_DATASET, manifest
        journal = self.directory / JOURNAL_NAME
        if journal.exists():
            return SOURCE_JOURNAL, journal
        raise StoreError(
            f"{self.directory} holds neither a dataset ({MANIFEST_NAME}) "
            f"nor a streaming checkpoint ({JOURNAL_NAME})"
        )

    def _specs_for(self, dataset: Dataset) -> list:
        slugs = set(dataset.services())
        pool = self._services if self._services is not None else build_catalog()
        specs = [spec for spec in pool if spec.slug in slugs]
        missing = sorted(slugs - {spec.slug for spec in specs})
        if missing:
            raise StoreError(
                f"result directory references unknown service(s): {', '.join(missing)}"
            )
        return specs

    def _build(self) -> StoreSnapshot:
        source, path = self._source()
        fingerprint = file_fingerprint(path)
        if source == SOURCE_DATASET:
            dataset = Dataset.load(self.directory)
        else:
            dataset = dataset_from_journal(path)
        if len(dataset) == 0:
            raise StoreError(f"{path} contains no complete sessions")
        specs = self._specs_for(dataset)
        study = analyze_dataset(
            dataset, specs, train_recon=self._train_recon, workers=self._workers
        )
        self._version += 1
        return StoreSnapshot(
            study=study,
            etag=_content_etag(path),
            version=self._version,
            source=source,
            fingerprint=fingerprint,
            loaded_at=self._clock(),
        )

    def reload(self) -> StoreSnapshot:
        """Rebuild from disk and atomically swap the snapshot in."""
        with self._reload_lock:
            snapshot = self._build()
            self._snapshot = snapshot  # single reference swap: readers see old xor new
            self.reloads += 1
            return snapshot

    def maybe_reload(self) -> StoreSnapshot:
        """Reload iff the source artifact changed; rate-limited by stat.

        Called on the request path: the common case is one ``os.stat``
        every ``check_interval`` seconds, nothing else.  A reload that
        fails (e.g. the directory is mid-rewrite on a non-atomic writer)
        keeps serving the previous snapshot.
        """
        now = self._clock()
        if now - self._last_check < self.check_interval:
            return self._snapshot
        self._last_check = now
        try:
            _, path = self._source()
            if file_fingerprint(path) == self._snapshot.fingerprint:
                return self._snapshot
            return self.reload()
        except (StoreError, OSError, json.JSONDecodeError, KeyError, ValueError):
            return self._snapshot
