"""Closed-loop HTTP load generator for the serving benchmarks.

``concurrency`` worker threads each hold one keep-alive connection and
issue requests back-to-back — the next request leaves only when the
previous response has fully arrived (closed-loop, so the measured
latency distribution is honest rather than coordinated-omission-prone).
Per-request wall latencies feed the p50/p99 numbers ``make bench-serve``
records into ``BENCH_serve.json``.

The client is a raw-socket HTTP/1.1 implementation rather than
``http.client`` to keep per-request overhead (object churn, header
re-parsing) out of the measurement loop.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class LoadReport:
    """What one closed-loop run measured."""

    requests: int
    errors: int
    elapsed: float
    latencies_ms: list = field(default_factory=list, repr=False)
    status_counts: dict = field(default_factory=dict)

    @property
    def rps(self) -> float:
        return self.requests / self.elapsed if self.elapsed > 0 else 0.0

    def percentile(self, q: float) -> float:
        """Latency percentile in milliseconds (q in [0, 100])."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[index]

    @property
    def p50_ms(self) -> float:
        return self.percentile(50)

    @property
    def p99_ms(self) -> float:
        return self.percentile(99)

    @property
    def mean_ms(self) -> float:
        return sum(self.latencies_ms) / len(self.latencies_ms) if self.latencies_ms else 0.0

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "elapsed_s": round(self.elapsed, 4),
            "rps": round(self.rps, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "mean_ms": round(self.mean_ms, 3),
            "status_counts": dict(self.status_counts),
        }


class _Connection:
    """One persistent connection speaking just enough HTTP/1.1."""

    def __init__(self, host: str, port: int, timeout: float) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._buffer = b""

    def _connect(self) -> None:
        self._sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._buffer = b""

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def _read_line(self) -> bytes:
        while b"\r\n" not in self._buffer:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed connection")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\r\n", 1)
        return line

    def _read_exact(self, length: int) -> bytes:
        while len(self._buffer) < length:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed connection mid-body")
            self._buffer += chunk
        body, self._buffer = self._buffer[:length], self._buffer[length:]
        return body

    def request(self, method: str, path: str, body: bytes, headers: dict) -> tuple:
        """Send one request; return ``(status, body, retry_after)``.
        Reconnects once on a keep-alive race."""
        if self._sock is None:
            self._connect()
        lines = [f"{method} {path} HTTP/1.1", f"Host: {self.host}:{self.port}"]
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        if body:
            lines.append(f"Content-Length: {len(body)}")
        message = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
        try:
            self._sock.sendall(message)
            return self._read_response()
        except (ConnectionError, socket.timeout, OSError):
            # Keep-alive race (server closed an idle connection): retry
            # once on a fresh socket before reporting an error.
            self.close()
            self._connect()
            self._sock.sendall(message)
            return self._read_response()

    def _read_response(self) -> tuple:
        status_line = self._read_line()
        status = int(status_line.split(b" ", 2)[1])
        content_length = 0
        close_after = False
        retry_after = None
        while True:
            line = self._read_line()
            if not line:
                break
            name, _, value = line.partition(b":")
            name = name.strip().lower()
            if name == b"content-length":
                content_length = int(value.strip())
            elif name == b"connection" and value.strip().lower() == b"close":
                close_after = True
            elif name == b"retry-after":
                try:
                    retry_after = float(value.strip())
                except ValueError:
                    retry_after = None
        body = self._read_exact(content_length)
        if close_after:
            self.close()
        return status, body, retry_after


def run_load(
    host: str,
    port: int,
    method: str = "POST",
    path: str = "/v1/recommend",
    body: bytes = b"{}",
    headers: Optional[dict] = None,
    concurrency: int = 4,
    requests: int = 1000,
    warmup: int = 50,
    timeout: float = 10.0,
    backoff_cap_s: float = 0.0,
    stop: Optional[threading.Event] = None,
) -> LoadReport:
    """Drive the server closed-loop and measure what came back.

    ``warmup`` requests run first (on one connection, excluded from
    every statistic) so steady-state numbers aren't polluted by cold
    caches or lazy imports.  The measured ``requests`` are then split
    across ``concurrency`` worker threads.

    ``backoff_cap_s`` > 0 makes the client honor backpressure the way
    the API contract intends: after a 429/503 it sleeps the server's
    Retry-After hint, capped at ``backoff_cap_s`` (sleep time never
    enters the latency samples).  With ``stop`` set, workers ignore
    ``requests`` and run until the event fires — the mixed-load
    harness uses this for background classes that must span the
    foreground measurement window exactly.
    """
    base_headers = {"Connection": "keep-alive"}
    if body:
        base_headers["Content-Type"] = "application/json"
    base_headers.update(headers or {})

    if warmup > 0:
        conn = _Connection(host, port, timeout)
        try:
            for _ in range(warmup):
                conn.request(method, path, body, base_headers)
        finally:
            conn.close()

    shares = [requests // concurrency] * concurrency
    for i in range(requests % concurrency):
        shares[i] += 1
    if stop is not None:
        shares = [1] * concurrency  # share is ignored; spawn every worker

    lock = threading.Lock()
    latencies: list = []
    status_counts: dict = {}
    errors = [0]

    def worker(share: int) -> None:
        conn = _Connection(host, port, timeout)
        local_latencies = []
        local_counts: dict = {}
        local_errors = 0
        sent = 0
        try:
            while (sent < share) if stop is None else not stop.is_set():
                sent += 1
                started = time.perf_counter()
                try:
                    status, _body, retry_after = conn.request(
                        method, path, body, base_headers
                    )
                except (ConnectionError, socket.timeout, OSError):
                    local_errors += 1
                    conn.close()
                    continue
                local_latencies.append((time.perf_counter() - started) * 1000.0)
                local_counts[status] = local_counts.get(status, 0) + 1
                if backoff_cap_s > 0 and status in (429, 503):
                    delay = min(retry_after or backoff_cap_s, backoff_cap_s)
                    if stop is not None:
                        stop.wait(delay)
                    else:
                        time.sleep(delay)
        finally:
            conn.close()
        with lock:
            latencies.extend(local_latencies)
            for status, count in local_counts.items():
                status_counts[status] = status_counts.get(status, 0) + count
            errors[0] += local_errors

    threads = [
        threading.Thread(target=worker, args=(share,), daemon=True)
        for share in shares
        if share > 0
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    return LoadReport(
        requests=len(latencies),
        errors=errors[0],
        elapsed=elapsed,
        latencies_ms=latencies,
        status_counts=status_counts,
    )


@dataclass(frozen=True)
class WorkloadClass:
    """One request class inside a mixed closed-loop run.

    A *foreground* class (the default) issues the run's full request
    count and its completion defines the measurement window.  A
    ``background=True`` class instead loops for exactly as long as the
    foreground classes are running — the natural shape for "measure
    reads while ingest runs continuously", where pre-sizing a request
    count would either cut the pressure short or outlive the window.

    ``backoff_cap_s`` > 0 makes the class honor Retry-After on 429/503
    (capped) — a protocol-correct client rather than one that hammers
    a saturated endpoint at line rate.  ``warmup`` overrides the run's
    warmup count for this class (uploads want a couple of requests, not
    fifty).
    """

    name: str
    method: str
    path: str
    body: bytes = b""
    headers: dict = field(default_factory=dict)
    concurrency: int = 1
    background: bool = False
    backoff_cap_s: float = 0.0
    warmup: Optional[int] = None


def run_mixed_load(
    host: str,
    port: int,
    classes: list,
    requests: int = 1000,
    warmup: int = 50,
    timeout: float = 10.0,
) -> dict:
    """Drive several request classes concurrently; report each separately.

    Each :class:`WorkloadClass` gets its own closed-loop worker threads
    (``concurrency`` per class), all running over the same wall-clock
    window; ``requests`` is the per-foreground-class total, split across
    that class's workers.  Background classes start first and are
    stopped when the last foreground class finishes, so they span the
    measurement window exactly.  Returns ``{class_name: LoadReport}`` —
    this is how ``make bench-ingest`` measures read-path latency *under*
    concurrent upload traffic rather than in isolation.
    """
    reports: dict = {}
    lock = threading.Lock()
    stop = threading.Event()

    def run_class(cls: WorkloadClass) -> None:
        headers = {"Connection": "keep-alive"}
        headers.update(cls.headers)
        if cls.body and "Content-Type" not in headers:
            headers["Content-Type"] = "application/json"
        report = run_load(
            host,
            port,
            method=cls.method,
            path=cls.path,
            body=cls.body,
            headers=headers,
            concurrency=cls.concurrency,
            requests=requests,
            warmup=warmup if cls.warmup is None else cls.warmup,
            timeout=timeout,
            backoff_cap_s=cls.backoff_cap_s,
            stop=stop if cls.background else None,
        )
        with lock:
            reports[cls.name] = report

    foreground = [
        threading.Thread(target=run_class, args=(cls,), daemon=True)
        for cls in classes
        if not cls.background
    ]
    background = [
        threading.Thread(target=run_class, args=(cls,), daemon=True)
        for cls in classes
        if cls.background
    ]
    for thread in background:
        thread.start()
    for thread in foreground:
        thread.start()
    for thread in foreground:
        thread.join()
    stop.set()
    for thread in background:
        thread.join()
    return reports
