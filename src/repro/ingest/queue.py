"""Bounded per-tenant admission queues with reject-not-block backpressure.

The streaming bus (:mod:`repro.stream.bus`) bounds its per-shard queues
and makes the *publisher* block when a shard falls behind — correct for
an in-process pipeline that owns both ends.  An open upload endpoint
cannot block: a slow analysis backlog would wedge every connection slot
behind one tenant.  :class:`TenantQueue` keeps the same bounded-FIFO
discipline but converts "full" into an immediate, typed rejection
(:class:`QueueFull`) that the HTTP layer maps to 429 (this tenant's
queue is full) or 503 (the whole service is saturated) with a
Retry-After estimate.

Admission is two-phase so a job is never queued before it is durable:
:meth:`TenantQueue.reserve` claims capacity under the lock *before* the
job store writes anything, and :meth:`TenantQueue.push` publishes the
job id only after the upload and its journal entry hit disk (a failed
persist calls :meth:`TenantQueue.cancel` to release the claim).
Workers :meth:`TenantQueue.take` jobs round-robin across tenants, so
one tenant's deep queue cannot starve another's single job.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Optional, Tuple

DEFAULT_PER_TENANT = 8
DEFAULT_TOTAL = 64


class QueueFull(Exception):
    """Admission rejected: ``scope`` is ``"tenant"`` (429) or ``"global"`` (503)."""

    def __init__(self, scope: str, message: str) -> None:
        super().__init__(message)
        self.scope = scope


class TenantQueue:
    """Round-robin FIFO of job ids, bounded per tenant and overall."""

    def __init__(
        self,
        per_tenant: int = DEFAULT_PER_TENANT,
        total: int = DEFAULT_TOTAL,
    ) -> None:
        if per_tenant < 1:
            raise ValueError("per_tenant must be >= 1")
        if total < 1:
            raise ValueError("total must be >= 1")
        self.per_tenant = per_tenant
        self.total = total
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        # tenant -> reserved-slot count (reserved or queued, not yet taken)
        self._counts: dict = {}
        self._pending = 0
        # tenant -> deque of pushed job ids; OrderedDict preserves the
        # round-robin rotation order across take() calls.
        self._queues: "OrderedDict[str, deque]" = OrderedDict()
        self.accepted = 0
        self.rejected_tenant = 0
        self.rejected_global = 0

    # -- admission ---------------------------------------------------------

    def check(self, tenant: str) -> None:
        """Raise :class:`QueueFull` if a reserve would be rejected.

        The cheap load-shedding gate the service runs *before* paying
        to decode an upload: when the system is saturated, rejection
        must cost near nothing.  Racy by design — capacity seen here
        can vanish before :meth:`reserve`, which re-checks under the
        same rules and is the only call that claims a slot.
        """
        with self._lock:
            if self._pending >= self.total:
                self.rejected_global += 1
                raise QueueFull(
                    "global", f"ingest queue full ({self._pending}/{self.total} jobs)"
                )
            count = self._counts.get(tenant, 0)
            if count >= self.per_tenant:
                self.rejected_tenant += 1
                raise QueueFull(
                    "tenant",
                    f"tenant {tenant!r} queue full ({count}/{self.per_tenant} jobs)",
                )

    def reserve(self, tenant: str) -> None:
        """Claim one slot for ``tenant`` or raise :class:`QueueFull`."""
        with self._lock:
            if self._pending >= self.total:
                self.rejected_global += 1
                raise QueueFull(
                    "global", f"ingest queue full ({self._pending}/{self.total} jobs)"
                )
            count = self._counts.get(tenant, 0)
            if count >= self.per_tenant:
                self.rejected_tenant += 1
                raise QueueFull(
                    "tenant",
                    f"tenant {tenant!r} queue full ({count}/{self.per_tenant} jobs)",
                )
            self._counts[tenant] = count + 1
            self._pending += 1

    def cancel(self, tenant: str) -> None:
        """Release a reservation whose job never got persisted."""
        with self._lock:
            self._release(tenant)

    def push(self, tenant: str, job_id: str) -> None:
        """Publish a reserved, durably-stored job to the workers."""
        with self._lock:
            queue = self._queues.get(tenant)
            if queue is None:
                queue = deque()
                self._queues[tenant] = queue
            queue.append(job_id)
            self.accepted += 1
            self._ready.notify()

    def restore(self, tenant: str, job_id: str) -> None:
        """Requeue a recovered job, bypassing the admission bounds.

        Recovery must never drop jobs that were already accepted before
        a crash, even if the configured bounds shrank in between.
        """
        with self._lock:
            self._counts[tenant] = self._counts.get(tenant, 0) + 1
            self._pending += 1
            queue = self._queues.get(tenant)
            if queue is None:
                queue = deque()
                self._queues[tenant] = queue
            queue.append(job_id)
            self._ready.notify()

    # -- consumption -------------------------------------------------------

    def take(self, timeout: float = 0.0) -> Optional[Tuple[str, str]]:
        """Pop the next ``(tenant, job_id)`` round-robin, or ``None``.

        Waits up to ``timeout`` seconds for a job to be pushed; a zero
        timeout polls.
        """
        with self._lock:
            if not self._queues and timeout > 0:
                self._ready.wait(timeout)
            if not self._queues:
                return None
            tenant, queue = next(iter(self._queues.items()))
            job_id = queue.popleft()
            # Rotate: move the tenant to the back (or drop it if empty)
            # so take() cycles fairly across tenants with queued work.
            del self._queues[tenant]
            if queue:
                self._queues[tenant] = queue
            self._release(tenant)
            return tenant, job_id

    def _release(self, tenant: str) -> None:
        count = self._counts.get(tenant, 0)
        if count <= 1:
            self._counts.pop(tenant, None)
        else:
            self._counts[tenant] = count - 1
        self._pending = max(0, self._pending - 1)

    # -- introspection -----------------------------------------------------

    def pending(self) -> int:
        """Jobs reserved or queued but not yet taken by a worker."""
        with self._lock:
            return self._pending

    def stats(self) -> dict:
        with self._lock:
            return {
                "pending": self._pending,
                "tenants": len(self._counts),
                "per_tenant": self.per_tenant,
                "total": self.total,
                "accepted": self.accepted,
                "rejected_tenant": self.rejected_tenant,
                "rejected_global": self.rejected_global,
            }
