"""Crash-safe on-disk state for ingest analysis jobs.

Layout under the ingest root::

    journal.jsonl            append-only job transitions, in wall order
    jobs/<id>/upload.bin     the framed upload, exactly as received
    jobs/<id>/job.json       authoritative job state (atomic replace)
    jobs/<id>/results.jsonl  one line per analyzed record index
    jobs/<id>/result.json    final response bytes (atomic replace)

Durability follows the PR 5 discipline: every whole-file write goes
through :func:`repro.ioutil.atomic_write_bytes` (temp sibling +
``os.replace``), and both append-only files are read tolerantly — a
torn or garbage tail (the crash left a partial line) is dropped, never
propagated.  The journal is the recovery index: replaying it restores
submission order so requeued jobs run in the sequence they were
accepted; ``job.json`` is the authoritative per-job state because it is
replaced atomically on every transition.  A job directory that never
made it into the journal (crash between the two writes) is still
recovered, ordered by its sequence number.

Re-running an interrupted job is safe by construction: analysis is a
pure function of the record, so a record index already present in
``results.jsonl`` is skipped on resume and the final assembled bytes
are identical whether the job ran once or was killed and resumed.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..ioutil import atomic_write_bytes, atomic_write_json

JOB_STATES = ("queued", "running", "done", "failed")

#: etag length mirrors the result store's content ETags.
_ETAG_HEX = 16


class JobStoreError(Exception):
    """Raised on malformed job ids or unusable store state."""


@dataclass(frozen=True)
class Job:
    """One accepted upload (immutable snapshot of ``job.json``)."""

    job_id: str
    tenant: str
    state: str
    records: int
    etag: str
    seq: int
    error: str = ""

    def to_dict(self) -> dict:
        return {
            "job": self.job_id,
            "tenant": self.tenant,
            "state": self.state,
            "records": self.records,
            "etag": self.etag,
            "seq": self.seq,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        return cls(
            job_id=data["job"],
            tenant=data["tenant"],
            state=data["state"],
            records=int(data["records"]),
            etag=data["etag"],
            seq=int(data["seq"]),
            error=data.get("error", ""),
        )


def _read_jsonl_tolerant(path: Path) -> List[dict]:
    """Parse a JSONL file, dropping any torn or garbage tail.

    Every writer appends whole ``\\n``-terminated lines, so a valid
    prefix is always recoverable; parsing stops at the first line that
    is unterminated or fails to parse (a crash or a torn-tail fault
    left it behind).
    """
    try:
        data = path.read_bytes()
    except OSError:
        return []
    events = []
    for line in data.split(b"\n"):
        if not line.strip():
            continue
        try:
            event = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        if not isinstance(event, dict):
            break
        events.append(event)
    return events


class JobStore:
    """Directory-backed job persistence (thread-safe through atomicity).

    Callers serialize per-job transitions (one worker owns a job at a
    time); cross-job operations only touch the shared journal through
    appends of whole lines.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.root / "journal.jsonl"
        self._seq = 0
        for event in _read_jsonl_tolerant(self.journal_path):
            try:
                self._seq = max(self._seq, int(event.get("seq", 0)))
            except (TypeError, ValueError):
                continue
        # A crash between job.json and the journal append can leave a
        # directory whose seq the journal never saw.
        for job in self._scan_jobs():
            self._seq = max(self._seq, job.seq)

    # -- paths -------------------------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        if "/" in job_id or "\\" in job_id or job_id in (".", ".."):
            raise JobStoreError(f"invalid job id {job_id!r}")
        return self.jobs_dir / job_id

    # -- creation ----------------------------------------------------------

    def create(self, tenant: str, blob: bytes, records: int) -> Job:
        """Durably register a validated upload as a queued job."""
        self._seq += 1
        digest = hashlib.sha256(blob).hexdigest()
        job = Job(
            job_id=f"{self._seq:08d}-{digest[:12]}",
            tenant=tenant,
            state="queued",
            records=records,
            etag=digest[:_ETAG_HEX],
            seq=self._seq,
        )
        directory = self.job_dir(job.job_id)
        directory.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(directory / "upload.bin", blob)
        atomic_write_json(directory / "job.json", job.to_dict())
        self._journal(job)
        return job

    def _journal(self, job: Job) -> None:
        line = json.dumps(
            {"seq": job.seq, "job": job.job_id, "tenant": job.tenant, "state": job.state},
            sort_keys=True,
        )
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    # -- state -------------------------------------------------------------

    def load(self, job_id: str) -> Optional[Job]:
        try:
            path = self.job_dir(job_id) / "job.json"
        except JobStoreError:
            return None
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            return Job.from_dict(data)
        except (OSError, ValueError, KeyError):
            return None

    def transition(self, job: Job, state: str, error: str = "") -> Job:
        if state not in JOB_STATES:
            raise JobStoreError(f"unknown job state {state!r}")
        updated = replace(job, state=state, error=error)
        atomic_write_json(self.job_dir(job.job_id) / "job.json", updated.to_dict())
        self._journal(updated)
        return updated

    # -- per-record results ------------------------------------------------

    def append_result(self, job: Job, index: int, analysis: dict) -> None:
        """Durably record one analyzed record (the resume unit)."""
        line = json.dumps({"index": index, "analysis": analysis}, sort_keys=True)
        path = self.job_dir(job.job_id) / "results.jsonl"
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load_results(self, job_id: str) -> Dict[int, dict]:
        """Analyzed records so far, by index (torn tail dropped)."""
        results: Dict[int, dict] = {}
        for event in _read_jsonl_tolerant(self.job_dir(job_id) / "results.jsonl"):
            try:
                results[int(event["index"])] = event["analysis"]
            except (KeyError, TypeError, ValueError):
                break
        return results

    # -- payloads ----------------------------------------------------------

    def upload_blob(self, job_id: str) -> bytes:
        return (self.job_dir(job_id) / "upload.bin").read_bytes()

    def write_result(self, job: Job, body: bytes) -> None:
        atomic_write_bytes(self.job_dir(job.job_id) / "result.json", body)

    def result_bytes(self, job_id: str) -> Optional[bytes]:
        try:
            return (self.job_dir(job_id) / "result.json").read_bytes()
        except OSError:
            return None

    # -- garbage collection ------------------------------------------------

    def sweep(self, ttl: float, now: Optional[float] = None) -> List[str]:
        """Prune finished jobs older than ``ttl`` seconds; returns the
        swept job ids.

        Age is the ``job.json`` mtime — the file is atomically replaced
        on every transition, so it marks when the job last changed
        state.  Only terminal jobs (``done``/``failed``) are eligible:
        queued and running jobs are never swept, whatever their age.
        The whole job directory (upload blob, per-record results, final
        result bytes) is removed; the journal is untouched — recovery
        already tolerates journal entries whose directory is gone.
        """
        import shutil
        import time

        if ttl <= 0:
            return []
        cutoff = (time.time() if now is None else now) - ttl
        swept: List[str] = []
        for job in self._scan_jobs():
            if job.state not in ("done", "failed"):
                continue
            directory = self.job_dir(job.job_id)
            try:
                mtime = (directory / "job.json").stat().st_mtime
            except OSError:
                continue
            if mtime > cutoff:
                continue
            shutil.rmtree(directory, ignore_errors=True)
            swept.append(job.job_id)
        return swept

    # -- recovery ----------------------------------------------------------

    def _scan_jobs(self) -> List[Job]:
        jobs = []
        try:
            entries = sorted(self.jobs_dir.iterdir())
        except OSError:
            return jobs
        for entry in entries:
            job = self.load(entry.name)
            if job is not None:
                jobs.append(job)
        return jobs

    def recover(self) -> List[Job]:
        """Jobs accepted but not finished, in submission order.

        Each returned job has been reset to ``queued``; the caller
        requeues them.  Order comes from the journal first (tolerant of
        a torn tail), then any journal-less directories by sequence.
        """
        order: List[str] = []
        seen = set()
        for event in _read_jsonl_tolerant(self.journal_path):
            job_id = event.get("job")
            if isinstance(job_id, str) and job_id not in seen:
                seen.add(job_id)
                order.append(job_id)
        extras = [job for job in self._scan_jobs() if job.job_id not in seen]
        recovered = []
        for job_id in order:
            job = self.load(job_id)
            if job is not None and job.state in ("queued", "running"):
                recovered.append(job)
        recovered.extend(
            job for job in sorted(extras, key=lambda j: j.seq)
            if job.state in ("queued", "running")
        )
        return [self.transition(job, "queued") for job in recovered]
