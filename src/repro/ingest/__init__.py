"""Analysis-as-a-service: trace uploads through the serving layer.

The serving layer (:mod:`repro.serve`) reads precomputed results; this
package is the write path that turns it into a multi-tenant analysis
service — the deployment shape of ReCon's user-facing analyzer and
PrivacyProxy's crowdsourced upload model.  ``POST /v1/traces`` accepts
a codec-framed session record or bundle, admission is bounded per
tenant with reject-not-block backpressure, jobs persist crash-safely,
analysis fans out on a :mod:`repro.par` executor, and the completed
result's bytes are pinned identical to the offline pipeline on the same
records (see DESIGN §5j).

========================   ==================================================
``POST /v1/traces``        upload a framed record/bundle -> 202 + job id
``GET /v1/jobs/{id}``      job state + per-record progress
``GET /v1/jobs/{id}/result``  incremental results, or the final bytes + ETag
========================   ==================================================
"""

from .jobs import Job, JobStore, JobStoreError
from .queue import QueueFull, TenantQueue
from .service import (
    IngestError,
    IngestService,
    RateLimited,
    UploadTooLarge,
    WorkerCrash,
    assemble_study,
    decode_upload,
    job_result_payload,
    partial_result_payload,
)

__all__ = [
    "IngestError",
    "IngestService",
    "Job",
    "JobStore",
    "JobStoreError",
    "QueueFull",
    "RateLimited",
    "TenantQueue",
    "UploadTooLarge",
    "WorkerCrash",
    "assemble_study",
    "decode_upload",
    "job_result_payload",
    "partial_result_payload",
]
