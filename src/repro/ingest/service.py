"""The ingest engine: uploads in, byte-pinned analysis results out.

:class:`IngestService` is the server's second execution engine — where
:mod:`repro.serve` otherwise reads precomputed results, this accepts a
codec-framed upload (a single session record or a bundle of them),
parks it durably in a :class:`~repro.ingest.jobs.JobStore`, fans the
per-record analysis onto a :mod:`repro.par` executor, and assembles the
final response with the exact same functions the offline pipeline uses.
The contract, pinned by ``tests/test_ingest.py`` and the QA oracle: the
result bytes for an uploaded dataset are identical to running
``analyze_dataset`` offline on the same records, for every executor
backend, and across a kill/restart mid-job.

Admission is all-or-nothing.  An upload is decoded and validated
*before* any state is created — a malformed blob, unknown service, or
duplicate session key raises and leaves no trace — and capacity is
reserved on the :class:`~repro.ingest.queue.TenantQueue` before the
job store writes, so a rejected upload can never occupy disk and a
persisted job can never be over quota.

Draining (SIGTERM) is cooperative at record granularity: a worker
finishes the record in flight, parks the job (state back to ``queued``
with its per-record progress journaled), and exits; the next service
instance requeues parked jobs in submission order and skips the records
already analyzed.  Because each record's analysis is a pure function,
the resumed job's bytes match an uninterrupted run.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Dict, List, Optional, Union

from ..core.pipeline import ServiceResult, SessionAnalysis, StudyResult
from ..core.recommend import PrivacyPreferences
from ..experiment.dataset import OSES, APP, WEB
from ..net import codec
from ..net.codec import CodecError
from ..par import resolve_executor
from ..serve.app import canonical_json, recommend_payload
from ..serve.ratelimit import RateLimiter
from .jobs import Job, JobStore
from .queue import QueueFull, TenantQueue

DEFAULT_MAX_UPLOAD_BYTES = 8 * 1024 * 1024
DEFAULT_MAX_RECORDS = 512

#: Retry-After clamp (seconds) for 429/503 rejections.
MIN_RETRY_AFTER = 1
MAX_RETRY_AFTER = 60


class IngestError(Exception):
    """Invalid upload content (maps to 400; no job was registered)."""


class UploadTooLarge(IngestError):
    """Upload body over the configured cap (maps to 413)."""


class RateLimited(Exception):
    """Per-tenant submission rate exceeded (maps to 429)."""

    def __init__(self, retry_after: float) -> None:
        super().__init__("tenant submission rate exceeded")
        self.retry_after = retry_after


class WorkerCrash(Exception):
    """Test/chaos hook: simulate a worker dying mid-job (no cleanup)."""


def decode_upload(body: bytes) -> list:
    """Decode a framed upload into its session records (strict).

    Accepts a framed ``KIND_RECORD`` (one session) or ``KIND_BUNDLE``
    (many); anything else — bare blobs included — is a
    :class:`CodecError`.  Strictness is what makes the 400 mapping
    total: a mutated byte either still decodes to a valid upload or
    fails here, before any job state exists.
    """
    if len(body) < codec.HEADER_SIZE or not codec.is_binary(body):
        raise CodecError("upload is not a codec-framed blob (bad magic)")
    kind = body[len(codec.MAGIC) + 1]
    if kind == codec.KIND_RECORD:
        return [codec.decode_record(codec.unframe(body, codec.KIND_RECORD, "<upload>"))]
    if kind == codec.KIND_BUNDLE:
        return codec.decode_bundle(codec.unframe(body, codec.KIND_BUNDLE, "<upload>"))
    raise CodecError(
        f"<upload>: payload kind {kind} is not uploadable "
        f"(expected record {codec.KIND_RECORD} or bundle {codec.KIND_BUNDLE})"
    )


def assemble_study(records: list, analyses: list, specs: list) -> StudyResult:
    """Mirror of :func:`analyze_dataset`'s assembly tail.

    Same grouping, same cell keys, same service ordering (catalog spec
    order) — this is the half of the byte-identity contract that lives
    on the result side.
    """
    by_slug = {spec.slug: spec for spec in specs}
    results: dict = {}
    for record, analysis in zip(records, analyses):
        result = results.get(record.service)
        if result is None:
            result = ServiceResult(spec=by_slug[record.service])
            results[record.service] = result
        result.sessions[(record.os_name, record.medium)] = analysis
    ordered = [results[spec.slug] for spec in specs if spec.slug in results]
    return StudyResult(services=ordered, dataset=None, recon=None)


def job_result_payload(job_id: str, etag: str, records: int, study: StudyResult) -> dict:
    """The completed-job response payload.

    ``analyses`` carries every cell's full analysis;
    ``recommendations`` reuses :func:`repro.serve.app.recommend_payload`
    under default preferences per OS present in the upload, with an
    empty inner etag — so extracting that section re-serializes to the
    exact bytes an offline ``repro recommend --json`` prints for the
    same study (the CI smoke diff).
    """
    analyses = {
        f"{a.service}|{a.os_name}|{a.medium}": a.to_dict() for a in study.analyses()
    }
    oses = sorted(
        {os_name for result in study.services for (os_name, _medium) in result.sessions}
    )
    recommendations = {
        os_name: recommend_payload(study, PrivacyPreferences(), os_name, etag="")
        for os_name in oses
    }
    return {
        "job": job_id,
        "etag": etag,
        "state": "done",
        "records": records,
        "analyses": analyses,
        "recommendations": recommendations,
    }


def partial_result_payload(job: Job, results: Dict[int, dict]) -> dict:
    """Incremental results for a queued/running job."""
    analyses = {}
    for payload in results.values():
        key = f"{payload.get('service')}|{payload.get('os_name')}|{payload.get('medium')}"
        analyses[key] = payload
    return {
        "job": job.job_id,
        "etag": job.etag,
        "state": job.state,
        "records": job.records,
        "done_records": len(results),
        "analyses": analyses,
    }


class IngestService:
    """Accepts uploads, runs them through the executor, serves results."""

    def __init__(
        self,
        root,
        executor: Union[str, None] = "serial",
        workers: int = 1,
        specs: Optional[list] = None,
        per_tenant: int = 8,
        max_queued: int = 64,
        tenant_rate: float = 0.0,
        tenant_burst: int = 0,
        max_upload_bytes: int = DEFAULT_MAX_UPLOAD_BYTES,
        max_records: int = DEFAULT_MAX_RECORDS,
        pace: float = 2.0,
        ttl_seconds: float = 0.0,
        clock=time.monotonic,
    ) -> None:
        self.store = JobStore(root)
        self.queue = TenantQueue(per_tenant=per_tenant, total=max_queued)
        self.engine = resolve_executor(executor or "serial", workers)
        self.max_upload_bytes = max_upload_bytes
        self.max_records = max_records
        #: Background-worker niceness: after each job a worker sleeps
        #: ``pace`` times the job's wall time (capped), bounding its GIL
        #: duty cycle to ~1/(1+pace) so interactive reads on the serving
        #: event loop keep latency priority over batch analysis.  Only
        #: the :meth:`start` worker loop paces; :meth:`run_pending`
        #: (tests, CLI one-shots) always runs flat out.
        self.pace = pace
        #: Job TTL in seconds (0 = keep forever): finished jobs older
        #: than this are pruned from disk by :meth:`sweep` — run
        #: opportunistically by the background worker loop between jobs.
        self.ttl_seconds = ttl_seconds
        self._last_sweep = 0.0
        self._clock = clock
        self.limiter = None
        if tenant_rate > 0:
            self.limiter = RateLimiter(
                rate=tenant_rate,
                burst=tenant_burst or max(1, int(tenant_rate)),
                clock=clock,
            )
        self._catalog = specs  # None = resolve lazily from the full catalog
        self._pool = None  # persistent process pool (process executor only)
        # job_id -> decoded records, handed from admission to the worker
        # so the hot path decodes an upload once.  Entries are popped as
        # jobs are taken; recovery paths re-decode from the stored blob.
        self._hot: Dict[str, list] = {}
        self._threads: List[threading.Thread] = []
        self._draining = threading.Event()
        self._lock = threading.Lock()
        self._job_seconds = 0.0  # EWMA of wall seconds per completed job
        self.jobs_done = 0
        self.jobs_failed = 0
        self.jobs_parked = 0
        #: Chaos hook: raise :class:`WorkerCrash` after this many records
        #: of the *current* job have been analyzed (None = never).
        self.crash_after: Optional[int] = None
        for job in self.store.recover():
            self.queue.restore(job.tenant, job.job_id)

    # -- admission ---------------------------------------------------------

    def _spec_pool(self) -> list:
        if self._catalog is None:
            from ..services.catalog import build_catalog

            self._catalog = build_catalog()
        return self._catalog

    def _validate(self, records: list) -> None:
        if not records:
            raise IngestError("upload contains no session records")
        if len(records) > self.max_records:
            raise IngestError(
                f"upload has {len(records)} records (limit {self.max_records})"
            )
        known = {spec.slug for spec in self._spec_pool()}
        seen = set()
        for record in records:
            if record.service not in known:
                raise IngestError(f"unknown service {record.service!r}")
            if record.os_name not in OSES:
                raise IngestError(f"unknown os {record.os_name!r}")
            if record.medium not in (APP, WEB):
                raise IngestError(f"unknown medium {record.medium!r}")
            key = record.key
            if key in seen:
                raise IngestError(f"duplicate session {key}")
            seen.add(key)

    def submit(self, body: bytes, tenant: str = "local") -> Job:
        """Validate, durably register, and queue one upload.

        A saturated queue is checked *first*, before the size cap and
        the decode: shedding overload must cost near nothing, so a full
        queue answers 429/503 without paying to parse the body (an
        invalid upload sent while saturated is backpressured, not
        400'd).  With capacity available the order is decode/validate
        (400s), then rate limit (429), then the real reservation —
        persistence happens last, so no rejected upload ever leaves a
        partially-registered job behind.
        """
        self.queue.check(tenant)
        if len(body) > self.max_upload_bytes:
            raise UploadTooLarge(
                f"upload of {len(body)} bytes exceeds limit {self.max_upload_bytes}"
            )
        records = decode_upload(body)
        self._validate(records)
        if self.limiter is not None and not self.limiter.allow(tenant):
            raise RateLimited(self.limiter.retry_after(tenant))
        self.queue.reserve(tenant)
        try:
            job = self.store.create(tenant, body, len(records))
        except BaseException:
            self.queue.cancel(tenant)
            raise
        with self._lock:
            self._hot[job.job_id] = records
        self.queue.push(job.tenant, job.job_id)
        return job

    def retry_after(self) -> int:
        """Backpressure hint: EWMA job seconds x queue depth / workers."""
        with self._lock:
            per_job = self._job_seconds
        pending = max(1, self.queue.pending())
        workers = max(1, self.engine.workers)
        estimate = (per_job or 1.0) * pending / workers
        return max(MIN_RETRY_AFTER, min(MAX_RETRY_AFTER, round(estimate)))

    # -- execution ---------------------------------------------------------

    def run_pending(self, max_jobs: Optional[int] = None) -> int:
        """Synchronously drain the queue (tests, oracle, CLI one-shots)."""
        done = 0
        while max_jobs is None or done < max_jobs:
            item = self.queue.take()
            if item is None:
                break
            self._process(item[0], item[1])
            done += 1
        return done

    def start(self, threads: int = 1) -> None:
        """Spawn background worker threads feeding off the queue.

        Worker coordination (upload decode, executor IPC, result
        assembly) is pure Python and competes with the serving event
        loop for the GIL.  At the default 5 ms switch interval one busy
        worker holds the GIL long enough to multiply sub-millisecond
        read latencies several-fold, so background workers drop the
        interval to 0.5 ms — bounding any single GIL slice and keeping
        read p50 within the bench-ingest interference budget.
        """
        sys.setswitchinterval(min(sys.getswitchinterval(), 0.0005))
        for index in range(threads):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-ingest-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def sweep(self) -> List[str]:
        """Prune finished jobs past :attr:`ttl_seconds`; swept job ids.

        A swept job's status and result answer 404 afterwards — the
        TTL is the retention contract, so expiry is indistinguishable
        from the job never having existed.  No-op when the TTL is 0.
        """
        if self.ttl_seconds <= 0:
            return []
        # No lock: only terminal jobs are eligible, and no worker ever
        # touches a done/failed job's directory again.
        return self.store.sweep(self.ttl_seconds)

    def _worker_loop(self) -> None:
        while True:
            if self._draining.is_set():
                return
            item = self.queue.take(timeout=0.1)
            if item is None:
                # Idle moment: at most one GC pass per TTL interval.
                if self.ttl_seconds > 0:
                    now = time.monotonic()
                    if now - self._last_sweep >= self.ttl_seconds:
                        self._last_sweep = now
                        self.sweep()
                continue
            started = time.monotonic()
            try:
                self._process(item[0], item[1])
            except WorkerCrash:
                return  # the simulated crash kills this worker thread
            if self.pace > 0:
                pause = min(self.pace * (time.monotonic() - started), 0.25)
                self._draining.wait(pause)  # wakes early on shutdown

    def shutdown(self, timeout: float = 10.0) -> None:
        """Graceful drain: finish the record in flight, park, join."""
        self._draining.set()
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        self._threads = []
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    def _analyze_stream(self, records: list, specs: list):
        """Per-record analyses for one job, streaming in record order.

        The batch executors create a fresh process pool per map call —
        right for one big offline map, ruinous for a stream of small
        jobs, where the per-job ``fork`` both dominates job latency and
        periodically stalls the serving event loop.  The process
        backend therefore runs over one long-lived pool, created on
        first use and initialized with the *full* spec pool
        (``analyze_blob`` resolves each record's spec by slug, so every
        job's subset is covered); serial/thread engines stream as-is.
        """
        if self.engine.name != "process" or not records:
            return self.engine.imap_analyze(records, specs, None)
        from ..par import tasks
        from ..par.executor import _mp_context, _stream_windowed

        with self._lock:
            if self._pool is None:
                from concurrent.futures import ProcessPoolExecutor

                self._pool = ProcessPoolExecutor(
                    max_workers=self.engine.workers,
                    mp_context=_mp_context(),
                    initializer=tasks.init_worker,
                    initargs=(list(self._spec_pool()), None),
                )
            pool = self._pool
        blobs = [codec.encode_record(record) for record in records]
        return (
            SessionAnalysis.from_dict(payload)
            for payload in _stream_windowed(
                pool, tasks.analyze_blob, blobs, self.engine.workers * 2
            )
        )

    def _specs_for(self, records: list) -> list:
        slugs = {record.service for record in records}
        return [spec for spec in self._spec_pool() if spec.slug in slugs]

    def _process(self, tenant: str, job_id: str) -> None:
        job = self.store.load(job_id)
        if job is None or job.state in ("done", "failed"):
            return
        started = self._clock()
        try:
            job = self.store.transition(job, "running")
            with self._lock:
                records = self._hot.pop(job_id, None)
            if records is None:  # recovered or parked job: decode from disk
                records = decode_upload(self.store.upload_blob(job_id))
            specs = self._specs_for(records)
            existing = self.store.load_results(job_id)
            todo = [
                (index, record)
                for index, record in enumerate(records)
                if index not in existing
            ]
            processed = 0
            analyses = self._analyze_stream(
                [record for _index, record in todo], specs
            )
            for (index, _record), analysis in zip(todo, analyses):
                self.store.append_result(job, index, analysis.to_dict())
                processed += 1
                if self.crash_after is not None and processed >= self.crash_after:
                    raise WorkerCrash(f"injected crash after {processed} record(s)")
                if self._draining.is_set() and processed < len(todo):
                    self.store.transition(job, "queued")
                    self.jobs_parked += 1
                    return
            self._finish(job, records, specs)
            elapsed = self._clock() - started
            with self._lock:
                self._job_seconds = (
                    elapsed
                    if self._job_seconds == 0.0
                    else 0.8 * self._job_seconds + 0.2 * elapsed
                )
                self.jobs_done += 1
        except WorkerCrash:
            raise  # leave the job 'running' with partial results, like a real crash
        except Exception as exc:
            self.store.transition(job, "failed", error=f"{type(exc).__name__}: {exc}")
            with self._lock:
                self.jobs_failed += 1

    def _finish(self, job: Job, records: list, specs: list) -> None:
        # Reload every per-record analysis from the journal rather than
        # keeping them in memory: the resumed-after-crash path *must*
        # read from disk, so the uninterrupted path reads from disk too
        # and the two can never diverge.
        results = self.store.load_results(job.job_id)
        analyses = [SessionAnalysis.from_dict(results[i]) for i in range(len(records))]
        study = assemble_study(records, analyses, specs)
        payload = job_result_payload(job.job_id, job.etag, len(records), study)
        self.store.write_result(job, canonical_json(payload) + b"\n")
        self.store.transition(job, "done")

    # -- queries -----------------------------------------------------------

    def job_status(self, job_id: str) -> Optional[dict]:
        job = self.store.load(job_id)
        if job is None:
            return None
        status = job.to_dict()
        status["done_records"] = (
            job.records if job.state == "done" else len(self.store.load_results(job_id))
        )
        return status

    def stats(self) -> dict:
        with self._lock:
            done, failed, parked = self.jobs_done, self.jobs_failed, self.jobs_parked
        return {
            "queue": self.queue.stats(),
            "jobs_done": done,
            "jobs_failed": failed,
            "jobs_parked": parked,
            "executor": self.engine.name,
            "workers": self.engine.workers,
        }
