"""Combined PII detection over captured traces.

§3.2's three-step recipe, end to end:

1. run the ReCon classifier to flag likely PII in each request,
2. augment with direct string matching of known (ground-truth) values
   under common encodings,
3. manually verify ReCon predictions against ground truth and drop the
   false positives.

The output is a list of :class:`PiiObservation` records — one per
(transaction, PII type) — that the leak policy in
:mod:`repro.core.leaks` then classifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..net.flow import Flow, HttpTransaction
from ..net.trace import Trace
from ..trackerdb.psl import domain_key
from . import encodings
from .matcher import GroundTruthMatcher
from .recon import ReconClassifier
from .types import PiiType

MATCHING = "matching"
RECON = "recon"


@dataclass
class PiiObservation:
    """One PII type observed in one captured transaction."""

    pii_type: PiiType
    hostname: str
    domain: str
    url: str
    timestamp: float
    flow_id: int
    plaintext: bool  # True when the flow was unencrypted HTTP
    methods: set = field(default_factory=set)  # detection methods that fired
    encoding: str = ""
    key: str = ""
    value: str = ""

    @property
    def detected_by_both(self) -> bool:
        return MATCHING in self.methods and RECON in self.methods

    def to_dict(self) -> dict:
        return {
            "type": self.pii_type.value,
            "hostname": self.hostname,
            "domain": self.domain,
            "url": self.url,
            "timestamp": self.timestamp,
            "flow_id": self.flow_id,
            "plaintext": self.plaintext,
            "methods": sorted(self.methods),
            "encoding": self.encoding,
            "key": self.key,
            "value": self.value,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PiiObservation":
        return cls(
            pii_type=PiiType(data["type"]),
            hostname=data["hostname"],
            domain=data["domain"],
            url=data["url"],
            timestamp=data["timestamp"],
            flow_id=data["flow_id"],
            plaintext=bool(data["plaintext"]),
            methods=set(data.get("methods", [])),
            encoding=data.get("encoding", ""),
            key=data.get("key", ""),
            value=data.get("value", ""),
        )


@dataclass
class DetectionReport:
    """Everything detection produced for one trace."""

    observations: list = field(default_factory=list)
    recon_false_positives: int = 0  # predictions removed by verification
    transactions_scanned: int = 0
    flows_skipped_opaque: int = 0

    def types(self) -> set:
        return {obs.pii_type for obs in self.observations}

    def domains(self) -> set:
        return {obs.domain for obs in self.observations}


class PiiDetector:
    """Runs matching + ReCon + verification over traces."""

    def __init__(
        self,
        matcher: GroundTruthMatcher,
        recon: Optional[ReconClassifier] = None,
        verify_recon: bool = True,
    ) -> None:
        self.matcher = matcher
        self.recon = recon
        self.verify_recon = verify_recon
        # Verification index: encoded form -> PiiType
        self._verification: dict = {}
        for form, info in self.matcher._forms.items():
            self._verification[form] = info[0]

    def _verify(self, pii_type: PiiType, value: str) -> bool:
        """Check a ReCon-extracted value against ground truth.

        This is the stand-in for the authors' manual verification pass:
        with ground truth in hand, a prediction whose extracted value
        matches no known encoding of the type's values is a false
        positive.
        """
        if not value:
            return False
        candidates = (value, value.lower())
        for candidate in candidates:
            found = self._verification.get(candidate)
            if found == pii_type:
                return True
        # Location values verify within GPS tolerance via the matcher.
        if pii_type == PiiType.LOCATION:
            return any(
                m.pii_type == PiiType.LOCATION for m in self.matcher.match_text(value)
            )
        return False

    def scan_transaction(self, flow: Flow, txn: HttpTransaction) -> tuple:
        """Detect PII in one transaction.

        Returns ``(observations, recon_false_positives)``.
        """
        merged: dict = {}
        plaintext = flow.scheme == "http"
        host = flow.hostname

        for match in self.matcher.match_request(txn.request):
            obs = merged.get(match.pii_type)
            if obs is None:
                obs = PiiObservation(
                    pii_type=match.pii_type,
                    hostname=host,
                    domain=domain_key(host),
                    url=txn.request.url,
                    timestamp=txn.timestamp,
                    flow_id=flow.flow_id,
                    plaintext=plaintext,
                    encoding=match.encoding,
                    key=match.key,
                    value=match.value,
                )
                merged[match.pii_type] = obs
            obs.methods.add(MATCHING)
            if match.key and not obs.key:
                obs.key = match.key

        false_positives = 0
        if self.recon is not None:
            for prediction in self.recon.predict(txn.request):
                verified = not self.verify_recon or self._verify(
                    prediction.pii_type, prediction.extracted_value
                )
                already = prediction.pii_type in merged
                if not verified and not already:
                    false_positives += 1
                    continue
                obs = merged.get(prediction.pii_type)
                if obs is None:
                    obs = PiiObservation(
                        pii_type=prediction.pii_type,
                        hostname=host,
                        domain=domain_key(host),
                        url=txn.request.url,
                        timestamp=txn.timestamp,
                        flow_id=flow.flow_id,
                        plaintext=plaintext,
                        encoding="predicted",
                        key=prediction.extracted_key,
                        value=prediction.extracted_value,
                    )
                    merged[prediction.pii_type] = obs
                obs.methods.add(RECON)
        return (list(merged.values()), false_positives)

    def scan_trace(self, trace: Trace) -> DetectionReport:
        """Detect PII across every decrypted transaction in a trace."""
        report = DetectionReport()
        for flow in trace:
            if not flow.decrypted:
                report.flows_skipped_opaque += 1
                continue
            for txn in flow.transactions:
                report.transactions_scanned += 1
                observations, false_positives = self.scan_transaction(flow, txn)
                report.observations.extend(observations)
                report.recon_false_positives += false_positives
        return report
