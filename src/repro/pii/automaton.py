"""Pure-python Aho–Corasick automaton for multi-pattern literal search.

The ground-truth matcher needs to answer, per captured request, "which of
the ~10² encoded PII forms occur in this text?".  The seed implementation
scanned once per form (O(forms × text)); the automaton answers the whole
question in a single pass over the text (O(text + hits)), which is what
lets detection run at proxy line rate (PrivacyProxy does the same
per-request scan inline).

Two implementation notes:

- The scan walks the classic goto/fail trie.  Construction deliberately
  does *not* pre-resolve failure transitions into a dense DFA: the trie
  holds one node per pattern character (hash digests make that thousands
  of nodes per matcher), and copying a transition dict per node costs
  more than every walk the matcher will ever do — texts are scanned once
  and memoized above this layer.
- Because the overwhelmingly common case is *no* hit at all, ``find_all``
  first prescreens with the patterns' prefix shingles (first
  :data:`SHINGLE` chars, deduplicated): any occurrence of a pattern is
  also an occurrence of its shingle, so if no shingle occurs in the text
  — a handful of C-speed ``in`` probes — no pattern does, and the walk
  is skipped entirely.  Long pure-hex patterns (hash digests, the bulk
  of every ground-truth set) and long pure-digit patterns (IMEI-style
  identifiers) are screened as one group by a single character-class
  regex probe instead of one shingle each.  In the measured corpus ~96% of scanned texts
  contain no PII, so the prescreen, not the walk, is the hot loop; a
  substring probe per shingle beats both a compiled regex alternation
  (which re-verifies every alternative at every offset) and the
  pure-python walk by an order of magnitude.  The walk itself reports
  every occurrence, including overlapping ones a non-overlapping regex
  scan would miss.
"""

from __future__ import annotations

import re
from collections import deque
from typing import Iterable, Iterator, Tuple

# Prescreen shingle width: long enough to be selective, short enough
# that short patterns still contribute a usable prefix.
SHINGLE = 8

# Hash digests (md5/sha1/sha256 hex) dominate the pattern set — every
# ground-truth value contributes several — and long numeric identifiers
# (IMEI/IMSI-style) add more.  Both groups are pure character-class
# runs, so a single regex scan prescreens all of them at once instead
# of one probe per pattern.
_CLASS_RE = re.compile(r"[0-9a-f]{32}|[0-9]{15}")
_HEX_CHARS = frozenset("0123456789abcdef")
_DIGIT_CHARS = frozenset("0123456789")


class AhoCorasick:
    """Multi-pattern literal matcher built once, scanned many times.

    ``find_all(text)`` returns the set of distinct patterns occurring in
    ``text`` (the boolean-per-pattern semantics the matcher needs);
    ``iter_matches(text)`` yields every ``(start, pattern)`` occurrence,
    overlaps included.  Matching is exact (case-sensitive); callers that
    want case-insensitive search pass lowered patterns and lowered text.
    """

    def __init__(self, patterns: Iterable[str]) -> None:
        # Deduplicate, preserve insertion order, drop empties.
        self.patterns: Tuple[str, ...] = tuple(
            p for p in dict.fromkeys(patterns) if p
        )
        goto: list = [{}]
        out: list = [()]
        for pattern in self.patterns:
            node = 0
            for char in pattern:
                nxt = goto[node].get(char)
                if nxt is None:
                    goto.append({})
                    out.append(())
                    nxt = len(goto) - 1
                    goto[node][char] = nxt
                node = nxt
            out[node] = out[node] + (pattern,)

        # BFS: failure links and merged outputs.
        fail = [0] * len(goto)
        queue = deque(goto[0].values())
        while queue:
            node = queue.popleft()
            fallback = fail[node]
            if out[fallback]:
                out[node] = out[node] + out[fallback]
            for char, nxt in goto[node].items():
                state = fallback
                while state and char not in goto[state]:
                    state = fail[state]
                fail[nxt] = goto[state].get(char, 0)
                queue.append(nxt)
        self._goto = goto
        self._fail = fail
        self._out = out
        # Patterns that are pure 32+ char hex runs or pure 15+ digit
        # runs are screened together by _CLASS_RE; everything else gets
        # an individual prefix shingle.
        plain = [
            p
            for p in self.patterns
            if not (
                (len(p) >= 32 and _HEX_CHARS.issuperset(p))
                or (len(p) >= 15 and _DIGIT_CHARS.issuperset(p))
            )
        ]
        self._has_class_runs = len(plain) != len(self.patterns)
        self._shingles: Tuple[str, ...] = tuple(
            sorted({p[:SHINGLE] for p in plain})
        )

    def __len__(self) -> int:
        return len(self.patterns)

    def find_all(self, text: str) -> set:
        """Distinct patterns occurring anywhere in ``text``."""
        # map() keeps the probe loop in C; any() stops on the first hit.
        if not any(map(text.__contains__, self._shingles)) and not (
            self._has_class_runs and _CLASS_RE.search(text)
        ):
            # No shingle and no class run (long hex / long digit string)
            # occur, so no pattern does: exact negative.
            return set()
        found: set = set()
        state = 0
        goto = self._goto
        fail = self._fail
        out = self._out
        remaining = len(self.patterns)
        for char in text:
            while state and char not in goto[state]:
                state = fail[state]
            state = goto[state].get(char, 0)
            if out[state]:
                found.update(out[state])
                if len(found) == remaining:
                    break
        return found

    def iter_matches(self, text: str) -> Iterator:
        """Yield ``(start, pattern)`` for every occurrence, overlaps too."""
        state = 0
        goto = self._goto
        fail = self._fail
        out = self._out
        for index, char in enumerate(text):
            while state and char not in goto[state]:
                state = fail[state]
            state = goto[state].get(char, 0)
            for pattern in out[state]:
                yield (index - len(pattern) + 1, pattern)
