"""PII taxonomy.

The ten identifier classes tracked throughout the paper (Table 1's
"Leaked Identifiers" columns, Table 3's rows): Birthday, Device info,
Email address, Gender, Location, Name, Phone #, Username, PassWord, and
Unique IDentifiers.
"""

from __future__ import annotations

from enum import Enum


class PiiType(str, Enum):
    """One of the paper's ten personally-identifiable-information classes."""

    BIRTHDAY = "birthday"
    DEVICE_INFO = "device_info"
    EMAIL = "email"
    GENDER = "gender"
    LOCATION = "location"
    NAME = "name"
    PHONE = "phone"
    USERNAME = "username"
    PASSWORD = "password"
    UNIQUE_ID = "unique_id"

    @property
    def code(self) -> str:
        """The single/double-letter column code used in Table 1."""
        return _CODES[self]

    @property
    def label(self) -> str:
        """The human-readable row label used in Table 3."""
        return _LABELS[self]

    @classmethod
    def from_code(cls, code: str) -> "PiiType":
        for pii_type, c in _CODES.items():
            if c == code:
                return pii_type
        raise ValueError(f"unknown PII code {code!r}")

    # Identifiers only a native app can read off the device; the paper
    # found no evidence of web sites accessing these (§1, Table 3).
    @property
    def device_bound(self) -> bool:
        return self in (PiiType.UNIQUE_ID, PiiType.DEVICE_INFO)


_CODES = {
    PiiType.BIRTHDAY: "B",
    PiiType.DEVICE_INFO: "D",
    PiiType.EMAIL: "E",
    PiiType.GENDER: "G",
    PiiType.LOCATION: "L",
    PiiType.NAME: "N",
    PiiType.PHONE: "P#",
    PiiType.USERNAME: "U",
    PiiType.PASSWORD: "PW",
    PiiType.UNIQUE_ID: "UID",
}

_LABELS = {
    PiiType.BIRTHDAY: "Birthday",
    PiiType.DEVICE_INFO: "Device Name",
    PiiType.EMAIL: "Email",
    PiiType.GENDER: "Gender",
    PiiType.LOCATION: "Location",
    PiiType.NAME: "Name",
    PiiType.PHONE: "Phone #",
    PiiType.USERNAME: "Username",
    PiiType.PASSWORD: "Password",
    PiiType.UNIQUE_ID: "Unique ID",
}

# Canonical column order used by the table renderers (Table 1's order).
TABLE1_ORDER = (
    PiiType.BIRTHDAY,
    PiiType.DEVICE_INFO,
    PiiType.EMAIL,
    PiiType.GENDER,
    PiiType.LOCATION,
    PiiType.NAME,
    PiiType.PHONE,
    PiiType.USERNAME,
    PiiType.PASSWORD,
    PiiType.UNIQUE_ID,
)

ALL_PII_TYPES = tuple(PiiType)
