"""Structured key/value extraction from captured requests.

Both detection strategies operate on structure rather than raw bytes:
the matcher attributes hits to the key they traveled under, and the
ReCon classifier's features are built from keys and value shapes.  This
module turns a :class:`~repro.net.flow.CapturedRequest` into a flat list
of :class:`Field` records drawn from the URL query, the decoded body
(form, JSON, multipart), cookies, and identifying headers.
"""

from __future__ import annotations

from typing import NamedTuple

from ..http.body import decode_body
from ..http.cookies import parse_cookie_header
from ..http.url import UrlError, parse_url
from ..net.flow import CapturedRequest

QUERY = "query"
BODY = "body"
COOKIE = "cookie"
HEADER = "header"
PATH = "path"

# Headers whose values are worth scanning (identifier smuggling is real;
# scanning *every* header would drown the classifier in boilerplate).
_INTERESTING_HEADERS = ("user-agent", "referer", "x-", "authorization", "device-")


class Field(NamedTuple):
    """One key/value observation within a request.

    A named tuple rather than a dataclass: extraction builds tens of
    thousands of these per trace, and tuple construction skips the
    per-attribute ``object.__setattr__`` a frozen dataclass pays.
    """

    source: str  # QUERY | BODY | COOKIE | HEADER | PATH
    key: str
    value: str


_INTERESTING_MEMO: dict = {}


def _header_is_interesting(name: str) -> bool:
    verdict = _INTERESTING_MEMO.get(name)
    if verdict is None:
        lowered = name.lower()
        verdict = _INTERESTING_MEMO[name] = any(
            lowered == probe or (probe.endswith("-") and lowered.startswith(probe))
            for probe in _INTERESTING_HEADERS
        )
    return verdict


def extract_fields(request: CapturedRequest) -> list:
    """Extract every structured field from ``request`` in stable order."""
    fields: list = []
    try:
        url = parse_url(request.url)
    except UrlError:
        url = None

    if url is not None:
        for key, value in url.query_pairs():
            fields.append(Field(QUERY, key, value))
        for index, segment in enumerate(p for p in url.path.split("/") if p):
            fields.append(Field(PATH, f"seg{index}", segment))

    content_type = request.header("Content-Type", "") or ""
    content_encoding = request.header("Content-Encoding", "") or ""
    if request.body:
        decoded = decode_body(request.body, content_type, content_encoding)
        for key, value in decoded["pairs"]:
            fields.append(Field(BODY, key, value))
        if not decoded["pairs"] and decoded["text"].strip():
            fields.append(Field(BODY, "_raw", decoded["text"]))

    for name, value in request.headers:
        if name.lower() == "cookie":
            for key, cookie_value in parse_cookie_header(value):
                fields.append(Field(COOKIE, key, cookie_value))
        elif _header_is_interesting(name):
            fields.append(Field(HEADER, name.lower(), value))
    return fields


def searchable_text(request: CapturedRequest) -> str:
    """The flat text the string matcher scans: URL + headers + body."""
    chunks = [request.url]
    for name, value in request.headers:
        chunks.append(f"{name}: {value}")
    body = request.body
    content_encoding = request.header("Content-Encoding", "") or ""
    if body:
        decoded = decode_body(body, request.header("Content-Type", "") or "", content_encoding)
        chunks.append(decoded["text"])
    return "\n".join(chunks)
