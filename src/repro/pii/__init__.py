"""PII detection: taxonomy, encodings, matching, and the ReCon classifier."""

from .automaton import AhoCorasick
from .detector import MATCHING, RECON, DetectionReport, PiiDetector, PiiObservation
from .encodings import encode_value, hashed_forms, variants
from .matcher import GroundTruthMatcher, PiiMatch, matcher_for
from .recon import (
    DecisionTree,
    ReconClassifier,
    ReconPrediction,
    TrainingExample,
    TypeMetrics,
    evaluate_classifier,
    featurize,
    render_metrics,
    train_from_traces,
)
from .structure import Field, extract_fields, searchable_text
from .types import ALL_PII_TYPES, TABLE1_ORDER, PiiType

__all__ = [
    "ALL_PII_TYPES",
    "AhoCorasick",
    "DecisionTree",
    "DetectionReport",
    "Field",
    "GroundTruthMatcher",
    "MATCHING",
    "PiiDetector",
    "PiiMatch",
    "PiiObservation",
    "RECON",
    "ReconClassifier",
    "ReconPrediction",
    "TABLE1_ORDER",
    "TrainingExample",
    "TypeMetrics",
    "evaluate_classifier",
    "render_metrics",
    "encode_value",
    "extract_fields",
    "featurize",
    "hashed_forms",
    "matcher_for",
    "searchable_text",
    "train_from_traces",
    "variants",
]
