"""Ground-truth string matching over captured traffic.

The controlled-experiment half of §3.2's detection methodology: because
every piece of PII on the test device is known, the matcher can search
each request for every encoded variant of every known value.  GPS
coordinates get special treatment — services transmit them "with
arbitrary precision", so numeric tokens are compared within a tolerance
instead of textually.

Searching is the pipeline's hot path, so the default implementation is a
single-pass multi-pattern scan over an Aho–Corasick automaton built once
per ground-truth set (see :mod:`repro.pii.automaton`), with a per-matcher
memo of scanned texts — captured traffic repeats header and cookie
values thousands of times.  ``slow=True`` keeps the original per-form
scan as the reference implementation; the equivalence tests assert both
modes return identical matches (§3.2 fidelity: same matches, faster
search).

Case handling is explicit: every form is searched case-insensitively
(hosts uppercase MACs, lowercase e-mails, etc.), *except* that the pure
case-variant encodings — ``uppercase`` always, and ``identity`` when a
distinct ``lowercase`` form of the same value is registered — match
case-sensitively only.  This keeps one occurrence from being reported
once per case variant (the seed double-counted ``"john"`` as both an
identity and a lowercase hit) while preserving recall: the
case-insensitive representative of each value always fires.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..net.flow import CapturedRequest
from . import encodings
from .automaton import AhoCorasick
from .structure import extract_fields, searchable_text
from .types import PiiType

# A coordinate token: optional sign, digits, a dot, 2+ decimals.
_COORD_RE = re.compile(r"-?\d{1,3}\.\d{2,}")
GPS_TOLERANCE = 0.02

# Forms whose hit is decided case-insensitively vs. case-sensitively.
_CI = "ci"
_CS = "cs"

# Memo bound: one entry per distinct scanned text.  Traces repeat texts
# heavily (cookies, user-agents, beacon bodies); the cap only exists to
# bound pathological streams of unique texts.
_MEMO_MAX = 65536


@dataclass(frozen=True)
class PiiMatch:
    """One detected occurrence of a ground-truth value in a request."""

    pii_type: PiiType
    value: str  # the ground-truth value (not the encoded form)
    encoding: str
    source: str  # structure source, or "text" for raw scans
    key: str = ""


class GroundTruthMatcher:
    """Searches requests for known PII values under common encodings."""

    def __init__(
        self, ground_truth: dict, include_hashes: bool = True, slow: bool = False
    ) -> None:
        """``ground_truth`` maps :class:`PiiType` to lists of raw values.

        ``slow=True`` selects the retained per-form linear scan — the
        reference implementation the automaton fast path is verified
        against.
        """
        self._slow = slow
        self._forms: dict = {}  # encoded form -> (PiiType, value, encoding)
        self._digit_forms: list = []  # (compiled regex, PiiType, value, encoding)
        self._coords: list = []  # (float value, raw string) for LOCATION
        has_lower: set = set()  # (PiiType, value) with a distinct LOWER form
        for pii_type, values in ground_truth.items():
            for value in values:
                if pii_type == PiiType.LOCATION and _looks_like_coordinate(value):
                    self._coords.append((float(value), value))
                    continue
                for form, encoding in encodings.variants(
                    value, include_hashes=include_hashes
                ).items():
                    if form.isdigit() and len(form) < 10:
                        # Short digit strings (ZIP codes, short phone
                        # fragments) need digit boundaries or they match
                        # inside random numeric identifiers.
                        pattern = re.compile(rf"(?<!\d){re.escape(form)}(?!\d)")
                        self._digit_forms.append(
                            (form, pattern, pii_type, value, encoding)
                        )
                    else:
                        self._forms.setdefault(form, (pii_type, value, encoding))
                        if encoding == encodings.LOWER:
                            has_lower.add((pii_type, value))

        # Scan plan: (form, lowered form, type, value, encoding, mode),
        # in registration order so fast and slow paths report matches
        # identically ordered.
        self._plan: list = []
        for form, (pii_type, value, encoding) in self._forms.items():
            if encoding == encodings.UPPER or (
                encoding == encodings.IDENTITY and (pii_type, value) in has_lower
            ):
                mode = _CS
            else:
                mode = _CI
            self._plan.append((form, form.lower(), pii_type, value, encoding, mode))
        self._automaton = AhoCorasick(low for _, low, *_ in self._plan)
        self._memo: dict = {}
        self._request_memo: dict = {}

    def match_text(self, text: str) -> list:
        """Scan free text; returns deduplicated :class:`PiiMatch` list."""
        if len(text) < encodings.MIN_SEARCHABLE_LENGTH:
            # Nothing searchable is this short: forms and digit forms are
            # at least MIN_SEARCHABLE_LENGTH chars, coordinates at least
            # four ("0.00").
            return []
        if self._slow:
            return self._scan_linear(text)
        cached = self._memo.get(text)
        if cached is None:
            if len(self._memo) >= _MEMO_MAX:
                self._memo.clear()
            cached = self._memo[text] = tuple(self._scan_automaton(text))
        return list(cached)

    def _scan_automaton(self, text: str) -> list:
        """Fast path: one automaton pass, then confirm rare candidates."""
        found: dict = {}
        lowered = text.lower()
        candidates = self._automaton.find_all(lowered)
        if candidates:
            for form, low, pii_type, value, encoding, mode in self._plan:
                if low not in candidates:
                    continue
                if mode == _CS and form not in text:
                    continue
                found[(pii_type, value, encoding)] = PiiMatch(
                    pii_type=pii_type, value=value, encoding=encoding, source="text"
                )
        self._scan_extras(text, found)
        return list(found.values())

    def _scan_linear(self, text: str) -> list:
        """Reference path: the original per-form scan (``slow=True``)."""
        found: dict = {}
        lowered = text.lower()
        for form, low, pii_type, value, encoding, mode in self._plan:
            # Case-insensitive search for every form, except the pure
            # case-variant encodings which must match exactly.
            if mode == _CS:
                hit = form in text
            else:
                hit = low in lowered
            if hit:
                found[(pii_type, value, encoding)] = PiiMatch(
                    pii_type=pii_type, value=value, encoding=encoding, source="text"
                )
        self._scan_extras(text, found)
        return list(found.values())

    def _scan_extras(self, text: str, found: dict) -> None:
        """Digit-boundary and GPS-tolerance cases, shared by both paths."""
        for form, pattern, pii_type, value, encoding in self._digit_forms:
            # C-speed substring prescreen; the regex only confirms the
            # digit boundaries once the literal is known to occur.
            if form in text and pattern.search(text):
                found[(pii_type, value, encoding)] = PiiMatch(
                    pii_type=pii_type, value=value, encoding=encoding, source="text"
                )
        if not self._coords or "." not in text:
            # Every coordinate token contains a dot; skip the regex when
            # the text cannot possibly hold one.
            return
        tokens = _COORD_RE.findall(text)
        if not tokens:
            return
        for coord, raw in self._coords:
            for token in tokens:
                try:
                    if abs(float(token) - coord) <= GPS_TOLERANCE:
                        found[(PiiType.LOCATION, raw, "coordinate")] = PiiMatch(
                            pii_type=PiiType.LOCATION,
                            value=raw,
                            encoding="coordinate",
                            source="text",
                        )
                        break
                except ValueError:
                    continue

    def match_request(self, request: CapturedRequest) -> list:
        """Scan a captured request, attributing hits to structured keys.

        Structure-attributed matches replace their text-scan twins, so a
        value found in the query string reports ``source="query"`` and
        the parameter name rather than a bare text hit.

        Results are memoized per request content — traces repeat beacon
        and heartbeat requests heavily, and the matches are pure
        functions of (url, headers, body).
        """
        if not self._slow:
            # Captured headers are already (name, value) tuples, so one
            # outer tuple() makes the list hashable.
            memo_key = (request.url, tuple(request.headers), request.body)
            cached = self._request_memo.get(memo_key)
            if cached is not None:
                return list(cached)
        by_identity = {}
        for match in self.match_text(searchable_text(request)):
            by_identity[(match.pii_type, match.value, match.encoding)] = match
        for field in extract_fields(request):
            for match in self.match_text(field.value):
                key = (match.pii_type, match.value, match.encoding)
                by_identity[key] = PiiMatch(
                    pii_type=match.pii_type,
                    value=match.value,
                    encoding=match.encoding,
                    source=field.source,
                    key=field.key,
                )
        matches = list(by_identity.values())
        if not self._slow:
            if len(self._request_memo) >= _MEMO_MAX:
                self._request_memo.clear()
            self._request_memo[memo_key] = tuple(matches)
        return matches

    def types_in_request(self, request: CapturedRequest) -> set:
        """Convenience: the set of PII types present in a request."""
        return {match.pii_type for match in self.match_request(request)}


# One matcher per distinct ground-truth set: construction (hash digests,
# automaton build) dominates per-session cost, and study runs reuse the
# same ground truth across many scans.
_MATCHER_CACHE: dict = {}
_MATCHER_CACHE_MAX = 256


def matcher_for(ground_truth: dict, include_hashes: bool = True) -> GroundTruthMatcher:
    """Cached :class:`GroundTruthMatcher` factory, keyed by content."""
    key = (
        include_hashes,
        tuple(
            sorted(
                (pii_type.value, tuple(values))
                for pii_type, values in ground_truth.items()
            )
        ),
    )
    matcher = _MATCHER_CACHE.get(key)
    if matcher is None:
        if len(_MATCHER_CACHE) >= _MATCHER_CACHE_MAX:
            _MATCHER_CACHE.clear()
        matcher = _MATCHER_CACHE[key] = GroundTruthMatcher(
            ground_truth, include_hashes=include_hashes
        )
    return matcher


def _looks_like_coordinate(value: str) -> bool:
    try:
        number = float(value)
    except (TypeError, ValueError):
        return False
    return "." in value and -180.0 <= number <= 180.0
