"""Ground-truth string matching over captured traffic.

The controlled-experiment half of §3.2's detection methodology: because
every piece of PII on the test device is known, the matcher can search
each request for every encoded variant of every known value.  GPS
coordinates get special treatment — services transmit them "with
arbitrary precision", so numeric tokens are compared within a tolerance
instead of textually.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..net.flow import CapturedRequest
from . import encodings
from .structure import extract_fields, searchable_text
from .types import PiiType

# A coordinate token: optional sign, digits, a dot, 2+ decimals.
_COORD_RE = re.compile(r"-?\d{1,3}\.\d{2,}")
GPS_TOLERANCE = 0.02


@dataclass(frozen=True)
class PiiMatch:
    """One detected occurrence of a ground-truth value in a request."""

    pii_type: PiiType
    value: str  # the ground-truth value (not the encoded form)
    encoding: str
    source: str  # structure source, or "text" for raw scans
    key: str = ""


class GroundTruthMatcher:
    """Searches requests for known PII values under common encodings."""

    def __init__(self, ground_truth: dict, include_hashes: bool = True) -> None:
        """``ground_truth`` maps :class:`PiiType` to lists of raw values."""
        self._forms: dict = {}  # encoded form -> (PiiType, value, encoding)
        self._digit_forms: list = []  # (compiled regex, PiiType, value, encoding)
        self._coords: list = []  # (float value, raw string) for LOCATION
        for pii_type, values in ground_truth.items():
            for value in values:
                if pii_type == PiiType.LOCATION and _looks_like_coordinate(value):
                    self._coords.append((float(value), value))
                    continue
                for form, encoding in encodings.variants(
                    value, include_hashes=include_hashes
                ).items():
                    if form.isdigit() and len(form) < 10:
                        # Short digit strings (ZIP codes, short phone
                        # fragments) need digit boundaries or they match
                        # inside random numeric identifiers.
                        pattern = re.compile(rf"(?<!\d){re.escape(form)}(?!\d)")
                        self._digit_forms.append((pattern, pii_type, value, encoding))
                    else:
                        self._forms.setdefault(form, (pii_type, value, encoding))

    def match_text(self, text: str) -> list:
        """Scan free text; returns deduplicated :class:`PiiMatch` list."""
        found = {}
        lowered = text.lower()
        for form, (pii_type, value, encoding) in self._forms.items():
            probe = form if encoding != encodings.LOWER else form
            # Case-sensitive check first; fall back to case-insensitive
            # for identity forms (hosts uppercase MACs, etc.).
            if form in text or form.lower() in lowered:
                found[(pii_type, value, encoding)] = PiiMatch(
                    pii_type=pii_type, value=value, encoding=encoding, source="text"
                )
        for pattern, pii_type, value, encoding in self._digit_forms:
            if pattern.search(text):
                found[(pii_type, value, encoding)] = PiiMatch(
                    pii_type=pii_type, value=value, encoding=encoding, source="text"
                )
        for coord, raw in self._coords:
            for token in _COORD_RE.findall(text):
                try:
                    if abs(float(token) - coord) <= GPS_TOLERANCE:
                        found[(PiiType.LOCATION, raw, "coordinate")] = PiiMatch(
                            pii_type=PiiType.LOCATION,
                            value=raw,
                            encoding="coordinate",
                            source="text",
                        )
                        break
                except ValueError:
                    continue
        return list(found.values())

    def match_request(self, request: CapturedRequest) -> list:
        """Scan a captured request, attributing hits to structured keys.

        Structure-attributed matches replace their text-scan twins, so a
        value found in the query string reports ``source="query"`` and
        the parameter name rather than a bare text hit.
        """
        by_identity = {}
        for match in self.match_text(searchable_text(request)):
            by_identity[(match.pii_type, match.value, match.encoding)] = match
        for field in extract_fields(request):
            for match in self.match_text(field.value):
                key = (match.pii_type, match.value, match.encoding)
                by_identity[key] = PiiMatch(
                    pii_type=match.pii_type,
                    value=match.value,
                    encoding=match.encoding,
                    source=field.source,
                    key=field.key,
                )
        return list(by_identity.values())

    def types_in_request(self, request: CapturedRequest) -> set:
        """Convenience: the set of PII types present in a request."""
        return {match.pii_type for match in self.match_request(request)}


def _looks_like_coordinate(value: str) -> bool:
    try:
        number = float(value)
    except (TypeError, ValueError):
        return False
    return "." in value and -180.0 <= number <= 180.0
