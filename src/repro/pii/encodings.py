"""Encoding variants of ground-truth PII values.

PII rarely travels verbatim: identifiers are uppercased, URL-encoded,
base64-wrapped, or hashed before transmission (§3.2 notes unique IDs are
"formatted inconsistently").  Given a ground-truth value, this module
enumerates the encoded forms the string matcher searches for, and names
the encoding of each so reports can say *how* a value leaked.
"""

from __future__ import annotations

import base64
import hashlib
from functools import lru_cache

from ..http.url import percent_encode

IDENTITY = "identity"
LOWER = "lowercase"
UPPER = "uppercase"
URLENCODED = "urlencoded"
BASE64 = "base64"
HEX = "hex"
MD5 = "md5"
SHA1 = "sha1"
SHA256 = "sha256"
DIGITS_ONLY = "digits_only"

# Orderly list of (name, callable) — applied to the raw value.
_ENCODERS = (
    (IDENTITY, lambda v: v),
    (LOWER, lambda v: v.lower()),
    (UPPER, lambda v: v.upper()),
    (URLENCODED, lambda v: percent_encode(v)),
    (BASE64, lambda v: base64.b64encode(v.encode()).decode()),
    (HEX, lambda v: v.encode().hex()),
    (MD5, lambda v: hashlib.md5(v.encode()).hexdigest()),
    (SHA1, lambda v: hashlib.sha1(v.encode()).hexdigest()),
    (SHA256, lambda v: hashlib.sha256(v.encode()).hexdigest()),
)

# Hash encodings are also checked over the lowercased value, since SDKs
# typically normalize before hashing (e.g. lowercased e-mail, MAC).
_HASHES = (MD5, SHA1, SHA256)

MIN_SEARCHABLE_LENGTH = 4


def encode_value(value: str, encoding: str) -> str:
    """Apply one named encoding to ``value``."""
    for name, encoder in _ENCODERS:
        if name == encoding:
            return encoder(value)
    if encoding == DIGITS_ONLY:
        return "".join(c for c in value if c.isdigit())
    raise ValueError(f"unknown encoding {encoding!r}")


def variants(value: str, include_hashes: bool = True) -> dict:
    """Map each searchable encoded form of ``value`` to its encoding name.

    Forms shorter than :data:`MIN_SEARCHABLE_LENGTH` are dropped — they
    would match traffic constantly and mean nothing (e.g. ``"m"`` for
    gender).  When two encodings collide (value already lowercase), the
    earlier, more specific name wins.

    Results are memoized: hash digests dominate the cost, and matcher
    construction re-enumerates the same ground-truth values for every
    session of a study.
    """
    if value is None:
        return {}
    return dict(_variant_items(value, include_hashes))


@lru_cache(maxsize=4096)
def _variant_items(value: str, include_hashes: bool) -> tuple:
    out: dict = {}

    def put(form: str, name: str) -> None:
        if len(form) >= MIN_SEARCHABLE_LENGTH and form not in out:
            out[form] = name

    for name, encoder in _ENCODERS:
        if name in _HASHES and not include_hashes:
            continue
        put(encoder(value), name)
    if include_hashes and value != value.lower():
        for name in _HASHES:
            put(encode_value(value.lower(), name), name)
    # Phone-number style: strip separators.
    digits = "".join(c for c in value if c.isdigit())
    if digits != value and len(digits) >= 7:
        put(digits, DIGITS_ONLY)
    return tuple(out.items())


def hashed_forms(value: str) -> dict:
    """Just the hash digests of ``value`` (used by hashing-aware tests)."""
    return {
        encode_value(value, name): name
        for name in _HASHES
    }
