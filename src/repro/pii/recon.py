"""ReCon-style machine-learned PII detection.

ReCon (Ren et al., MobiSys 2016) detects *likely* PII in network flows
without knowing the values, by learning which structural patterns of a
request carry identifiers.  This module reimplements that idea from
scratch:

- requests are featurized into bags of binary features built from
  key names, destination domain, path segments, and value shapes;
- one decision tree per PII type is trained on labeled flows (labels
  come from controlled experiments where ground truth is known);
- per-domain specialist trees are grown where enough training data
  exists, falling back to the global tree elsewhere — mirroring ReCon's
  per-domain classifiers;
- a key-synonym heuristic extracts the concrete value once a type is
  predicted present.
"""

from __future__ import annotations

import math
import random
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Optional

from ..net.flow import CapturedRequest
from ..trackerdb.psl import domain_key
from ..http.url import UrlError, parse_url
from .structure import extract_fields
from .types import PiiType

# -- featurization ------------------------------------------------------------


def _value_shape(value: str) -> str:
    """Coarse shape descriptor of a field value."""
    if not value:
        return "empty"
    if "@" in value and "." in value.split("@")[-1]:
        return "email_like"
    stripped = value.replace("-", "")
    if len(value) == 36 and value.count("-") == 4 and _is_hex(stripped):
        return "uuid"
    if _is_hex(value) and len(value) in (32, 40, 64):
        return f"hexdigest{len(value)}"
    if value.isdigit():
        if len(value) >= 14:
            return "digits_long"
        if len(value) >= 9:
            return "digits_med"
        return "digits_short"
    try:
        float(value)
        return "float" if "." in value else "number"
    except ValueError:
        pass
    if len(value) > 24:
        return "text_long"
    return "text_short"


def _is_hex(value: str) -> bool:
    return bool(value) and all(c in "0123456789abcdefABCDEF" for c in value)


def featurize(request: CapturedRequest) -> set:
    """Build the binary feature bag for one request."""
    features: set = set()
    try:
        url = parse_url(request.url)
        features.add(f"domain:{domain_key(url.host)}")
        for segment in url.path.split("/"):
            if segment and not segment.isdigit():
                features.add(f"path:{segment.lower()}")
    except UrlError:
        pass
    features.add(f"method:{request.method}")
    for fld in extract_fields(request):
        key = fld.key.lower()
        features.add(f"key:{key}")
        features.add(f"kv:{key}={_value_shape(fld.value)}")
    return features


# -- decision tree ------------------------------------------------------------


@dataclass
class _Node:
    feature: Optional[str] = None
    present: Optional["_Node"] = None
    absent: Optional["_Node"] = None
    probability: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _entropy(positives: int, total: int) -> float:
    if total == 0 or positives == 0 or positives == total:
        return 0.0
    p = positives / total
    return -(p * math.log2(p) + (1 - p) * math.log2(1 - p))


class DecisionTree:
    """Binary decision tree over set-of-string features (ID3-style)."""

    def __init__(self, max_depth: int = 8, min_samples_leaf: int = 3, max_features: int = 400) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._root: Optional[_Node] = None

    def fit(self, samples: list, labels: list) -> "DecisionTree":
        """Train on parallel lists of feature-sets and booleans."""
        if len(samples) != len(labels):
            raise ValueError("samples and labels must align")
        if not samples:
            raise ValueError("cannot fit an empty training set")
        counts: Counter = Counter()
        for features in samples:
            counts.update(features)
        # Candidate order must not depend on the process's string-hash
        # seed: a set here would make split tie-breaks (equal gain)
        # vary across interpreters, so trees trained in a worker
        # process could differ from the parent's.  most_common is
        # stable (count desc, first-seen order on ties) and the final
        # sort pins one canonical iteration order everywhere.
        vocabulary = sorted(f for f, _ in counts.most_common(self.max_features))
        self._root = self._grow(samples, labels, vocabulary, depth=0)
        return self

    def _grow(self, samples: list, labels: list, vocabulary: list, depth: int) -> _Node:
        positives = sum(labels)
        total = len(labels)
        probability = positives / total if total else 0.0
        if (
            depth >= self.max_depth
            or total < 2 * self.min_samples_leaf
            or positives == 0
            or positives == total
        ):
            return _Node(probability=probability)

        parent_entropy = _entropy(positives, total)
        best_feature = None
        best_gain = 1e-9
        for feature in vocabulary:
            pos_with = pos_without = n_with = 0
            for features, label in zip(samples, labels):
                if feature in features:
                    n_with += 1
                    pos_with += label
                else:
                    pos_without += label
            n_without = total - n_with
            if n_with < self.min_samples_leaf or n_without < self.min_samples_leaf:
                continue
            children_entropy = (
                n_with / total * _entropy(pos_with, n_with)
                + n_without / total * _entropy(pos_without, n_without)
            )
            gain = parent_entropy - children_entropy
            if gain > best_gain:
                best_gain = gain
                best_feature = feature
        if best_feature is None:
            return _Node(probability=probability)

        with_samples, with_labels, without_samples, without_labels = [], [], [], []
        for features, label in zip(samples, labels):
            if best_feature in features:
                with_samples.append(features)
                with_labels.append(label)
            else:
                without_samples.append(features)
                without_labels.append(label)
        remaining = [f for f in vocabulary if f != best_feature]
        return _Node(
            feature=best_feature,
            present=self._grow(with_samples, with_labels, remaining, depth + 1),
            absent=self._grow(without_samples, without_labels, remaining, depth + 1),
            probability=probability,
        )

    def predict_proba(self, features: set) -> float:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        node = self._root
        while not node.is_leaf:
            node = node.present if node.feature in features else node.absent
        return node.probability

    def predict(self, features: set, threshold: float = 0.5) -> bool:
        return self.predict_proba(features) >= threshold

    def depth(self) -> int:
        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.present), walk(node.absent))

        return walk(self._root)


# -- the classifier ------------------------------------------------------------

# Key synonyms used to pull the concrete value out of a positive flow.
KEY_SYNONYMS = {
    PiiType.EMAIL: ("email", "e-mail", "mail", "user_email", "login", "em"),
    PiiType.PASSWORD: ("password", "passwd", "pwd", "pass", "secret"),
    PiiType.USERNAME: ("username", "user", "uname", "screenname", "login_id"),
    PiiType.NAME: ("name", "firstname", "first_name", "lastname", "last_name", "fullname", "fn", "ln"),
    PiiType.GENDER: ("gender", "sex", "gen"),
    PiiType.BIRTHDAY: ("birthday", "dob", "birthdate", "birth_date", "bday"),
    PiiType.PHONE: ("phone", "phone_number", "tel", "msisdn", "mobile"),
    PiiType.LOCATION: ("lat", "latitude", "lon", "lng", "longitude", "zip", "zipcode", "postal", "loc", "geo"),
    PiiType.UNIQUE_ID: ("imei", "mac", "aaid", "idfa", "gaid", "android_id", "device_id", "deviceid", "udid", "uid", "adid"),
    PiiType.DEVICE_INFO: ("device", "device_name", "model", "hardware", "build"),
}


@dataclass
class ReconPrediction:
    """One predicted PII presence in a request."""

    pii_type: PiiType
    probability: float
    extracted_key: str = ""
    extracted_value: str = ""


@dataclass
class TrainingExample:
    """A featurized, labeled request for one PII type."""

    features: set
    domain: str
    labels: set = field(default_factory=set)  # set[PiiType]


class ReconClassifier:
    """Per-type (and per-domain, where data allows) PII classifiers."""

    def __init__(
        self,
        threshold: float = 0.5,
        min_domain_samples: int = 40,
        max_depth: int = 8,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.threshold = threshold
        self.min_domain_samples = min_domain_samples
        self.max_depth = max_depth
        self._rng = rng if rng is not None else random.Random(0)
        self._global: dict = {}  # PiiType -> DecisionTree
        self._specialists: dict = {}  # (domain, PiiType) -> DecisionTree
        self.trained_types: set = set()

    @staticmethod
    def make_example(request: CapturedRequest, labels: set) -> TrainingExample:
        try:
            domain = domain_key(parse_url(request.url).host)
        except UrlError:
            domain = ""
        return TrainingExample(features=featurize(request), domain=domain, labels=set(labels))

    def fit(self, examples: list) -> "ReconClassifier":
        """Train from :class:`TrainingExample` records."""
        if not examples:
            raise ValueError("no training examples")
        by_domain: dict = defaultdict(list)
        for example in examples:
            by_domain[example.domain].append(example)

        present_types = set()
        for example in examples:
            present_types.update(example.labels)

        # Sorted for hash-seed-independent training order (stable
        # pickle bytes for the persistent recon cache).
        for pii_type in sorted(present_types, key=lambda t: t.value):
            labels = [pii_type in ex.labels for ex in examples]
            if not any(labels) or all(labels):
                continue
            tree = DecisionTree(max_depth=self.max_depth)
            tree.fit([ex.features for ex in examples], labels)
            self._global[pii_type] = tree
            self.trained_types.add(pii_type)
            for domain, domain_examples in by_domain.items():
                if len(domain_examples) < self.min_domain_samples:
                    continue
                domain_labels = [pii_type in ex.labels for ex in domain_examples]
                if not any(domain_labels) or all(domain_labels):
                    continue
                specialist = DecisionTree(max_depth=self.max_depth)
                specialist.fit([ex.features for ex in domain_examples], domain_labels)
                self._specialists[(domain, pii_type)] = specialist
        return self

    def _tree_for(self, domain: str, pii_type: PiiType) -> Optional[DecisionTree]:
        specialist = self._specialists.get((domain, pii_type))
        if specialist is not None:
            return specialist
        return self._global.get(pii_type)

    def predict(self, request: CapturedRequest) -> list:
        """Predict PII types present in ``request``.

        Returns :class:`ReconPrediction` records above the threshold,
        each with the heuristically extracted key/value when one of the
        type's synonym keys is present.
        """
        features = featurize(request)
        try:
            domain = domain_key(parse_url(request.url).host)
        except UrlError:
            domain = ""
        fields = extract_fields(request)
        predictions = []
        # Sorted: prediction order feeds the detector's observation
        # merge, so it must not follow randomized set-hash order.
        for pii_type in sorted(self.trained_types, key=lambda t: t.value):
            tree = self._tree_for(domain, pii_type)
            if tree is None:
                continue
            probability = tree.predict_proba(features)
            if probability < self.threshold:
                continue
            key, value = _extract_by_synonym(fields, pii_type)
            predictions.append(
                ReconPrediction(
                    pii_type=pii_type,
                    probability=probability,
                    extracted_key=key,
                    extracted_value=value,
                )
            )
        return predictions


def _extract_by_synonym(fields: list, pii_type: PiiType) -> tuple:
    synonyms = KEY_SYNONYMS.get(pii_type, ())
    for fld in fields:
        key = fld.key.lower()
        bare = key.rsplit(".", 1)[-1]
        if bare in synonyms or key in synonyms:
            return (fld.key, fld.value)
    return ("", "")


def train_from_traces(
    traces: list,
    matcher,
    classifier: Optional[ReconClassifier] = None,
) -> ReconClassifier:
    """Build a classifier from captured traces using ground-truth labels.

    ``matcher`` is a :class:`~repro.pii.matcher.GroundTruthMatcher`; its
    hits become the training labels — the controlled-experiment workflow
    the paper uses to get reliable labels for ML detection.
    """
    examples = []
    for trace in traces:
        for flow in trace:
            if not flow.decrypted:
                continue
            for txn in flow.transactions:
                labels = {m.pii_type for m in matcher.match_request(txn.request)}
                examples.append(ReconClassifier.make_example(txn.request, labels))
    if classifier is None:
        classifier = ReconClassifier()
    return classifier.fit(examples)


# -- evaluation ----------------------------------------------------------------


@dataclass
class TypeMetrics:
    """Precision/recall for one PII type."""

    pii_type: PiiType
    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def evaluate_classifier(classifier: ReconClassifier, examples: list) -> dict:
    """Per-type precision/recall of a classifier on labeled examples.

    ``examples`` carry featurized requests — re-featurizing from raw
    requests is the caller's job (use :meth:`ReconClassifier.make_example`).
    Returns ``{PiiType: TypeMetrics}`` for every type with ground-truth
    positives or predicted positives.
    """
    metrics: dict = {}

    def metric(pii_type: PiiType) -> TypeMetrics:
        entry = metrics.get(pii_type)
        if entry is None:
            entry = metrics[pii_type] = TypeMetrics(pii_type=pii_type)
        return entry

    for example in examples:
        predicted: set = set()
        for pii_type in classifier.trained_types:
            tree = classifier._tree_for(example.domain, pii_type)
            if tree is not None and tree.predict_proba(example.features) >= classifier.threshold:
                predicted.add(pii_type)
        for pii_type in predicted & example.labels:
            metric(pii_type).true_positives += 1
        for pii_type in predicted - example.labels:
            metric(pii_type).false_positives += 1
        for pii_type in example.labels - predicted:
            metric(pii_type).false_negatives += 1
    return metrics


def render_metrics(metrics: dict) -> str:
    """Text table of per-type precision/recall/F1."""
    header = f"{'PII type':14s} {'prec':>6s} {'recall':>6s} {'F1':>6s} {'TP':>5s} {'FP':>5s} {'FN':>5s}"
    lines = [header, "-" * len(header)]
    for pii_type in sorted(metrics, key=lambda t: t.value):
        entry = metrics[pii_type]
        lines.append(
            f"{pii_type.label:14s} {entry.precision:6.2f} {entry.recall:6.2f} "
            f"{entry.f1:6.2f} {entry.true_positives:5d} {entry.false_positives:5d} "
            f"{entry.false_negatives:5d}"
        )
    return "\n".join(lines)
