"""Executor backends: one interface, three ways to spend cores.

The pipeline's fan-out points (:func:`analyze_dataset`,
:func:`train_recon_on_dataset`, the streaming finalizer's journal
replay) all map a pure per-session function over an ordered list of
records.  An :class:`Executor` owns *how* that map runs:

- :class:`SerialExecutor` — plain loop, zero overhead, the reference;
- :class:`ThreadExecutor` — ``ThreadPoolExecutor``; threads share the
  GIL, so this only helps where C-level work releases it (kept as the
  legacy ``workers=N`` behavior);
- :class:`ProcessExecutor` — ``ProcessPoolExecutor``; the only backend
  where ``--workers N`` means N cores for this pure-Python CPU-bound
  pipeline.  Records ship to workers as compact codec blobs
  (:mod:`repro.net.codec`), context (specs + ReCon) installs once per
  worker, and results come back as JSON-safe dicts.

Every backend returns results aligned with the *input* record order,
and the QA oracle pins all of them byte-identical to serial for any
worker count.  The process backend additionally requires hash-seed
independence from the stages it runs (see the sorted-iteration notes
in :mod:`repro.pii.recon`), because a spawned worker gets its own
string-hash seed.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Optional, Union

from . import tasks

EXECUTOR_NAMES = ("serial", "thread", "process")


class ExecutorError(Exception):
    """Raised for unknown backend names or misconfigured executors."""


class Executor:
    """Maps per-session pipeline stages over ordered session records."""

    name = "abstract"

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(1, int(workers))

    def map_analyze(self, records: list, specs: list, recon) -> list:
        """Full analysis per record -> ``list[SessionAnalysis]``."""
        raise NotImplementedError

    def map_label(self, records: list) -> list:
        """ReCon labeling per record -> ``list[list[TrainingExample]]``."""
        raise NotImplementedError

    def map_rescan(self, records: list, specs: list, recon) -> list:
        """Deferred re-scan per record -> ``list[(leaks, false_positives)]``."""
        raise NotImplementedError

    def map_aggregate(self, blobs: list) -> list:
        """Columnar kernel per batch blob -> ``list[StudyAggregate]``."""
        raise NotImplementedError

    def map_sessions(self, shard_ranges, specs: list, config: dict):
        """Campaign fan-out: simulate whole session-shards.

        ``shard_ranges`` is an iterable of ``(start, stop)`` user-id
        ranges; yields one :class:`~repro.campaign.engine.CampaignAggregate`
        per shard, *streaming* in input order — at most a bounded
        window of shards is in flight, so the caller folds partials as
        they arrive and the full population never materializes.
        """
        raise NotImplementedError

    def imap_analyze(self, records, specs: list, recon):
        """Streaming :meth:`map_analyze`: yield one
        :class:`~repro.core.pipeline.SessionAnalysis` per record, in
        input order, with at most a bounded window in flight.  The
        ingest worker loop consumes this so a job's progress can be
        journaled (and the job parked for resume) between records
        instead of only after a whole batch.
        """
        raise NotImplementedError

    def session_pool(self, specs: list, config: dict):
        """Context manager over a persistent campaign worker pool.

        Yields a :class:`SessionPool` handle whose ``submit((start,
        stop))`` returns a future resolving to ``(elapsed_seconds,
        CampaignAggregate)`` — the low-level API the adaptive campaign
        driver uses when the *next* chunk's size depends on how long
        completed chunks took.  Exiting the context shuts the pool down
        (cancelling queued work), so an early-exiting driver leaks no
        threads or processes.
        """
        raise NotImplementedError

    def map_merge(self, blob_windows: list) -> list:
        """Campaign tree reduction: fold each window (an ordered list
        of KIND_CAGG blobs) into one merged blob.  Context-free — the
        blobs are self-contained — so the process backend needs no pool
        initializer and the merge work lands on the workers instead of
        the coordinator."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} workers={self.workers}>"


class SessionPool:
    """Handle yielded by :meth:`Executor.session_pool`.

    ``submit`` returns immediately with a future-like object;
    ``workers`` is the effective parallelism (1 for the serial backend)
    the driver sizes its in-flight window from.
    """

    def __init__(self, workers: int, submit_fn) -> None:
        self.workers = workers
        self._submit = submit_fn

    def submit(self, shard_range):
        """Schedule one ``(start, stop)`` user range; the returned
        future's ``result()`` is ``(elapsed_seconds, aggregate)``."""
        return self._submit(shard_range)


def _shard_error(item, exc) -> "ExecutorError":
    start, stop = item
    return ExecutorError(f"campaign shard [{start}, {stop}) failed: {exc}")


class _ShardFuture:
    """Future wrapper: annotates failures with the shard range and
    post-processes successful payloads (blob decode for the process
    backend)."""

    __slots__ = ("_item", "_future", "_decode")

    def __init__(self, item, future, decode=None) -> None:
        self._item = item
        self._future = future
        self._decode = decode

    def result(self):
        try:
            payload = self._future.result()
        except ExecutorError:
            raise
        except Exception as exc:
            raise _shard_error(self._item, exc) from exc
        return self._decode(payload) if self._decode is not None else payload


def _timed_shard(context, shard_range):
    start, stop = shard_range
    began = time.perf_counter()
    partial = context.run_shard(start, stop)
    return time.perf_counter() - began, partial


def _immediate_shard(context, shard_range) -> "_ShardFuture":
    """Serial ``submit``: run now, park value/error in a done future."""
    future: Future = Future()
    try:
        future.set_result(_timed_shard(context, shard_range))
    except Exception as exc:  # annotated by _ShardFuture at result()
        future.set_exception(exc)
    return _ShardFuture(shard_range, future)


def _stream_windowed(pool, fn, items, window: int):
    """Submit ``items`` to ``pool`` keeping at most ``window`` futures
    outstanding; yield results in submission order.  The bounded window
    is what makes the session fan-out streaming: upstream shard
    descriptors are consumed lazily and downstream results are folded
    before later shards are even submitted."""
    from collections import deque

    pending = deque()
    for item in items:
        pending.append(pool.submit(fn, item))
        if len(pending) >= window:
            yield pending.popleft().result()
    while pending:
        yield pending.popleft().result()


def _stream_shards(pool, fn, ranges, window: int, decode=None):
    """Campaign variant of :func:`_stream_windowed`: results come back
    through :class:`_ShardFuture`, so a worker failure surfaces as
    :class:`ExecutorError` naming the failing ``[start, stop)`` range
    instead of a bare traceback from deep inside the fold."""
    from collections import deque

    pending = deque()
    for item in ranges:
        pending.append(_ShardFuture(item, pool.submit(fn, item), decode))
        if len(pending) >= window:
            yield pending.popleft().result()
    while pending:
        yield pending.popleft().result()


class SerialExecutor(Executor):
    """In-order, in-process reference backend."""

    name = "serial"

    def __init__(self, workers: int = 1) -> None:
        super().__init__(1)

    def map_analyze(self, records: list, specs: list, recon) -> list:
        from ..core.pipeline import analyze_session

        by_slug = {spec.slug: spec for spec in specs}
        return [
            analyze_session(record, by_slug[record.service], recon=recon)
            for record in records
        ]

    def map_label(self, records: list) -> list:
        from ..core.pipeline import label_record

        return [label_record(record) for record in records]

    def map_rescan(self, records: list, specs: list, recon) -> list:
        from ..core.pipeline import rescan_session

        by_slug = {spec.slug: spec for spec in specs}
        return [
            rescan_session(record, by_slug[record.service], recon=recon)
            for record in records
        ]

    def map_aggregate(self, blobs: list) -> list:
        from ..analysis.columnar import aggregate_blob

        return [aggregate_blob(blob) for blob in blobs]

    def map_sessions(self, shard_ranges, specs: list, config: dict):
        from ..campaign.engine import CampaignContext

        context = CampaignContext.from_config(list(specs), config)
        for start, stop in shard_ranges:
            try:
                yield context.run_shard(start, stop)
            except Exception as exc:
                raise _shard_error((start, stop), exc) from exc

    def imap_analyze(self, records, specs: list, recon):
        from ..core.pipeline import analyze_session

        by_slug = {spec.slug: spec for spec in specs}
        for record in records:
            yield analyze_session(record, by_slug[record.service], recon=recon)

    @contextlib.contextmanager
    def session_pool(self, specs: list, config: dict):
        from ..campaign.engine import CampaignContext

        context = CampaignContext.from_config(list(specs), config)
        yield SessionPool(1, lambda item: _immediate_shard(context, item))

    def map_merge(self, blob_windows: list) -> list:
        return [tasks.campaign_merge_blobs(window) for window in blob_windows]


class ThreadExecutor(Executor):
    """Thread-pool backend (the pre-existing ``workers=N`` behavior)."""

    name = "thread"

    def _map(self, fn, items: list) -> list:
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(fn, items))

    def map_analyze(self, records: list, specs: list, recon) -> list:
        from ..core.pipeline import analyze_session

        by_slug = {spec.slug: spec for spec in specs}
        return self._map(
            lambda record: analyze_session(record, by_slug[record.service], recon=recon),
            records,
        )

    def map_label(self, records: list) -> list:
        from ..core.pipeline import label_record

        return self._map(label_record, records)

    def map_rescan(self, records: list, specs: list, recon) -> list:
        from ..core.pipeline import rescan_session

        by_slug = {spec.slug: spec for spec in specs}
        return self._map(
            lambda record: rescan_session(record, by_slug[record.service], recon=recon),
            records,
        )

    def map_aggregate(self, blobs: list) -> list:
        from ..analysis.columnar import aggregate_blob

        return self._map(aggregate_blob, blobs)

    def map_sessions(self, shard_ranges, specs: list, config: dict):
        from ..campaign.engine import CampaignContext

        context = CampaignContext.from_config(list(specs), config)
        ranges = list(shard_ranges)
        if self.workers <= 1 or len(ranges) <= 1:
            for start, stop in ranges:
                try:
                    yield context.run_shard(start, stop)
                except Exception as exc:
                    raise _shard_error((start, stop), exc) from exc
            return
        pool = ThreadPoolExecutor(max_workers=self.workers)
        try:
            yield from _stream_shards(
                pool,
                lambda item: context.run_shard(item[0], item[1]),
                ranges,
                self.workers * 2,
            )
        finally:
            # Runs on early generator close too: cancel queued shards,
            # wait out in-flight ones, leak no threads.
            pool.shutdown(wait=True, cancel_futures=True)

    @contextlib.contextmanager
    def session_pool(self, specs: list, config: dict):
        from ..campaign.engine import CampaignContext

        context = CampaignContext.from_config(list(specs), config)
        if self.workers <= 1:
            yield SessionPool(1, lambda item: _immediate_shard(context, item))
            return
        pool = ThreadPoolExecutor(max_workers=self.workers)
        try:
            yield SessionPool(
                self.workers,
                lambda item: _ShardFuture(
                    item, pool.submit(_timed_shard, context, item)
                ),
            )
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    def map_merge(self, blob_windows: list) -> list:
        return self._map(tasks.campaign_merge_blobs, blob_windows)

    def imap_analyze(self, records, specs: list, recon):
        from ..core.pipeline import analyze_session

        by_slug = {spec.slug: spec for spec in specs}
        records = list(records)
        if self.workers <= 1 or len(records) <= 1:
            for record in records:
                yield analyze_session(record, by_slug[record.service], recon=recon)
            return
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            yield from _stream_windowed(
                pool,
                lambda record: analyze_session(
                    record, by_slug[record.service], recon=recon
                ),
                records,
                self.workers * 2,
            )


def _mp_context():
    """Prefer ``fork`` (context inherits free); fall back to ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class ProcessExecutor(Executor):
    """Process-pool backend: true multi-core for pure-Python stages.

    A fresh pool is created per map call because the worker context
    (specs, trained ReCon) differs between stages; with the ``fork``
    start method pool creation is copy-on-write and costs milliseconds.
    """

    name = "process"

    def _run(self, task_fn, records: list, specs: list, recon) -> list:
        from ..net import codec

        if not records:
            return []
        blobs = [codec.encode_record(record) for record in records]
        workers = min(self.workers, len(blobs))
        if workers <= 1:
            # Degenerate pool sizes skip IPC entirely; results are
            # byte-identical either way, this is purely less overhead.
            tasks.init_worker(specs, recon)
            return [task_fn(blob) for blob in blobs]
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_mp_context(),
            initializer=tasks.init_worker,
            initargs=(list(specs), recon),
        ) as pool:
            return list(pool.map(task_fn, blobs))

    def map_analyze(self, records: list, specs: list, recon) -> list:
        from ..core.pipeline import SessionAnalysis

        payloads = self._run(tasks.analyze_blob, records, specs, recon)
        return [SessionAnalysis.from_dict(payload) for payload in payloads]

    def map_label(self, records: list) -> list:
        return self._run(tasks.label_blob, records, [], None)

    def map_rescan(self, records: list, specs: list, recon) -> list:
        from ..core.leaks import LeakRecord

        payloads = self._run(tasks.rescan_blob, records, specs, recon)
        return [
            (
                [LeakRecord.from_dict(entry) for entry in payload["leaks"]],
                payload["recon_false_positives"],
            )
            for payload in payloads
        ]

    def map_aggregate(self, blobs: list) -> list:
        from ..analysis.columnar import StudyAggregate, aggregate_blob

        if not blobs:
            return []
        workers = min(self.workers, len(blobs))
        if workers <= 1:
            # Same degenerate-pool shortcut as _run: skip IPC entirely.
            return [aggregate_blob(blob) for blob in blobs]
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_mp_context(),
        ) as pool:
            return [
                StudyAggregate.from_dict(payload)
                for payload in pool.map(tasks.aggregate_batch_blob, blobs)
            ]

    def map_sessions(self, shard_ranges, specs: list, config: dict):
        from ..net import codec

        ranges = list(shard_ranges)
        if not ranges:
            return
        workers = min(self.workers, len(ranges))
        if workers <= 1:
            # Degenerate pool sizes skip IPC entirely; results are
            # byte-identical either way, this is purely less overhead.
            tasks.init_campaign(list(specs), config)
            for item in ranges:
                try:
                    yield codec.decode_campaign(tasks.campaign_shard(item))
                except Exception as exc:
                    raise _shard_error(item, exc) from exc
            return
        pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_mp_context(),
            initializer=tasks.init_campaign,
            initargs=(list(specs), config),
        )
        try:
            yield from _stream_shards(
                pool,
                tasks.campaign_shard,
                ranges,
                workers * 2,
                decode=codec.decode_campaign,
            )
        finally:
            # Runs on early generator close too: cancel queued shards,
            # wait out in-flight ones, leave no orphaned processes.
            pool.shutdown(wait=True, cancel_futures=True)

    @contextlib.contextmanager
    def session_pool(self, specs: list, config: dict):
        from ..campaign.engine import CampaignContext
        from ..net import codec

        if self.workers <= 1:
            context = CampaignContext.from_config(list(specs), config)
            yield SessionPool(1, lambda item: _immediate_shard(context, item))
            return

        def decode(payload):
            elapsed, blob = payload
            return elapsed, codec.decode_campaign(blob)

        pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=_mp_context(),
            initializer=tasks.init_campaign,
            initargs=(list(specs), config),
        )
        try:
            yield SessionPool(
                self.workers,
                lambda item: _ShardFuture(
                    item, pool.submit(tasks.campaign_chunk, item), decode
                ),
            )
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    def map_merge(self, blob_windows: list) -> list:
        if not blob_windows:
            return []
        workers = min(self.workers, len(blob_windows))
        if workers <= 1:
            # Same degenerate-pool shortcut as _run: skip IPC entirely.
            return [tasks.campaign_merge_blobs(window) for window in blob_windows]
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_mp_context(),
        ) as pool:
            return list(pool.map(tasks.campaign_merge_blobs, blob_windows))

    def imap_analyze(self, records, specs: list, recon):
        from ..core.pipeline import SessionAnalysis
        from ..net import codec

        records = list(records)
        if not records:
            return
        workers = min(self.workers, len(records))
        blobs = [codec.encode_record(record) for record in records]
        if workers <= 1:
            # Degenerate pool sizes skip IPC entirely; results are
            # byte-identical either way, this is purely less overhead.
            tasks.init_worker(specs, recon)
            for blob in blobs:
                yield SessionAnalysis.from_dict(tasks.analyze_blob(blob))
            return
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_mp_context(),
            initializer=tasks.init_worker,
            initargs=(list(specs), recon),
        ) as pool:
            for payload in _stream_windowed(
                pool, tasks.analyze_blob, blobs, workers * 2
            ):
                yield SessionAnalysis.from_dict(payload)


def default_executor_name() -> str:
    """The ``auto`` policy: ``process`` when the host has cores to use."""
    return "process" if (os.cpu_count() or 1) > 1 else "serial"


def resolve_executor(
    executor: Union[Executor, str, None],
    workers: int = 1,
) -> Executor:
    """Turn an executor spec into a backend instance.

    ``None`` keeps the legacy library behavior (threads when
    ``workers > 1``, else serial) so existing callers are unchanged.
    ``"auto"`` applies the CLI default policy: process on multi-core
    hosts — with every core when ``workers`` was left at 1 — serial
    otherwise.  A string picks a backend explicitly; an
    :class:`Executor` instance passes through.
    """
    if isinstance(executor, Executor):
        return executor
    cpus = os.cpu_count() or 1
    if executor is None:
        return ThreadExecutor(workers) if workers > 1 else SerialExecutor()
    if executor == "auto":
        if cpus > 1:
            return ProcessExecutor(workers if workers > 1 else cpus)
        return ThreadExecutor(workers) if workers > 1 else SerialExecutor()
    if executor == "serial":
        return SerialExecutor()
    if executor == "thread":
        return ThreadExecutor(workers)
    if executor == "process":
        return ProcessExecutor(workers)
    raise ExecutorError(
        f"unknown executor {executor!r} (choose one of {EXECUTOR_NAMES} or 'auto')"
    )
