"""Pluggable execution engine: serial / thread / process backends.

One :class:`Executor` interface maps the per-session pipeline stages
(analyze, ReCon labeling, journal re-scan) over session records; the
batch pipeline, the streaming finalizer, and the QA oracle all route
through it, and every backend is pinned byte-identical for any worker
count.
"""

from .executor import (
    EXECUTOR_NAMES,
    Executor,
    ExecutorError,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_executor_name,
    resolve_executor,
)

__all__ = [
    "EXECUTOR_NAMES",
    "Executor",
    "ExecutorError",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "default_executor_name",
    "resolve_executor",
]
