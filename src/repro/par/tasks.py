"""Module-level task functions for the process-pool backend.

A :class:`~concurrent.futures.ProcessPoolExecutor` can only ship
module-level callables, so the per-session pipeline stages live here as
plain functions over codec-encoded payloads:

- the *payload* crossing the pool's call queue is the session record in
  the compact binary form from :mod:`repro.net.codec` — one ``bytes``
  object, far cheaper to pickle than the object graph;
- the *context* every task needs (service specs, trained ReCon
  classifier) is installed once per worker by :func:`init_worker` via
  the pool's initializer — under the ``fork`` start method it is
  inherited from the parent without any serialization at all;
- *results* return as the JSON-safe dict forms the streaming
  checkpoints already pin round-trip-faithful
  (:meth:`SessionAnalysis.to_dict` / :meth:`LeakRecord.to_dict`), plus
  pickled :class:`TrainingExample` lists for the labeling stage.

Worker-side caches (matcher, categorizer, decode memos) warm up
per-process and are reused across that worker's tasks.
"""

from __future__ import annotations

_CONTEXT = {"specs_by_slug": None, "recon": None, "campaign": None}


def init_worker(specs: list, recon) -> None:
    """Pool initializer: install the per-worker analysis context."""
    _CONTEXT["specs_by_slug"] = {spec.slug: spec for spec in specs}
    _CONTEXT["recon"] = recon


def init_campaign(specs: list, config: dict) -> None:
    """Pool initializer for campaign shards: rebuild the bound context
    (sampler + specs + fold mode) once per worker.  ``config`` is the
    JSON-safe :meth:`CampaignContext.config` dict, so fork and spawn
    workers construct identical contexts."""
    from ..campaign.engine import CampaignContext

    _CONTEXT["campaign"] = CampaignContext.from_config(specs, config)


def campaign_shard(payload) -> bytes:
    """Simulate one shard of users; returns the exact
    (partials-preserving) KIND_CAGG blob from
    :func:`repro.net.codec.encode_campaign`, so the parent's merge of
    shipped partials stays bit-identical to an in-process reduction —
    one ``bytes`` object is far cheaper to pickle than the dict form."""
    from ..net import codec

    start, stop = payload
    return codec.encode_campaign(_CONTEXT["campaign"].run_shard(start, stop))


def campaign_chunk(payload) -> tuple:
    """Timed variant for the adaptive planner: simulate one contiguous
    user range and return ``(elapsed_seconds, blob)``.  The wall time is
    measured inside the worker, so the parent's feedback loop sees pure
    simulation cost, not queueing delay."""
    import time

    from ..net import codec

    start, stop = payload
    began = time.perf_counter()
    partial = _CONTEXT["campaign"].run_shard(start, stop)
    return time.perf_counter() - began, codec.encode_campaign(partial)


def campaign_merge_blobs(blobs: list) -> bytes:
    """Worker-side tree reduction: fold a window of KIND_CAGG blobs (in
    the given order) into one merged blob.  Context-free — the blobs
    are self-contained — and exact, so a tree of these merges is
    bit-identical to the master's serial left fold."""
    from ..campaign.engine import merge_campaigns
    from ..net import codec

    return codec.encode_campaign(
        merge_campaigns(codec.decode_campaign(blob) for blob in blobs)
    )


def analyze_blob(blob: bytes) -> dict:
    """Full per-session analysis; returns ``SessionAnalysis.to_dict()``."""
    from ..core.pipeline import analyze_session
    from ..net import codec

    record = codec.decode_record(blob)
    spec = _CONTEXT["specs_by_slug"][record.service]
    return analyze_session(record, spec, recon=_CONTEXT["recon"]).to_dict()


def label_blob(blob: bytes) -> list:
    """ReCon labeling; returns the session's ``TrainingExample`` list."""
    from ..core.pipeline import label_record
    from ..net import codec

    return label_record(codec.decode_record(blob))


def rescan_blob(blob: bytes) -> dict:
    """Deferred matching∪ReCon re-scan (streaming finalize stage)."""
    from ..core.pipeline import rescan_session
    from ..net import codec

    record = codec.decode_record(blob)
    spec = _CONTEXT["specs_by_slug"][record.service]
    leaks, false_positives = rescan_session(record, spec, recon=_CONTEXT["recon"])
    return {
        "leaks": [leak.to_dict() for leak in leaks],
        "recon_false_positives": false_positives,
    }


def aggregate_batch_blob(blob: bytes) -> dict:
    """Columnar kernel over one batch blob; returns the exact
    (partials-preserving) ``StudyAggregate.to_dict()`` form, so merging
    the shipped partials in the parent stays bit-identical to an
    in-process reduction.  Context-free: the blob is self-contained."""
    from ..analysis.columnar import aggregate_blob

    return aggregate_blob(blob).to_dict()
