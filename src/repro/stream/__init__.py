"""repro.stream — streaming capture and online leak detection.

The batch pipeline (:mod:`repro.core.pipeline`) collects whole traces
and analyzes them after the fact.  This package is the in-situ
counterpart, shaped after the paper's real-world substrate (Meddle +
mitmproxy analyze traffic *as it flows through the VPN*) and its
descendants (ReCon's flow-at-a-time classification, PrivacyProxy's
on-device aggregation):

- :mod:`repro.stream.bus` — the flow event bus: bounded per-shard
  queues with blocking backpressure and a globally sequenced,
  deterministic event order.
- :mod:`repro.stream.analyzer` — sharded stateful analyzers that
  consume flow events and keep :class:`~repro.core.pipeline.SessionAnalysis`
  aggregates up to date per flow, plus the coordinator that turns a
  finished stream into a :class:`~repro.core.pipeline.StudyResult`.
- :mod:`repro.stream.checkpoint` — the JSONL flow journal and periodic
  atomic state snapshots that let a killed run resume without
  re-analyzing what it already processed.

The contract throughout is strict equivalence: for any seed, shard
count, and kill/resume point, the streaming study is byte-for-byte
equal to the batch ``analyze_dataset`` result (pinned by
``tests/test_stream.py``).
"""

from .bus import (
    FLOW,
    SESSION_END,
    SESSION_START,
    FlowBus,
    StreamEvent,
    event_from_dict,
    event_to_dict,
    flow_event,
    session_end_event,
    session_start_event,
)
from .analyzer import (
    DatasetStreamer,
    SessionState,
    StreamAnalyzer,
    StreamError,
    merge_session_states,
    stream_dataset,
)
from .checkpoint import CheckpointError, CheckpointManager, FlowJournal

__all__ = [
    "FLOW",
    "SESSION_END",
    "SESSION_START",
    "CheckpointError",
    "CheckpointManager",
    "DatasetStreamer",
    "FlowBus",
    "FlowJournal",
    "SessionState",
    "StreamAnalyzer",
    "StreamError",
    "StreamEvent",
    "event_from_dict",
    "event_to_dict",
    "flow_event",
    "merge_session_states",
    "session_end_event",
    "session_start_event",
    "stream_dataset",
]
