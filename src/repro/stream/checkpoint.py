"""Flow journal + analyzer checkpoints (crash-safe streaming state).

Two artifacts live in a checkpoint directory:

- ``journal.jsonl`` — every bus event, one JSON line each, appended at
  publish time.  The journal is the stream's durable replica: the
  deferred ReCon passes replay it, and a resumed run uses it to decide
  which events were already persisted.
- ``shard-<i>.json`` — each shard's analyzer state (its sessions'
  aggregates and leak records plus a ``watermark``: the highest event
  sequence folded into that state).  Written atomically every
  ``checkpoint_every`` flows, so a kill loses at most the work since
  the last snapshot — never the file's integrity.

Resume protocol: reload shard states, re-publish the deterministic
event stream from the start, and let each shard skip events at or below
its watermark.  Skipped events are *not* re-analyzed (no matching, no
categorization, no leak policy); the journal appends only events beyond
its last recorded sequence.  Because the event stream is a pure
function of the dataset/seed, sequence numbers line up exactly across
runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Optional, Union

from ..ioutil import atomic_write_json
from .bus import SESSION_END, SESSION_START, StreamEvent, event_from_dict, event_to_dict

CHECKPOINT_VERSION = 1
JOURNAL_NAME = "journal.jsonl"


class CheckpointError(Exception):
    """Raised on malformed or incompatible checkpoint state."""


class FlowJournal:
    """Append-only JSONL log of stream events.

    ``resume=True`` re-opens an existing journal: the tail is scanned
    for the last complete line (a crash can truncate the final write),
    anything after it is discarded, and subsequent appends skip events
    already on disk — so re-publishing the stream from the start is
    idempotent.
    """

    def __init__(self, path: Union[str, Path], resume: bool = False) -> None:
        self.path = Path(path)
        self.last_seq = -1
        if resume and self.path.exists():
            self._recover()
            self._handle = self.path.open("a", encoding="utf-8")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("w", encoding="utf-8")

    def _recover(self) -> None:
        """Find the last complete line; truncate any torn tail.

        Scans bytes, not text: a write torn mid-way through a multi-byte
        UTF-8 character must be dropped like any other torn tail, not
        explode the reader with ``UnicodeDecodeError``.
        """
        data = self.path.read_bytes()
        good_end = 0
        pos = 0
        while pos < len(data):
            newline = data.find(b"\n", pos)
            if newline < 0:
                break  # torn final write
            try:
                decoded = json.loads(data[pos:newline].decode("utf-8"))
                self.last_seq = int(decoded["seq"])
            except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError, ValueError):
                break
            pos = newline + 1
            good_end = pos
        if good_end != len(data):
            with self.path.open("r+b") as handle:
                handle.truncate(good_end)

    def append(self, event: StreamEvent) -> None:
        """Write one event; silently skips already-journaled sequences."""
        if event.seq <= self.last_seq:
            return
        self._handle.write(json.dumps(event_to_dict(event), ensure_ascii=False) + "\n")
        self._handle.flush()
        self.last_seq = event.seq

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def events(self) -> Iterator[StreamEvent]:
        """Replay every journaled event (independent read handle)."""
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                yield event_from_dict(json.loads(line))

    def sessions(self) -> Iterator[tuple]:
        """Yield ``(session_key, ground_truth, [flows])`` per session.

        Sessions are contiguous in the journal (captures are serialized
        through one proxy), so this streams the file without holding
        more than one session's flows at a time.
        """
        key = None
        ground_truth: dict = {}
        flows: list = []
        for event in self.events():
            if event.kind == SESSION_START:
                key = event.session
                ground_truth = event.ground_truth or {}
                flows = []
            elif event.kind == SESSION_END:
                if key is not None:
                    yield (key, ground_truth, flows)
                key = None
            elif key is not None:
                flows.append(event.flow)


class CheckpointManager:
    """Owns one checkpoint directory: the journal plus shard snapshots."""

    def __init__(self, directory: Union[str, Path], shards: int) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.shards = shards

    @property
    def journal_path(self) -> Path:
        return self.directory / JOURNAL_NAME

    def shard_path(self, index: int) -> Path:
        return self.directory / f"shard-{index}.json"

    def has_state(self) -> bool:
        return self.journal_path.exists() or any(
            self.shard_path(i).exists() for i in range(self.shards)
        )

    def save_shard(self, index: int, watermark: int, sessions: list) -> None:
        """Atomically snapshot one shard's analyzer state."""
        atomic_write_json(
            self.shard_path(index),
            {
                "version": CHECKPOINT_VERSION,
                "shards": self.shards,
                "shard": index,
                "watermark": watermark,
                "sessions": sessions,
            },
        )

    def load_shard(self, index: int) -> Optional[dict]:
        """Load one shard snapshot; ``None`` when never checkpointed."""
        path = self.shard_path(index)
        if not path.exists():
            return None
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {data.get('version')!r} in {path}"
            )
        if data.get("shards") != self.shards:
            raise CheckpointError(
                f"checkpoint {path} was written with shards={data.get('shards')}, "
                f"cannot resume with shards={self.shards}"
            )
        return data
