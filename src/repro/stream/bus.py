"""The flow event bus: sequenced, sharded, bounded, journaled.

Three event kinds travel the bus, mirroring the capture lifecycle of
one experiment cell:

- ``session_start`` — session metadata plus the device's ground-truth
  PII (known at capture start: identifiers are burned in at
  provisioning, persona values at sign-in);
- ``flow`` — one *finalized* flow.  The capture addon emits a flow once
  it can no longer change (its connection closed, or the capture
  stopped), and always in ``flow_id`` order within the session;
- ``session_end`` — the cell finished.

Determinism contract: the publisher stamps every event with a global
sequence number under a lock, sessions are assigned to shards by a
stable content hash of the session key, and each shard's queue is FIFO
— so every shard observes its sessions' events in an order that is a
function of the input alone, never of thread timing or shard count.
Queues are bounded; a full shard queue blocks ``publish`` (the capture
side), which is the backpressure that keeps a fast producer from
outrunning a slow analyzer without dropping flows.
"""

from __future__ import annotations

import hashlib
import queue
import threading
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional

from ..net.flow import Flow
from ..net.trace import SessionMeta
from ..pii.types import PiiType

SESSION_START = "session_start"
FLOW = "flow"
SESSION_END = "session_end"

#: Default bound of each shard queue (events, not bytes).
DEFAULT_QUEUE_SIZE = 1024


def ground_truth_to_json(ground_truth: dict) -> dict:
    """``{PiiType: [values]}`` -> JSON-safe ``{code: [values]}``."""
    return {pii.value: list(values) for pii, values in ground_truth.items()}


def ground_truth_from_json(data: dict) -> dict:
    return {PiiType(code): list(values) for code, values in data.items()}


@dataclass(frozen=True)
class StreamEvent:
    """One unit of work on the bus."""

    kind: str  # SESSION_START | FLOW | SESSION_END
    session: tuple  # (service, os_name, medium)
    seq: int = -1  # stamped by the bus on publish
    meta: Optional[SessionMeta] = None  # session_start only
    ground_truth: Optional[dict] = None  # session_start only
    flow: Optional[Flow] = None  # flow only


def session_start_event(meta: SessionMeta, ground_truth: dict) -> StreamEvent:
    return StreamEvent(
        kind=SESSION_START,
        session=(meta.service, meta.os_name, meta.medium),
        meta=meta,
        ground_truth=ground_truth,
    )


def flow_event(session: tuple, flow: Flow) -> StreamEvent:
    return StreamEvent(kind=FLOW, session=tuple(session), flow=flow)


def session_end_event(session: tuple) -> StreamEvent:
    return StreamEvent(kind=SESSION_END, session=tuple(session))


def event_to_dict(event: StreamEvent) -> dict:
    """JSON-safe form of an event (the journal's line format)."""
    data = {"seq": event.seq, "kind": event.kind, "session": list(event.session)}
    if event.kind == SESSION_START:
        data["meta"] = event.meta.to_dict() if event.meta is not None else None
        data["ground_truth"] = ground_truth_to_json(event.ground_truth or {})
    elif event.kind == FLOW:
        data["flow"] = event.flow.to_dict()
    return data


def event_from_dict(data: dict) -> StreamEvent:
    kind = data["kind"]
    session = tuple(data["session"])
    meta = None
    ground_truth = None
    flow = None
    if kind == SESSION_START:
        if data.get("meta"):
            meta = SessionMeta.from_dict(data["meta"])
        ground_truth = ground_truth_from_json(data.get("ground_truth", {}))
    elif kind == FLOW:
        flow = Flow.from_dict(data["flow"])
    return StreamEvent(
        kind=kind,
        session=session,
        seq=data.get("seq", -1),
        meta=meta,
        ground_truth=ground_truth,
        flow=flow,
    )


def shard_for(session: tuple, shards: int) -> int:
    """Stable session->shard assignment.

    Uses a content hash (not ``hash()``, which PYTHONHASHSEED
    randomizes) so the same session lands on the same shard in every
    process — which is what makes checkpoints resumable.
    """
    text = "|".join(str(part) for part in session)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


@dataclass
class BusStats:
    """Live counters, readable while the stream runs."""

    events: int = 0
    flows: int = 0
    sessions: int = 0
    per_shard: list = field(default_factory=list)


class FlowBus:
    """Bounded, sharded, journaling event bus."""

    def __init__(
        self,
        shards: int = 1,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        journal=None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        self.shards = shards
        self.journal = journal  # FlowJournal or None
        self._queues = [queue.Queue(maxsize=queue_size) for _ in range(shards)]
        self._lock = threading.Lock()
        self._seq = 0
        self._closed = False
        self.stats = BusStats(per_shard=[0] * shards)

    def shard_of(self, session: tuple) -> int:
        return shard_for(session, self.shards)

    def publish(self, event: StreamEvent) -> StreamEvent:
        """Stamp, journal, and enqueue one event (blocking on backpressure).

        Returns the stamped event.  The sequence stamp, the journal
        append, and the queue put happen under one lock so that a
        shard's queue always delivers its events in ascending ``seq``
        order even with multiple publishers.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("publish on a closed bus")
            stamped = replace(event, seq=self._seq)
            self._seq += 1
            if self.journal is not None:
                self.journal.append(stamped)
            shard = self.shard_of(stamped.session)
            self._queues[shard].put(stamped)
            self.stats.events += 1
            self.stats.per_shard[shard] += 1
            if stamped.kind == FLOW:
                self.stats.flows += 1
            elif stamped.kind == SESSION_START:
                self.stats.sessions += 1
        return stamped

    def close(self) -> None:
        """Signal end-of-stream to every shard (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for q in self._queues:
            q.put(None)

    def consume(self, shard: int) -> Iterator[StreamEvent]:
        """Yield this shard's events until the bus closes."""
        q = self._queues[shard]
        while True:
            event = q.get()
            if event is None:
                return
            yield event
