"""Sharded online analyzers over the flow event bus.

Each session's analysis state lives in exactly one shard (stable hash
of the session key), and every aggregate the batch pipeline computes
per trace — flow counts, A&A domains/flows/bytes, third-party domains,
matching-based leak records — is folded in *per flow* as events arrive.

ReCon is the one stage that cannot run flow-at-a-time with batch
semantics: the classifier is trained on a slice of the *whole*
campaign (``train_recon_on_dataset``), so its predictions depend on
traffic that hasn't happened yet.  The streaming pipeline therefore
mirrors how ReCon-style systems deploy in practice — string matching
and traffic accounting are fully online, while the ML pass is
deferred: at end of stream the analyzer trains the classifier from the
flow journal and replays each session's journaled transactions through
the combined detector.  With ReCon disabled (``train_recon=False``)
the stream is strictly single-pass.

Equivalence, not similarity, is the bar: ``tests/test_stream.py`` pins
that for any seed, shard count, and kill/resume point the resulting
:class:`~repro.core.pipeline.StudyResult` sessions are *equal* (Python
``==`` over every field, leak lists included) to batch
``analyze_dataset``.
"""

from __future__ import annotations

import random
import tempfile
import threading
import time
from typing import Optional

from ..core.leaks import LeakPolicy
from ..core.pipeline import (
    ServiceResult,
    SessionAnalysis,
    StudyResult,
    categorizer_for,
)
from ..experiment.dataset import Dataset, SessionRecord
from ..experiment.filtering import is_background_flow
from ..net.trace import SessionMeta, Trace
from ..pii.detector import PiiDetector
from ..pii.matcher import matcher_for
from ..pii.recon import ReconClassifier
from .bus import (
    FLOW,
    SESSION_END,
    SESSION_START,
    FlowBus,
    StreamEvent,
    flow_event,
    ground_truth_to_json,
    ground_truth_from_json,
    session_end_event,
    session_start_event,
)
from .checkpoint import CheckpointManager, FlowJournal

#: How many flow events a shard folds in between checkpoint snapshots.
DEFAULT_CHECKPOINT_EVERY = 200

#: Batch parity: which services feed ReCon training, and the tree seed
#: (see :func:`repro.core.pipeline.train_recon_on_dataset`).
RECON_EVERY_NTH_SERVICE = 4
RECON_RNG_SEED = 7


class StreamError(Exception):
    """Raised on invalid stream state (unknown session, dead shard, …)."""


class SessionState:
    """One session's online analysis state inside a shard.

    ``ingest_flow`` performs exactly the per-flow work of the batch
    :func:`~repro.core.pipeline.analyze_session` loop — background
    filtering, categorization, A&A accounting, and matching-based
    detection + leak policy via the *same* detector and policy classes
    — so the running aggregates equal the batch result at every prefix
    of the stream.
    """

    def __init__(self, key: tuple, ground_truth: dict, spec) -> None:
        self.key = key
        self.ground_truth = ground_truth
        self.spec = spec
        self.ended = False
        self.analysis = SessionAnalysis(
            service=key[0], os_name=key[1], medium=key[2]
        )
        self._wire_engines()

    def _wire_engines(self) -> None:
        categorizer = categorizer_for(self.spec)
        self._categorizer = categorizer
        self._policy = LeakPolicy(categorizer)
        self._detector = PiiDetector(matcher_for(self.ground_truth), recon=None)

    def ingest_flow(self, flow) -> None:
        if is_background_flow(flow):
            return
        analysis = self.analysis
        analysis.flows_total += 1
        category = self._categorizer.categorize_flow(flow)
        if category.is_third_party:
            analysis.third_party_domains.add(category.domain)
        if category.is_aa:
            analysis.aa_domains.add(category.domain)
            analysis.aa_flows += 1
            analysis.aa_bytes += flow.total_bytes
        if flow.decrypted:
            for txn in flow.transactions:
                observations, _ = self._detector.scan_transaction(flow, txn)
                analysis.leaks.extend(self._policy.classify_all(observations))

    def merge(self, other: "SessionState") -> "SessionState":
        """Combine two partial states of the *same* session key.

        Used when a session's flows were split across shards (or across
        resumed epochs): analyses merge field-wise via
        :meth:`SessionAnalysis.merge` (associative), ``ended`` ORs.
        Neither operand is mutated; engines are re-wired fresh on the
        merged state.
        """
        if self.key != other.key:
            raise StreamError(
                f"cannot merge session {other.key} into {self.key}"
            )
        merged = SessionState(self.key, self.ground_truth, self.spec)
        merged.ended = self.ended or other.ended
        merged.analysis = self.analysis.merge(other.analysis)
        return merged

    # -- checkpoint (de)serialization ---------------------------------------

    def to_checkpoint(self) -> dict:
        return {
            "key": list(self.key),
            "ended": self.ended,
            "ground_truth": ground_truth_to_json(self.ground_truth),
            "analysis": self.analysis.to_dict(),
        }

    @classmethod
    def from_checkpoint(cls, data: dict, spec) -> "SessionState":
        state = cls.__new__(cls)
        state.key = tuple(data["key"])
        state.ground_truth = ground_truth_from_json(data["ground_truth"])
        state.spec = spec
        state.ended = bool(data["ended"])
        state.analysis = SessionAnalysis.from_dict(data["analysis"])
        state._wire_engines()
        return state


class ShardWorker:
    """Consumes one shard's queue and owns its sessions' state.

    ``watermark`` is the highest event sequence folded into the state;
    events at or below it (re-published during a resume) are skipped
    without any analysis work.
    """

    def __init__(
        self,
        index: int,
        specs_by_slug: dict,
        checkpoint: Optional[CheckpointManager] = None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    ) -> None:
        self.index = index
        self.specs_by_slug = specs_by_slug
        self.checkpoint = checkpoint
        self.checkpoint_every = checkpoint_every
        self.sessions: dict = {}  # key -> SessionState
        self.watermark = -1
        self.error: Optional[BaseException] = None
        self._flows_since_snapshot = 0

    def restore(self) -> None:
        """Reload this shard's snapshot, if one exists."""
        if self.checkpoint is None:
            return
        data = self.checkpoint.load_shard(self.index)
        if data is None:
            return
        self.watermark = data["watermark"]
        for entry in data["sessions"]:
            slug = entry["key"][0]
            spec = self.specs_by_slug.get(slug)
            if spec is None:
                raise StreamError(f"checkpointed session for unknown service {slug!r}")
            state = SessionState.from_checkpoint(entry, spec)
            self.sessions[state.key] = state

    def process(self, event: StreamEvent) -> None:
        if event.seq <= self.watermark:
            return  # already folded in before the checkpoint we resumed from
        if event.kind == SESSION_START:
            spec = self.specs_by_slug.get(event.session[0])
            if spec is None:
                raise StreamError(
                    f"session for unknown service {event.session[0]!r}"
                )
            self.sessions[event.session] = SessionState(
                event.session, event.ground_truth or {}, spec
            )
        elif event.kind == FLOW:
            state = self.sessions.get(event.session)
            if state is None:
                raise StreamError(f"flow for unknown session {event.session}")
            state.ingest_flow(event.flow)
            self._flows_since_snapshot += 1
        elif event.kind == SESSION_END:
            state = self.sessions.get(event.session)
            if state is None:
                raise StreamError(f"end for unknown session {event.session}")
            state.ended = True
        self.watermark = event.seq
        if (
            self.checkpoint is not None
            and self._flows_since_snapshot >= self.checkpoint_every
        ):
            self.snapshot()

    def snapshot(self) -> None:
        if self.checkpoint is None:
            return
        self.checkpoint.save_shard(
            self.index,
            self.watermark,
            [state.to_checkpoint() for state in self.sessions.values()],
        )
        self._flows_since_snapshot = 0

    def run(self, bus: FlowBus) -> None:
        """Thread target: drain the shard queue until the bus closes."""
        try:
            for event in bus.consume(self.index):
                self.process(event)
        except BaseException as exc:  # surfaced by StreamAnalyzer.finish
            self.error = exc


def merge_session_states(shard_mappings) -> dict:
    """Associatively merge per-shard ``{key: SessionState}`` mappings.

    With the hash-partitioned bus each session lives on exactly one
    shard, so this degenerates to a dict union — but states sharing a
    key (hierarchical shard combining, resumed epochs) merge via
    :meth:`SessionState.merge`, and because every underlying field
    combine is associative and commutative-up-to-leak-order, any
    grouping of shards produces the same study (pinned in
    ``tests/test_stream_merge.py``).
    """
    states: dict = {}
    for mapping in shard_mappings:
        for key, state in mapping.items():
            mine = states.get(key)
            states[key] = state if mine is None else mine.merge(state)
    return states


class StreamAnalyzer:
    """Coordinator: bus + shard workers + finalization into a study.

    Feed it events with :meth:`publish` (or attach a
    :class:`~repro.proxy.addons.StreamCapture` addon whose sink is
    ``analyzer.publish``), then call :meth:`finalize` to train/apply
    ReCon and assemble the :class:`StudyResult`.
    """

    def __init__(
        self,
        services: list,
        shards: int = 1,
        queue_size: int = 1024,
        checkpoint_dir=None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        resume: bool = False,
        executor=None,
    ) -> None:
        self.services = list(services)
        self.specs_by_slug = {spec.slug: spec for spec in self.services}
        self.executor = executor  # backend for the deferred ReCon passes
        self._tempdir = None
        if checkpoint_dir is None:
            # The journal backs the deferred ReCon passes even when the
            # caller doesn't want durable checkpoints.
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-stream-")
            journal_dir = self._tempdir.name
            self.checkpoint: Optional[CheckpointManager] = None
            journal_path = f"{journal_dir}/journal.jsonl"
        else:
            self.checkpoint = CheckpointManager(checkpoint_dir, shards)
            journal_path = self.checkpoint.journal_path
        self.journal = FlowJournal(journal_path, resume=resume)
        self.bus = FlowBus(shards=shards, queue_size=queue_size, journal=self.journal)
        self.workers = [
            ShardWorker(
                index,
                self.specs_by_slug,
                checkpoint=self.checkpoint,
                checkpoint_every=checkpoint_every,
            )
            for index in range(shards)
        ]
        if resume:
            for worker in self.workers:
                worker.restore()
        self._threads: list = []
        self._started = False
        self._finished = False
        self._started_at = 0.0
        self.elapsed = 0.0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._started_at = time.perf_counter()
        for worker in self.workers:
            thread = threading.Thread(
                target=worker.run,
                args=(self.bus,),
                name=f"repro-stream-shard-{worker.index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def publish(self, event: StreamEvent) -> None:
        self.bus.publish(event)

    def finish(self, snapshot: bool = True) -> None:
        """Close the bus, join the shards, surface any shard error.

        ``snapshot=False`` skips the final checkpoint — used by tests
        to simulate a crash that loses post-snapshot state.
        """
        if self._finished:
            return
        self._finished = True
        self.bus.close()
        for thread in self._threads:
            thread.join()
        self.elapsed = time.perf_counter() - self._started_at if self._started else 0.0
        for worker in self.workers:
            if worker.error is not None:
                raise StreamError(
                    f"shard {worker.index} failed: {worker.error!r}"
                ) from worker.error
        if snapshot and self.checkpoint is not None:
            for worker in self.workers:
                worker.snapshot()

    def abort(self) -> None:
        """Simulated kill: stop consuming without a final snapshot."""
        self.finish(snapshot=False)
        self.journal.close()

    # -- finalization --------------------------------------------------------

    def session_states(self) -> dict:
        return merge_session_states(worker.sessions for worker in self.workers)

    def finalize(
        self,
        train_recon: bool = True,
        recon: Optional[ReconClassifier] = None,
    ) -> StudyResult:
        """End the stream and assemble the study (batch-equivalent)."""
        self.finish()
        self.journal.close()
        try:
            from ..par import resolve_executor

            engine = resolve_executor(self.executor)
            states = self.session_states()
            if recon is None and train_recon and states:
                recon = self._train_recon(states, engine)
            if recon is not None:
                self._apply_recon(states, recon, engine)
            return self._assemble(states, recon)
        finally:
            if self._tempdir is not None:
                self._tempdir.cleanup()

    def _journal_records(self, keep) -> list:
        """Bulk journal replay as :class:`SessionRecord` work items.

        Each journaled session whose key passes ``keep`` becomes a
        record (ground truth in publish order, flows in journal order)
        — the executor's unit of fan-out; the process backend ships
        them to workers in codec form.  Returned sorted by session key,
        the canonical processing order of every pipeline path.
        """
        records = []
        for key, ground_truth, flows in self.journal.sessions():
            if not keep(key):
                continue
            trace = Trace(
                meta=SessionMeta(service=key[0], os_name=key[1], medium=key[2]),
                flows=list(flows),
            )
            records.append(
                SessionRecord(
                    service=key[0],
                    os_name=key[1],
                    medium=key[2],
                    trace=trace,
                    ground_truth=ground_truth,
                )
            )
        records.sort(key=lambda record: record.key)
        return records

    def _train_recon(self, states: dict, engine) -> ReconClassifier:
        """Train ReCon from the journal, mirroring the batch slice.

        Same selection (every 4th service by sorted slug), same label
        source (each session's own ground truth), same deterministic
        example order (sessions sorted by key), same tree seed.
        """
        slugs = sorted({key[0] for key in states})
        chosen = set(slugs[::RECON_EVERY_NTH_SERVICE])
        records = self._journal_records(lambda key: key[0] in chosen)
        examples: list = []
        for batch in engine.map_label(records):
            examples.extend(batch)
        classifier = ReconClassifier(rng=random.Random(RECON_RNG_SEED))
        return classifier.fit(examples)

    def _apply_recon(self, states: dict, recon: ReconClassifier, engine) -> None:
        """Replay journaled transactions through the combined detector.

        Overwrites each session's leak list and false-positive count
        with the matching∪ReCon result — exactly what
        :func:`~repro.core.pipeline.analyze_session` computes (the
        shared :func:`~repro.core.pipeline.rescan_session` stage).
        """
        records = self._journal_records(lambda key: key in states)
        results = engine.map_rescan(records, self.services, recon)
        for record, (leaks, false_positives) in zip(records, results):
            state = states[record.key]
            state.analysis.leaks = leaks
            state.analysis.recon_false_positives = false_positives

    def _assemble(self, states: dict, recon) -> StudyResult:
        incomplete = sorted(key for key, state in states.items() if not state.ended)
        if incomplete:
            raise StreamError(f"stream ended mid-session: {incomplete}")
        results: dict = {}
        for key in sorted(states):
            slug = key[0]
            result = results.get(slug)
            if result is None:
                result = ServiceResult(spec=self.specs_by_slug[slug])
                results[slug] = result
            result.sessions[(key[1], key[2])] = states[key].analysis
        ordered = [
            results[spec.slug] for spec in self.services if spec.slug in results
        ]
        return StudyResult(services=ordered, dataset=None, recon=recon)

    # -- live stats ----------------------------------------------------------

    @property
    def flows_per_second(self) -> float:
        elapsed = (
            self.elapsed
            if self._finished
            else (time.perf_counter() - self._started_at if self._started else 0.0)
        )
        if elapsed <= 0.0:
            return 0.0
        return self.bus.stats.flows / elapsed


class DatasetStreamer:
    """Publishes a collected :class:`Dataset` through a stream analyzer.

    The event sequence is a pure function of the dataset (sessions in
    key order, flows in capture order), which is what makes sequence
    numbers line up across a kill and a resume.
    """

    def __init__(self, dataset: Dataset, services: list, **analyzer_kwargs) -> None:
        self.dataset = dataset
        self.services = services
        self.analyzer = StreamAnalyzer(services, **analyzer_kwargs)
        self._specs_by_slug = self.analyzer.specs_by_slug

    def events(self):
        for record in sorted(self.dataset, key=lambda r: r.key):
            spec = self._specs_by_slug.get(record.service)
            meta = SessionMeta(
                service=record.service,
                os_name=record.os_name,
                medium=record.medium,
                category=spec.category if spec is not None else "",
                duration=record.duration,
                session_id=f"{record.service}-{record.os_name}-{record.medium}",
            )
            yield session_start_event(meta, record.ground_truth)
            for flow in record.trace:
                yield flow_event(record.key, flow)
            yield session_end_event(record.key)

    def run(self, limit: Optional[int] = None) -> int:
        """Publish up to ``limit`` events (all of them when ``None``)."""
        self.analyzer.start()
        published = 0
        for event in self.events():
            if limit is not None and published >= limit:
                break
            self.analyzer.publish(event)
            published += 1
        return published

    def finalize(self, train_recon: bool = True, recon=None) -> StudyResult:
        study = self.analyzer.finalize(train_recon=train_recon, recon=recon)
        study.dataset = self.dataset
        return study


def stream_dataset(
    dataset: Dataset,
    services: list,
    shards: int = 1,
    train_recon: bool = True,
    recon: Optional[ReconClassifier] = None,
    queue_size: int = 1024,
    checkpoint_dir=None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    resume: bool = False,
    executor=None,
) -> StudyResult:
    """Evaluate a collected dataset through the streaming subsystem.

    The streaming twin of :func:`repro.core.pipeline.analyze_dataset`:
    same inputs, byte-for-byte equal output, for any ``shards`` value
    and any ``executor`` backend (the deferred ReCon passes fan out
    through :mod:`repro.par`).  With ``checkpoint_dir`` set, a killed
    run re-invoked with ``resume=True`` picks up from the last snapshot
    without re-analyzing already-processed flows.
    """
    streamer = DatasetStreamer(
        dataset,
        services,
        shards=shards,
        queue_size=queue_size,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        resume=resume,
        executor=executor,
    )
    streamer.run()
    return streamer.finalize(train_recon=train_recon, recon=recon)
