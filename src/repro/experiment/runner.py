"""The experiment runner: §3.2's test procedure, automated.

For each (service, OS, medium) cell the runner follows the paper's steps
exactly: factory-fresh handset, sign in the tester persona (with a
pre-created per-service account), connect the VPN to the interception
proxy, install + launch the app (or open the platform browser in
private mode), interact for four simulated minutes using the shared
script, then close the VPN and uninstall.  The captured trace plus the
session's ground-truth PII become one :class:`SessionRecord`.
"""

from __future__ import annotations

import random
from typing import Optional

from ..device.browser import Browser
from ..device.persona import Persona, generate_persona
from ..device.phone import ANDROID, IOS, Phone, PhoneSpec
from ..http.session import ClientSession
from ..net.trace import SessionMeta
from ..services.service import AppRuntime, ServiceSpec, WebRuntime
from ..services.world import World
from .dataset import APP, WEB, Dataset, SessionRecord
from .scripts import LOGIN, OPEN, InteractionScript, standard_script


class RunnerError(Exception):
    """Raised on invalid runner configuration."""


def _phone_spec(os_name: str) -> PhoneSpec:
    if os_name == ANDROID:
        return PhoneSpec.nexus5()
    if os_name == IOS:
        return PhoneSpec.iphone5()
    raise RunnerError(f"unknown OS {os_name!r}")


class ExperimentRunner:
    """Runs manual-test sessions against a built world."""

    def __init__(
        self,
        world: World,
        seed: int = 2016,
        persona: Optional[Persona] = None,
    ) -> None:
        """``persona`` overrides the seed-derived tester identity — the
        campaign engine passes each sampled user's own persona so the
        session's searchable PII belongs to that user."""
        self.world = world
        self.seed = seed
        self._base_persona = (
            persona if persona is not None else generate_persona(random.Random(seed))
        )
        self._accounts: dict = {}  # slug -> Persona

    def _rng(self, *parts) -> random.Random:
        # Hash-derived seeding: stable across processes (unlike hash()
        # of strings, which PYTHONHASHSEED randomizes).
        import hashlib

        text = ":".join([str(self.seed)] + [str(p) for p in parts])
        digest = hashlib.sha256(text.encode()).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def account_for(self, spec: ServiceSpec) -> Persona:
        """The pre-created account shared by all sessions of a service."""
        account = self._accounts.get(spec.slug)
        if account is None:
            account = self._base_persona.fresh_account(spec.slug, self._rng(spec.slug, "acct"))
            self._accounts[spec.slug] = account
        return account

    # -- single session -----------------------------------------------------

    def run_session(
        self,
        spec: ServiceSpec,
        os_name: str,
        medium: str,
        duration: float = 240.0,
        script: Optional[InteractionScript] = None,
        phone_setup=None,
    ) -> SessionRecord:
        """Run one experiment cell and return its record.

        ``phone_setup`` is an optional callback invoked with the freshly
        provisioned :class:`Phone` before the session starts — used to
        install countermeasures (e.g. a tracker-blocking transport
        wrapper) or alter device state for ablations.
        """
        if os_name not in spec.oses:
            raise RunnerError(f"{spec.name} is not tested on {os_name}")
        if medium not in (APP, WEB):
            raise RunnerError(f"unknown medium {medium!r}")
        world = self.world
        rng = self._rng(spec.slug, os_name, medium)
        phone = Phone(_phone_spec(os_name), world.network, rng)
        phone.sign_in(self.account_for(spec))
        phone.background_sync = False  # methodology: sync disabled
        phone.connect_vpn(world.proxy)
        if phone_setup is not None:
            phone_setup(phone)

        if script is None:
            script = standard_script(spec, duration=duration)
        meta = SessionMeta(
            service=spec.slug,
            os_name=os_name,
            medium=medium,
            category=spec.category,
            duration=script.duration,
            device=phone.spec.model,
            session_id=f"{spec.slug}-{os_name}-{medium}",
        )
        world.proxy.start_capture(meta)
        try:
            if medium == APP:
                phone.install_app(spec.slug)
                runtime = AppRuntime(spec, phone, world.clock, rng)
            else:
                browser = Browser(phone)
                runtime = WebRuntime(spec, browser, world.clock, rng)
            self._drive(runtime, phone, script, medium)
            runtime.close()
        finally:
            trace = world.proxy.stop_capture()
            phone.disconnect_vpn()
            if medium == APP:
                phone.uninstall_app(spec.slug)

        return SessionRecord(
            service=spec.slug,
            os_name=os_name,
            medium=medium,
            trace=trace,
            ground_truth=phone.ground_truth(),
            duration=script.duration,
        )

    def _drive(self, runtime, phone: Phone, script: InteractionScript, medium: str) -> None:
        clock = self.world.clock
        deadline = clock.deadline(script.duration)
        ticks = 0
        for action in script.actions():
            if clock.expired(deadline):
                break
            if action == OPEN:
                if medium == APP:
                    runtime.launch()
                else:
                    runtime.open_site()
            elif action == LOGIN:
                runtime.login()
            else:
                runtime.perform_action(action)
            # Residual OS keepalive noise (filtered later, as in §3.2).
            ticks += 1
            if ticks % 4 == 0:
                phone.background_tick(
                    lambda transport: ClientSession(transport, now_fn=clock.now)
                )

    # -- full study ----------------------------------------------------------

    def run_service(
        self, spec: ServiceSpec, duration: float = 240.0, phone_setup=None
    ) -> list:
        """All cells for one service (app/web × each tested OS)."""
        records = []
        for os_name in spec.oses:
            for medium in (APP, WEB):
                records.append(
                    self.run_session(
                        spec, os_name, medium, duration=duration, phone_setup=phone_setup
                    )
                )
        return records

    def run_study(
        self,
        services: Optional[list] = None,
        duration: float = 240.0,
        phone_setup=None,
        mitigation=None,
    ) -> Dataset:
        """Run the full measurement campaign and return the dataset.

        ``phone_setup`` is forwarded to every :meth:`run_session` — the
        streaming pipeline uses it to stage each device's ground truth
        into the live capture addon.

        ``mitigation`` turns the capture proxy into an inline mitigating
        proxy for the whole campaign: pass a
        :class:`~repro.mitigate.policy.MitigationPolicy` (an addon is
        built from it) or a prepared
        :class:`~repro.mitigate.plane.MitigationAddon`.  The addon is
        installed on the world proxy for the duration of the study and
        its ground-truth staging is chained in front of ``phone_setup``.
        With ``mitigation=None`` this method is byte-identical to the
        pre-mitigation runner.
        """
        specs = services if services is not None else self.world.services
        if mitigation is None:
            dataset = Dataset()
            for spec in specs:
                for record in self.run_service(
                    spec, duration=duration, phone_setup=phone_setup
                ):
                    dataset.add(record)
            return dataset

        if hasattr(mitigation, "rewrite_request"):
            addon = mitigation
        else:
            from ..mitigate.plane import MitigationAddon

            addon = MitigationAddon(mitigation, specs, seed=self.seed)

        if phone_setup is None:
            setup = addon.stage_phone
        else:
            def setup(phone):
                addon.stage_phone(phone)
                phone_setup(phone)

        proxy = self.world.proxy
        proxy.add_addon(addon)
        try:
            dataset = Dataset()
            for spec in specs:
                for record in self.run_service(
                    spec, duration=duration, phone_setup=setup
                ):
                    dataset.add(record)
            return dataset
        finally:
            proxy.remove_addon(addon)
