"""Methodology harness: scripts, runner, filtering, dataset."""

from .dataset import APP, MEDIA, OSES, WEB, Dataset, SessionRecord
from .filtering import background_share, filter_background, is_background_flow
from .runner import ExperimentRunner, RunnerError
from .scripts import (
    BROWSE,
    DEFAULT_DURATION,
    LOGIN,
    OPEN,
    SEARCH,
    VIEW,
    InteractionScript,
    standard_script,
)

__all__ = [
    "APP",
    "BROWSE",
    "DEFAULT_DURATION",
    "Dataset",
    "ExperimentRunner",
    "InteractionScript",
    "LOGIN",
    "MEDIA",
    "OPEN",
    "OSES",
    "RunnerError",
    "SEARCH",
    "SessionRecord",
    "VIEW",
    "WEB",
    "background_share",
    "filter_background",
    "is_background_flow",
    "standard_script",
]
