"""Interaction scripts.

A script is the sequence of user actions a tester performs during the
four-minute session (§3.2: open the app/site, log in with the
pre-created account, then use the service for its intended purpose).
The same script instance drives both the app and the web session of a
service, guaranteeing the identical-operations property the paper's
methodology demands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

OPEN = "open"
LOGIN = "login"
BROWSE = "browse"
VIEW = "view"
SEARCH = "search"

DEFAULT_DURATION = 240.0

# The rotating stream of in-service activities after open/login.
_ACTIVITY_CYCLE = (BROWSE, VIEW, SEARCH, BROWSE, VIEW, BROWSE)


@dataclass(frozen=True)
class InteractionScript:
    """A named action sequence with a time budget.

    ``cycle`` is the rotating in-service activity stream; the default
    is the fixed manual-test rotation, while persona-parameterized
    campaign scripts supply their own per-user ordering.
    """

    name: str
    requires_login: bool
    duration: float = DEFAULT_DURATION
    cycle: tuple = _ACTIVITY_CYCLE

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")
        if not self.cycle:
            raise ValueError("activity cycle must not be empty")
        for action in self.cycle:
            if action not in (BROWSE, VIEW, SEARCH):
                raise ValueError(f"unknown activity {action!r} in cycle")

    def actions(self) -> Iterator:
        """Yield actions indefinitely; the runner stops at the deadline.

        The first yields are always ``open`` (and ``login`` when the
        service requires an account); afterwards activities cycle.
        """
        yield OPEN
        if self.requires_login:
            yield LOGIN
        index = 0
        while True:
            yield self.cycle[index % len(self.cycle)]
            index += 1


def standard_script(spec, duration: float = DEFAULT_DURATION) -> InteractionScript:
    """The default four-minute manual test for a service."""
    return InteractionScript(
        name=f"standard-{spec.slug}",
        requires_login=spec.requires_login,
        duration=duration,
    )


def persona_script(spec, duration: float, rng) -> InteractionScript:
    """A persona-parameterized session script.

    Same action vocabulary as the manual test, but the activity
    rotation is drawn from ``rng`` — deterministic per (user, session)
    in a campaign, so two users exercise a service differently while
    any re-run of the same user replays identically.
    """
    cycle = list(_ACTIVITY_CYCLE)
    rng.shuffle(cycle)
    return InteractionScript(
        name=f"persona-{spec.slug}",
        requires_login=spec.requires_login,
        duration=duration,
        cycle=tuple(cycle),
    )
