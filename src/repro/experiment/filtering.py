"""Background-traffic filtering (§3.2 "Filtering").

Three mechanisms, mirroring the paper: flows tagged ``background`` /
``os-service`` at capture time are dropped; flows to hostnames known to
belong to OS services (Google Play Services, iCloud, push) are dropped
even when untagged; and a custom blocklist can extend the OS list.
"""

from __future__ import annotations

from typing import Iterable

from ..device.phone import OS_SERVICE_HOSTS
from ..net.trace import Trace

BACKGROUND_TAGS = ("background", "os-service")


def os_service_hostnames() -> set:
    """Every known OS-service hostname across platforms."""
    hosts: set = set()
    for names in OS_SERVICE_HOSTS.values():
        hosts.update(names)
    return hosts


def is_background_flow(flow, extra_hosts: Iterable = ()) -> bool:
    if any(tag in flow.tags for tag in BACKGROUND_TAGS):
        return True
    host = flow.hostname.lower()
    if host in os_service_hostnames():
        return True
    return host in {h.lower() for h in extra_hosts}


def filter_background(trace: Trace, extra_hosts: Iterable = ()) -> Trace:
    """Return a trace without background/OS-service flows."""
    return trace.filtered(lambda flow: not is_background_flow(flow, extra_hosts))


def background_share(trace: Trace) -> float:
    """Fraction of flows that background filtering would remove."""
    if not len(trace):
        return 0.0
    dropped = sum(1 for flow in trace if is_background_flow(flow))
    return dropped / len(trace)
