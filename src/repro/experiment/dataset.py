"""Collected-dataset container.

A :class:`Dataset` holds every captured session of a study run together
with the per-session ground truth needed for detection, and provides the
indexing the analysis stage uses (by service, OS, and medium).  Datasets
serialize to a directory of JSONL traces plus a manifest, so studies can
be collected once and analyzed many times.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Union

from ..ioutil import atomic_write_json
from ..net.trace import Trace
from ..pii.types import PiiType

ANDROID = "android"
IOS = "ios"
APP = "app"
WEB = "web"

OSES = (ANDROID, IOS)
MEDIA = (APP, WEB)


@dataclass
class SessionRecord:
    """One captured experiment session plus its ground truth."""

    service: str  # slug
    os_name: str
    medium: str
    trace: Trace
    ground_truth: dict = field(default_factory=dict)  # PiiType -> [values]
    duration: float = 240.0

    @property
    def key(self) -> tuple:
        return (self.service, self.os_name, self.medium)

    def ground_truth_json(self) -> dict:
        return {pii.value: values for pii, values in self.ground_truth.items()}

    @staticmethod
    def ground_truth_from_json(data: dict) -> dict:
        return {PiiType(code): values for code, values in data.items()}


class Dataset:
    """All sessions of one study run."""

    def __init__(self) -> None:
        self._sessions: dict = {}

    def add(self, record: SessionRecord) -> None:
        if record.key in self._sessions:
            raise ValueError(f"duplicate session {record.key}")
        self._sessions[record.key] = record

    def get(self, service: str, os_name: str, medium: str) -> Optional[SessionRecord]:
        return self._sessions.get((service, os_name, medium))

    def __len__(self) -> int:
        return len(self._sessions)

    def __iter__(self) -> Iterator:
        return iter(self._sessions.values())

    def services(self) -> list:
        return sorted({key[0] for key in self._sessions})

    def sessions_for(self, service: str) -> list:
        return [r for r in self._sessions.values() if r.service == service]

    def total_flows(self) -> int:
        return sum(len(record.trace) for record in self)

    def total_bytes(self) -> int:
        return sum(record.trace.total_bytes for record in self)

    # -- persistence ---------------------------------------------------------

    def save(self, directory: Union[str, Path], fmt: str = "binary") -> None:
        """Write traces + manifest under ``directory``.

        ``fmt`` picks the trace format (``"binary"`` default, ``"json"``
        for the legacy JSONL files); :meth:`load` reads either since the
        manifest records filenames and ``Trace.load`` sniffs the format.
        Every file (each trace and the manifest) is written atomically,
        and the manifest goes last — a killed save never leaves a
        manifest pointing at truncated or missing traces.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        extension = "bin" if fmt == "binary" else "jsonl"
        manifest = []
        for key in sorted(self._sessions):
            record = self._sessions[key]
            filename = f"{record.service}_{record.os_name}_{record.medium}.{extension}"
            record.trace.dump(directory / filename, fmt=fmt)
            manifest.append(
                {
                    "service": record.service,
                    "os": record.os_name,
                    "medium": record.medium,
                    "trace": filename,
                    "duration": record.duration,
                    "ground_truth": record.ground_truth_json(),
                }
            )
        atomic_write_json(directory / "manifest.json", {"sessions": manifest})

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "Dataset":
        directory = Path(directory)
        with (directory / "manifest.json").open("r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        dataset = cls()
        for entry in manifest["sessions"]:
            trace = Trace.load(directory / entry["trace"])
            dataset.add(
                SessionRecord(
                    service=entry["service"],
                    os_name=entry["os"],
                    medium=entry["medium"],
                    trace=trace,
                    ground_truth=SessionRecord.ground_truth_from_json(entry["ground_truth"]),
                    duration=entry.get("duration", 240.0),
                )
            )
        return dataset
