"""Command-line interface.

``repro run`` executes the full measurement campaign and prints the
paper's tables; subcommands regenerate individual artifacts or make
app-vs-web recommendations.  Everything is deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys

from .analysis.figures import ALL_FIGURES, render_series
from .analysis.tables import (
    render_table1,
    render_table2,
    render_table3,
    table1,
    table2,
    table3,
)
from .core.pipeline import run_study
from .core.recommend import PrivacyPreferences, Recommender
from .services.catalog import build_catalog


def _resolve_workers(value: int) -> int:
    """``--workers 0`` means "use every core"."""
    import os

    if value > 0:
        return value
    return os.cpu_count() or 1


def _selected_services(args):
    services = build_catalog()
    if getattr(args, "services", None):
        wanted = set(args.services.split(","))
        services = [s for s in services if s.slug in wanted]
        if not services:
            raise SystemExit(f"no catalog services match {args.services!r}")
    return services


def _build_study(args):
    return run_study(
        services=_selected_services(args),
        seed=args.seed,
        duration=args.duration,
        train_recon=not args.no_recon,
        workers=_resolve_workers(getattr(args, "workers", 1)),
        executor=getattr(args, "executor", None),
        cache_dir=getattr(args, "cache_dir", None),
    )


def _add_agg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--agg",
        choices=["auto", "columnar", "rows"],
        default="auto",
        help="aggregation engine for tables/figures/reach: 'columnar' "
        "reduces struct-packed batches from the binary codec (the fast "
        "path; 'auto' picks it), 'rows' walks the per-session object "
        "graph (the reference). Output is byte-identical either way.",
    )


def _study_view(study, args):
    """Apply ``--agg``: the study itself (rows) or its columnar
    aggregate, computed once and shared by every consumer below."""
    from .analysis import columnar

    if columnar.resolve_agg(getattr(args, "agg", "rows")) == "rows":
        return study
    return columnar.study_aggregate(
        study, executor=getattr(args, "executor", None)
    )


def _add_executor(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--executor",
        choices=["auto", "serial", "thread", "process"],
        default="auto",
        help="analysis fan-out backend: 'process' uses one OS process per "
        "worker (true multi-core; the default on multi-core hosts), "
        "'thread' shares the GIL, 'serial' is a plain loop; 'auto' picks "
        "process when os.cpu_count() > 1, else serial. Results are "
        "byte-identical for every choice.",
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=2016, help="study RNG seed")
    parser.add_argument(
        "--duration", type=float, default=240.0, help="session length in seconds"
    )
    parser.add_argument(
        "--services", help="comma-separated service slugs (default: all 50)"
    )
    parser.add_argument(
        "--no-recon", action="store_true", help="skip ReCon training (matching only)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="analysis workers; 0 = one per CPU core (results are "
        "identical for any value)",
    )
    _add_executor(parser)
    _add_agg(parser)
    parser.add_argument(
        "--cache-dir",
        help="persistent incremental-analysis cache directory: campaign, "
        "classifier, and per-session results are reused when their "
        "content and config are unchanged",
    )


def cmd_run(args) -> int:
    view = _study_view(_build_study(args), args)
    print(render_table1(table1(view)))
    print()
    print(render_table2(table2(view)))
    print()
    print(render_table3(table3(view)))
    return 0


def cmd_tables(args) -> int:
    view = _study_view(_build_study(args), args)
    renderers = {"1": (table1, render_table1), "2": (table2, render_table2), "3": (table3, render_table3)}
    if args.table not in renderers:
        raise SystemExit(f"unknown table {args.table!r} (choose 1, 2, or 3)")
    generate, render = renderers[args.table]
    print(render(generate(view)))
    return 0


def cmd_figure(args) -> int:
    view = _study_view(_build_study(args), args)
    generator = ALL_FIGURES.get(args.figure)
    if generator is None:
        raise SystemExit(f"unknown figure {args.figure!r} (choose {sorted(ALL_FIGURES)})")
    for os_name, series in generator(view).items():
        print(render_series(series))
        print()
    return 0


def _preferences_from_args(args) -> PrivacyPreferences:
    """``--prefs FILE.json`` plus ``--weight TYPE=VAL`` overrides."""
    import json

    from .core.recommend import apply_weight_overrides, preferences_from_dict

    preferences = PrivacyPreferences()
    try:
        if getattr(args, "prefs", None):
            with open(args.prefs, "r", encoding="utf-8") as handle:
                preferences = preferences_from_dict(json.load(handle))
        preferences = apply_weight_overrides(preferences, getattr(args, "weight", None) or [])
    except (ValueError, OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"bad preferences: {exc}")
    return preferences


def _recommend_json_payload(study, preferences) -> dict:
    """``{os: recommend_payload(...)}`` for every OS the study covers.

    The inner etag is empty — exactly the shape an ingest job's
    ``recommendations`` section carries, so CI can diff the two
    byte-for-byte (see the ``ingest-smoke`` job).
    """
    from .serve.app import recommend_payload

    oses = sorted(
        {os_name for result in study.services for (os_name, _medium) in result.sessions}
    )
    return {
        os_name: recommend_payload(study, preferences, os_name, etag="")
        for os_name in oses
    }


def cmd_recommend(args) -> int:
    study = _build_study(args)
    preferences = _preferences_from_args(args)
    if getattr(args, "json", False):
        from .serve.app import canonical_json

        payload = _recommend_json_payload(study, preferences)
        print(canonical_json(payload).decode("utf-8"))
        return 0
    recommender = Recommender(study, preferences)
    for os_name in ("android", "ios"):
        print(f"--- {os_name} ---")
        for rec in recommender.recommend_all(os_name):
            print(
                f"{rec.service:15s} use the {rec.choice:6s} "
                f"(app={rec.app_score:.2f}, web={rec.web_score:.2f})"
            )
        print("summary:", recommender.summary(os_name))
    return 0


def cmd_report(args) -> int:
    from .analysis.report import render_markdown

    view = _study_view(_build_study(args), args)
    print(render_markdown(view, seed=args.seed, duration=args.duration))
    return 0


def cmd_collect(args) -> int:
    from .experiment.runner import ExperimentRunner
    from .services.world import build_world

    services = build_catalog()
    if args.services:
        wanted = set(args.services.split(","))
        services = [s for s in services if s.slug in wanted]
    world = build_world(services)
    runner = ExperimentRunner(world, seed=args.seed)
    dataset = runner.run_study(services, duration=args.duration)
    dataset.save(args.out)
    print(f"saved {len(dataset)} sessions ({dataset.total_flows()} flows) to {args.out}")
    return 0


def cmd_analyze(args) -> int:
    from .core.pipeline import analyze_dataset
    from .experiment.dataset import Dataset

    dataset = Dataset.load(args.dataset)
    slugs = set(dataset.services())
    services = [s for s in build_catalog() if s.slug in slugs]
    cache = None
    if getattr(args, "cache_dir", None):
        from .core.cache import AnalysisCache

        cache = AnalysisCache(args.cache_dir)
    study = analyze_dataset(
        dataset,
        services,
        train_recon=not args.no_recon,
        workers=_resolve_workers(getattr(args, "workers", 1)),
        executor=getattr(args, "executor", None),
        cache=cache,
    )
    view = _study_view(study, args)
    print(render_table1(table1(view)))
    print()
    print(render_table3(table3(view)))
    return 0


def cmd_stream(args) -> int:
    """Streaming analysis: live capture export or dataset replay."""
    from .stream.analyzer import DatasetStreamer

    if args.dataset:
        from .experiment.dataset import Dataset

        dataset = Dataset.load(args.dataset)
        slugs = set(dataset.services())
        services = [s for s in build_catalog() if s.slug in slugs]
        streamer = DatasetStreamer(
            dataset,
            services,
            shards=args.shards,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
            executor=args.executor,
        )
        streamer.run()
        study = streamer.finalize(train_recon=not args.no_recon)
        stats = streamer.analyzer.bus.stats
        throughput = streamer.analyzer.flows_per_second
    else:
        if args.resume:
            raise SystemExit("--resume requires --dataset (live runs start fresh)")
        study = run_study(
            services=_selected_services(args),
            seed=args.seed,
            duration=args.duration,
            train_recon=not args.no_recon,
            streaming=True,
            shards=args.shards,
            checkpoint_dir=args.checkpoint_dir,
            executor=args.executor,
        )
        stats = throughput = None
    view = _study_view(study, args)
    print(render_table1(table1(view)))
    print()
    print(render_table3(table3(view)))
    if stats is not None:
        print()
        print(
            f"streamed {stats.flows} flows / {stats.sessions} sessions across "
            f"{args.shards} shard(s) at {throughput:,.0f} flows/s"
        )
    return 0


def cmd_serve(args) -> int:
    """Serve the recommender + study-query API over saved results."""
    import logging

    from .serve import LruTtlCache, RateLimiter, ResultStore, ServeApp, ServeServer
    from .serve.server import MAX_BODY_BYTES

    logging.basicConfig(level=logging.INFO, format="%(message)s")
    workers = _resolve_workers(args.workers)
    store = ResultStore(args.result, train_recon=not args.no_recon, workers=workers)
    limiter = None
    if args.rate > 0:
        limiter = RateLimiter(rate=args.rate, burst=args.burst or max(1, int(args.rate)))
    ingest = None
    max_body_bytes = MAX_BODY_BYTES
    if getattr(args, "ingest_dir", None):
        from .ingest import IngestService

        ingest = IngestService(
            args.ingest_dir,
            executor=args.ingest_executor,
            workers=_resolve_workers(args.ingest_workers),
            per_tenant=args.tenant_queue,
            max_queued=args.ingest_queue,
            tenant_rate=args.ingest_rate,
            max_upload_bytes=args.max_upload_bytes,
            ttl_seconds=args.ingest_ttl,
        )
        # Leave headroom over the app-level upload cap so oversize
        # uploads get the app's 413 payload instead of a dropped socket.
        max_body_bytes = max(MAX_BODY_BYTES, args.max_upload_bytes + 64 * 1024)
    app = ServeApp(
        store,
        cache=LruTtlCache(maxsize=args.cache_size, ttl=args.cache_ttl),
        limiter=limiter,
        ingest=ingest,
    )
    server = ServeServer(
        app,
        host=args.host,
        port=args.port,
        max_concurrency=workers,
        request_timeout=args.timeout,
        drain_timeout=args.drain_timeout,
        max_body_bytes=max_body_bytes,
    )
    snapshot = store.snapshot
    print(
        f"serving {snapshot.service_count} service(s) from {args.result} "
        f"({snapshot.source}, etag {snapshot.etag}) on http://{args.host}:{args.port}"
    )
    if ingest is not None:
        ingest.start(threads=args.ingest_threads)
        print(
            f"ingest enabled: jobs under {args.ingest_dir} on "
            f"{ingest.engine!r} ({args.ingest_threads} worker thread(s))"
        )
    server.run(install_signal_handlers=True)
    if ingest is not None:
        # Drain the job workers the same way the listener drained:
        # finish the record in flight, park the rest durably for resume.
        ingest.shutdown(timeout=args.drain_timeout)
    print("drained; bye")
    return 0


def _load_upload_body(path) -> bytes:
    """Turn ``repro upload PATH`` input into framed upload bytes.

    A directory is a saved dataset — encoded as one framed bundle.  A
    file must already be a codec-framed record or bundle (e.g. written
    by ``repro.net.codec.write_record``/``write_bundle``).
    """
    import os

    from .net import codec

    if os.path.isdir(path):
        from .experiment.dataset import Dataset

        dataset = Dataset.load(path)
        return codec.frame(codec.KIND_BUNDLE, codec.encode_bundle(list(dataset)))
    with open(path, "rb") as handle:
        return handle.read()


def cmd_upload(args) -> int:
    """Upload a trace to a running ingest server; optionally wait."""
    import http.client
    import json
    import time

    body = _load_upload_body(args.path)
    headers = {
        "Content-Type": "application/octet-stream",
        "X-Client-Id": args.tenant,
    }

    def request(method, path, payload=None):
        conn = http.client.HTTPConnection(args.host, args.port, timeout=args.timeout)
        try:
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            return response.status, response.read()
        except (ConnectionError, http.client.HTTPException, OSError) as exc:
            # A server that rejects an over-limit body mid-upload resets
            # the socket instead of answering; report it, don't traceback.
            raise SystemExit(
                f"connection to {args.host}:{args.port} failed: {exc} "
                "(is the server running with --ingest-dir, and the upload "
                "within its --max-upload-bytes?)"
            ) from None
        finally:
            conn.close()

    status, response_body = request("POST", "/v1/traces", body)
    if status != 202:
        print(f"upload rejected: HTTP {status} {response_body.decode('utf-8', 'replace').strip()}", file=sys.stderr)
        return 1
    accepted = json.loads(response_body)
    job_id = accepted["job"]
    print(
        f"accepted job {job_id} ({accepted['records']} record(s), "
        f"etag {accepted['etag']})",
        file=sys.stderr,
    )
    if not args.wait:
        print(job_id)
        return 0

    deadline = time.monotonic() + args.wait_timeout
    state = accepted["state"]
    while time.monotonic() < deadline:
        status, response_body = request("GET", f"/v1/jobs/{job_id}")
        if status != 200:
            print(f"status poll failed: HTTP {status}", file=sys.stderr)
            return 1
        job = json.loads(response_body)
        state = job["state"]
        if state in ("done", "failed"):
            break
        time.sleep(args.poll_interval)
    if state == "failed":
        print(f"job {job_id} failed: {job.get('error', '')}", file=sys.stderr)
        return 1
    if state != "done":
        print(f"timed out waiting for job {job_id} (state {state})", file=sys.stderr)
        return 1

    status, result = request("GET", f"/v1/jobs/{job_id}/result")
    if status != 200:
        print(f"result fetch failed: HTTP {status}", file=sys.stderr)
        return 1
    if args.out:
        with open(args.out, "wb") as handle:
            handle.write(result)
        print(f"wrote result to {args.out}", file=sys.stderr)
    if args.print == "result":
        sys.stdout.buffer.write(result)
    elif args.print == "recommendations":
        from .serve.app import canonical_json

        payload = json.loads(result)
        print(canonical_json(payload["recommendations"]).decode("utf-8"))
    else:
        print(job_id)
    return 0


def cmd_har(args) -> int:
    from .experiment.runner import ExperimentRunner
    from .net.har import dump_har
    from .services.world import build_world

    services = [s for s in build_catalog() if s.slug == args.service]
    if not services:
        raise SystemExit(f"unknown service {args.service!r}")
    world = build_world(services)
    runner = ExperimentRunner(world, seed=args.seed)
    record = runner.run_session(services[0], args.os, args.medium, duration=args.duration)
    dump_har(record.trace, args.out)
    print(f"wrote {len(record.trace)} flows to {args.out}")
    return 0


def cmd_blocking(args) -> int:
    from .core.countermeasures import evaluate_blocking, summarize_outcomes

    services = build_catalog()
    if args.services:
        wanted = set(args.services.split(","))
        services = [s for s in services if s.slug in wanted]
    outcomes = []
    for spec in services:
        os_name = "android" if "android" in spec.oses else spec.oses[0]
        outcome = evaluate_blocking(spec, os_name, seed=args.seed, duration=args.duration)
        outcomes.append(outcome)
        print(
            f"{spec.slug:15s} A&A domains {len(outcome.baseline.aa_domains):3d} -> "
            f"{len(outcome.protected.aa_domains):2d}  leaks "
            f"{len(outcome.baseline.leaks):4d} -> {len(outcome.protected.leaks):4d}  "
            f"residual 3rd parties: {sorted(outcome.residual_third_parties) or '-'}"
        )
    summary = summarize_outcomes(outcomes)
    print(
        f"\noverall leak reduction: {100 * summary['reduction']:.0f}%  "
        f"residual types: {sorted(t.code for t in summary['residual_types'])}"
    )
    return 0


def _load_policy(arg):
    from .mitigate import default_policy
    from .mitigate.policy import MitigationPolicy

    if arg is None or arg == "default":
        return default_policy()
    return MitigationPolicy.load(arg)


def cmd_mitigate(args) -> int:
    from .mitigate import evaluate_mitigation, render_mitigation

    policy = _load_policy(args.policy)
    if args.save_policy:
        policy.save(args.save_policy)
        print(f"wrote policy {policy.label!r} to {args.save_policy}")
    outcome = evaluate_mitigation(
        _selected_services(args),
        policy,
        seed=args.seed,
        duration=args.duration,
        train_recon=not args.no_recon,
        workers=_resolve_workers(getattr(args, "workers", 1)),
        executor=getattr(args, "executor", None),
        blocking=not args.no_blocking,
    )
    if args.baseline_out:
        # Exactly what ``repro analyze`` prints for the same dataset —
        # CI diffs the two byte-for-byte to pin "mitigation off changes
        # nothing".
        view = _study_view(outcome.baseline, args)
        text = (
            render_table1(table1(view))
            + "\n\n"
            + render_table3(table3(view))
            + "\n"
        )
        with open(args.baseline_out, "w") as handle:
            handle.write(text)
    print(render_mitigation(outcome))
    return 0


def cmd_reach(args) -> int:
    from .analysis.reach import render_reach, summarize_reach

    view = _study_view(_build_study(args), args)
    print(render_reach(view))
    summary = summarize_reach(view)
    print(
        f"\n{summary.trackers} A&A domains observed; "
        f"{summary.cross_platform_trackers} present on both media; "
        f"{len(summary.linkers)} hold a cross-platform join key "
        f"({', '.join(summary.linkers) or 'none'})"
    )
    return 0


def cmd_fuzz(args) -> int:
    """Differential fuzzing: batch ≡ stream ≡ serve, under chaos."""
    import json
    import time

    from .qa.oracle import Divergence, OracleReport, run_oracle
    from .qa.scenarios import Scenario, generate_scenario
    from .qa.shrink import shrink, write_reproducer

    # The process pool is always pinned (run_oracle's default); an
    # explicit --executor adds that backend to the sweep.  The kwarg is
    # only passed when it differs from the default so drop-in oracle
    # replacements keep the original call shape.
    extra = getattr(args, "executor", None)
    executors = tuple(dict.fromkeys(((extra,) if extra else ()) + ("process",)))

    def run_safely(scenario) -> OracleReport:
        try:
            if executors == ("process",):
                return run_oracle(scenario)
            return run_oracle(scenario, executors=executors)
        except Exception as exc:
            return OracleReport(
                seed=scenario.seed,
                ok=False,
                divergences=[Divergence("crash", type(exc).__name__, "no exception", repr(exc)[:200])],
            )

    def describe(report: OracleReport) -> str:
        stats = report.stats
        return (
            f"{stats.get('sessions', 0)} sessions, {stats.get('flows', 0)} flows, "
            f"{stats.get('paths', 0)} paths, {stats.get('matcher_probes', 0)} matcher + "
            f"{stats.get('filter_probes', 0)} filter probes, "
            f"{stats.get('fault_checks', 0)} fault checks"
        )

    if args.replay:
        try:
            with open(args.replay, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"cannot read reproducer {args.replay!r}: {exc}")
        scenario = Scenario.from_dict(data.get("scenario", data))
        report = run_safely(scenario)
        if report.ok:
            print(f"replay seed {scenario.seed}: OK ({describe(report)})")
            return 0
        div = report.divergences[0]
        print(
            f"replay seed {scenario.seed}: FAIL {div.component} at {div.path}: "
            f"expected {div.expected}, got {div.actual}"
        )
        return 1

    started = time.perf_counter()
    completed = 0
    for seed in range(args.seed, args.seed + args.rounds):
        scenario = generate_scenario(seed, faults=args.faults, max_services=args.max_services)
        report = run_safely(scenario)
        completed += 1
        if report.ok:
            print(f"seed {seed}: OK ({describe(report)})")
            continue
        div = report.divergences[0]
        print(
            f"seed {seed}: FAIL [{len(report.divergences)} divergence(s)] "
            f"{div.component} at {div.path}: expected {div.expected}, got {div.actual}"
        )
        if args.no_shrink:
            smallest = scenario
        else:
            print("shrinking...")
            smallest = shrink(
                scenario, lambda candidate: not run_safely(candidate).ok, max_steps=args.shrink_steps
            )
        out = args.out or f"repro-fail-{seed}.json"
        write_reproducer(smallest, report, out)
        print(f"reproducer written to {out}; replay with: repro fuzz --replay {out}")
        elapsed = time.perf_counter() - started
        print(f"{completed} scenario(s) in {elapsed:.1f}s ({completed / elapsed:.2f}/s)")
        return 1
    elapsed = time.perf_counter() - started
    print(f"{completed} scenario(s) in {elapsed:.1f}s ({completed / elapsed:.2f}/s), 0 divergences")
    return 0


def cmd_campaign(args) -> int:
    """Population campaign: N sampled users folded into cohort aggregates."""
    import dataclasses
    import time

    from .campaign import CampaignAborted, PopulationSpec, render_campaign, run_campaign
    from .par import resolve_executor

    if args.population < 1:
        raise SystemExit(f"--population must be >= 1: {args.population}")
    if args.resume and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    if args.population_spec:
        spec = PopulationSpec.load(args.population_spec)
    else:
        spec = PopulationSpec()
    overrides = {}
    if args.duration is not None:
        overrides["session_duration"] = args.duration
    if args.bootstrap is not None:
        overrides["bootstrap_replicates"] = args.bootstrap
    if overrides:
        spec = dataclasses.replace(spec, **overrides)

    engine = resolve_executor(args.executor, _resolve_workers(args.workers))
    log = (lambda message: print(message, file=sys.stderr)) if args.progress else None
    started = time.perf_counter()
    try:
        campaign = run_campaign(
            args.population,
            seed=args.seed,
            population_spec=spec,
            services=_selected_services(args),
            cohorts=args.cohorts,
            shards=args.shards,
            executor=engine,
            agg=args.agg,
            log=log,
            reduce=args.reduce,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            checkpoint_every=args.checkpoint_every,
            abort_after_users=args.abort_after_users,
        )
    except CampaignAborted as exc:
        print(f"{exc}", file=sys.stderr)
        return 3
    elapsed = time.perf_counter() - started
    print(render_campaign(campaign, confidence=args.confidence, tables=args.tables))
    if args.progress:
        rate = campaign.sessions / elapsed if elapsed > 0 else 0.0
        print(
            f"{campaign.users} users / {campaign.sessions} sessions in "
            f"{elapsed:.1f}s ({rate:.1f} sessions/s) on {engine!r}",
            file=sys.stderr,
        )
    return 0


def cmd_catalog(args) -> int:
    for spec in build_catalog():
        oses = "/".join(spec.oses)
        print(
            f"{spec.name:28s} {spec.category:14s} rank={spec.rank:3d} "
            f"{spec.domain:18s} [{oses}]"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Should You Use the App for That?' (IMC 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="full study: all tables")
    _add_common(run_parser)
    run_parser.set_defaults(func=cmd_run)

    tables_parser = sub.add_parser("table", help="print one table (1, 2, or 3)")
    tables_parser.add_argument("table", help="table number")
    _add_common(tables_parser)
    tables_parser.set_defaults(func=cmd_tables)

    figure_parser = sub.add_parser("figure", help="print one figure (1a..1f)")
    figure_parser.add_argument("figure", help="figure id, e.g. 1a")
    _add_common(figure_parser)
    figure_parser.set_defaults(func=cmd_figure)

    rec_parser = sub.add_parser("recommend", help="app-or-web per service")
    _add_common(rec_parser)
    rec_parser.add_argument(
        "--weight",
        action="append",
        metavar="TYPE=VAL",
        help="override one identifier weight (e.g. --weight location=1.0); repeatable",
    )
    rec_parser.add_argument(
        "--prefs",
        metavar="FILE.json",
        help="preference JSON (weights/tracker_aversion/plaintext_aversion); "
        "same schema as the POST /v1/recommend body's 'preferences' field",
    )
    rec_parser.add_argument(
        "--json",
        action="store_true",
        help="print canonical JSON ({os: recommend payload}) instead of the "
        "table — byte-comparable to an ingest job's recommendations section",
    )
    rec_parser.set_defaults(func=cmd_recommend)

    serve_parser = sub.add_parser(
        "serve", help="HTTP recommender + study-query API over saved results"
    )
    serve_parser.add_argument(
        "--result",
        required=True,
        help="result directory: a saved dataset ('repro collect --out') or a "
        "streaming checkpoint ('repro stream --checkpoint-dir')",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8080)
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=16,
        help="max concurrent requests (0 = one per CPU core); also store "
        "analysis threads at load time",
    )
    serve_parser.add_argument(
        "--rate",
        type=float,
        default=0.0,
        help="per-client rate limit in requests/second (0 = unlimited)",
    )
    serve_parser.add_argument(
        "--burst", type=int, default=0, help="rate-limit burst size (default: ceil(rate))"
    )
    serve_parser.add_argument(
        "--cache-size", type=int, default=4096, help="recommendation cache entries"
    )
    serve_parser.add_argument(
        "--cache-ttl", type=float, default=300.0, help="recommendation cache TTL (s)"
    )
    serve_parser.add_argument(
        "--timeout", type=float, default=10.0, help="per-request timeout (s)"
    )
    serve_parser.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="max seconds to finish in-flight requests on SIGTERM",
    )
    serve_parser.add_argument(
        "--no-recon", action="store_true", help="skip ReCon training at store load"
    )
    serve_parser.add_argument(
        "--ingest-dir",
        help="enable POST /v1/traces: durable job state lives here "
        "(jobs parked by a SIGTERM drain resume from it on restart)",
    )
    serve_parser.add_argument(
        "--ingest-executor",
        choices=["auto", "serial", "thread", "process"],
        default="serial",
        help="repro.par backend for uploaded-trace analysis "
        "(results are byte-identical for every choice)",
    )
    serve_parser.add_argument(
        "--ingest-workers",
        type=int,
        default=1,
        help="executor workers per ingest job (0 = one per CPU core)",
    )
    serve_parser.add_argument(
        "--ingest-threads",
        type=int,
        default=1,
        help="background job-worker threads feeding off the queue",
    )
    serve_parser.add_argument(
        "--max-upload-bytes",
        type=int,
        default=8 * 1024 * 1024,
        help="largest accepted upload body (413 above this)",
    )
    serve_parser.add_argument(
        "--tenant-queue",
        type=int,
        default=8,
        help="max queued jobs per tenant (429 above this)",
    )
    serve_parser.add_argument(
        "--ingest-queue",
        type=int,
        default=64,
        help="max queued jobs across all tenants (503 above this)",
    )
    serve_parser.add_argument(
        "--ingest-rate",
        type=float,
        default=0.0,
        help="per-tenant upload rate limit in jobs/second (0 = unlimited)",
    )
    serve_parser.add_argument(
        "--ingest-ttl",
        type=float,
        default=0.0,
        help="prune finished ingest jobs older than this many seconds "
        "(0 = keep forever); swept jobs answer 404",
    )
    serve_parser.set_defaults(func=cmd_serve)

    upload_parser = sub.add_parser(
        "upload", help="upload a trace to a running ingest server"
    )
    upload_parser.add_argument(
        "path",
        help="a saved dataset directory (sent as one bundle) or a "
        "codec-framed record/bundle file",
    )
    upload_parser.add_argument("--host", default="127.0.0.1")
    upload_parser.add_argument("--port", type=int, default=8080)
    upload_parser.add_argument(
        "--tenant", default="cli", help="tenant identity (X-Client-Id header)"
    )
    upload_parser.add_argument(
        "--wait", action="store_true", help="poll until the job completes"
    )
    upload_parser.add_argument(
        "--wait-timeout", type=float, default=300.0, help="max seconds to wait"
    )
    upload_parser.add_argument(
        "--poll-interval", type=float, default=0.2, help="seconds between polls"
    )
    upload_parser.add_argument(
        "--timeout", type=float, default=30.0, help="per-request HTTP timeout"
    )
    upload_parser.add_argument("--out", help="write the raw result bytes to a file")
    upload_parser.add_argument(
        "--print",
        choices=["job", "result", "recommendations"],
        default="job",
        help="what to print on stdout after completion (with --wait)",
    )
    upload_parser.set_defaults(func=cmd_upload)

    catalog_parser = sub.add_parser("catalog", help="list the 50 services")
    catalog_parser.set_defaults(func=cmd_catalog)

    report_parser = sub.add_parser("report", help="paper-vs-measured markdown report")
    _add_common(report_parser)
    report_parser.set_defaults(func=cmd_report)

    collect_parser = sub.add_parser("collect", help="run the campaign, save the dataset")
    _add_common(collect_parser)
    collect_parser.add_argument("--out", required=True, help="output directory")
    collect_parser.set_defaults(func=cmd_collect)

    analyze_parser = sub.add_parser("analyze", help="analyze a saved dataset")
    analyze_parser.add_argument("dataset", help="dataset directory from 'collect'")
    analyze_parser.add_argument("--no-recon", action="store_true")
    analyze_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="analysis workers (results are identical for any value)",
    )
    _add_executor(analyze_parser)
    _add_agg(analyze_parser)
    analyze_parser.add_argument(
        "--cache-dir",
        help="persistent per-session analysis cache (content-addressed; "
        "config changes invalidate automatically)",
    )
    analyze_parser.set_defaults(func=cmd_analyze)

    stream_parser = sub.add_parser(
        "stream", help="streaming capture + online analysis (live or replay)"
    )
    _add_common(stream_parser)
    stream_parser.add_argument(
        "--dataset", help="replay a saved dataset instead of capturing live"
    )
    stream_parser.add_argument(
        "--shards", type=int, default=1, help="parallel analyzer shards"
    )
    stream_parser.add_argument(
        "--checkpoint-dir", help="directory for crash-safe snapshots + flow journal"
    )
    stream_parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=200,
        help="flows between shard snapshots",
    )
    stream_parser.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted run from --checkpoint-dir",
    )
    stream_parser.set_defaults(func=cmd_stream)

    har_parser = sub.add_parser("har", help="export one session as a HAR file")
    har_parser.add_argument("service", help="service slug")
    har_parser.add_argument("--os", default="android", choices=["android", "ios"])
    har_parser.add_argument("--medium", default="web", choices=["app", "web"])
    har_parser.add_argument("--out", default="session.har")
    har_parser.add_argument("--seed", type=int, default=2016)
    har_parser.add_argument("--duration", type=float, default=240.0)
    har_parser.set_defaults(func=cmd_har)

    blocking_parser = sub.add_parser(
        "blocking", help="tracker-blocking effectiveness (§5 future work)"
    )
    _add_common(blocking_parser)
    blocking_parser.set_defaults(func=cmd_blocking)

    mitigate_parser = sub.add_parser(
        "mitigate", help="inline PII mitigation: re-score the study under a policy"
    )
    _add_common(mitigate_parser)
    mitigate_parser.add_argument(
        "--policy",
        default="default",
        help="mitigation policy: 'default' (calibrated) or a policy JSON file",
    )
    mitigate_parser.add_argument(
        "--save-policy",
        metavar="FILE.json",
        help="write the resolved policy as JSON, then run",
    )
    mitigate_parser.add_argument(
        "--no-blocking",
        action="store_true",
        help="skip the blocking-only contrast runs (2 web sessions/service)",
    )
    mitigate_parser.add_argument(
        "--baseline-out",
        metavar="FILE",
        help="write the mitigation-off study in 'repro analyze' format "
        "(byte-identical when diffed against a plain analyze)",
    )
    mitigate_parser.set_defaults(func=cmd_mitigate)

    reach_parser = sub.add_parser("reach", help="cross-platform tracker reach (§4.2)")
    _add_common(reach_parser)
    reach_parser.set_defaults(func=cmd_reach)

    fuzz_parser = sub.add_parser(
        "fuzz", help="differential fuzzing: batch ≡ stream ≡ serve under chaos"
    )
    fuzz_parser.add_argument("--seed", type=int, default=0, help="first scenario seed")
    fuzz_parser.add_argument(
        "--rounds", type=int, default=1, help="number of consecutive seeds to run"
    )
    fuzz_parser.add_argument(
        "--faults",
        action="store_true",
        help="also derive a fault plan per seed (kills, torn tails, transport chaos, "
        "exploding addons, serve snapshot checks)",
    )
    fuzz_parser.add_argument(
        "--replay", metavar="FILE.json", help="re-run a written reproducer instead"
    )
    fuzz_parser.add_argument(
        "--out", help="reproducer path on failure (default: repro-fail-<seed>.json)"
    )
    fuzz_parser.add_argument(
        "--max-services", type=int, default=4, help="service-catalog size cap per scenario"
    )
    fuzz_parser.add_argument(
        "--no-shrink", action="store_true", help="skip minimization on failure"
    )
    fuzz_parser.add_argument(
        "--shrink-steps",
        type=int,
        default=40,
        help="max oracle evaluations spent shrinking a failure",
    )
    fuzz_parser.add_argument(
        "--executor",
        choices=["serial", "thread", "process"],
        help="extra repro.par backend to pin against the serial reference "
        "(the process pool is always pinned)",
    )
    fuzz_parser.set_defaults(func=cmd_fuzz)

    campaign_parser = sub.add_parser(
        "campaign",
        help="population campaign: simulate N users as mergeable cohorts",
    )
    campaign_parser.add_argument(
        "--population", type=int, required=True, help="number of simulated users"
    )
    campaign_parser.add_argument(
        "--seed", type=int, default=7, help="campaign RNG seed"
    )
    campaign_parser.add_argument(
        "--cohorts",
        default="os",
        help="cohort dimensions, comma-separated from os/medium/intensity "
        "('none' = one cohort; default: os)",
    )
    campaign_parser.add_argument(
        "--shards",
        type=int,
        help="shard count override (default: a pure function of the "
        "population; results are identical for any value)",
    )
    campaign_parser.add_argument(
        "--services", help="comma-separated service slugs (default: all 50)"
    )
    campaign_parser.add_argument(
        "--population-spec",
        metavar="FILE.json",
        help="load persona distributions from a PopulationSpec JSON file",
    )
    campaign_parser.add_argument(
        "--duration",
        type=float,
        help="override the spec's base session length in seconds",
    )
    campaign_parser.add_argument(
        "--bootstrap",
        type=int,
        help="override the spec's Poisson-bootstrap replicate count",
    )
    campaign_parser.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        help="confidence level for Wilson/bootstrap intervals",
    )
    campaign_parser.add_argument(
        "--tables",
        action="store_true",
        help="also render Tables 1 and 3 per cohort",
    )
    campaign_parser.add_argument(
        "--progress",
        action="store_true",
        help="log per-shard progress and a throughput summary to stderr",
    )
    campaign_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="simulation workers; 0 = one per CPU core (results are "
        "identical for any value)",
    )
    campaign_parser.add_argument(
        "--reduce",
        choices=["auto", "master", "worker"],
        default="auto",
        help="reduction topology: master = serial coordinator fold "
        "(the reference), worker = pool workers fold locally and ship "
        "merged partials; results are byte-identical either way "
        "(default: worker on parallel backends)",
    )
    campaign_parser.add_argument(
        "--checkpoint-dir",
        help="write crash-safe periodic checkpoints (merged partial + "
        "next-user index) into this directory",
    )
    campaign_parser.add_argument(
        "--resume",
        action="store_true",
        help="continue from the checkpoint directory's last saved state "
        "(requires --checkpoint-dir; a finished run returns immediately)",
    )
    campaign_parser.add_argument(
        "--checkpoint-every",
        type=int,
        help="users between checkpoint writes (default: 1024)",
    )
    campaign_parser.add_argument(
        "--abort-after-users",
        type=int,
        help="chaos hook: abort (exit 3) once this many users have "
        "folded — simulates a mid-campaign kill for resume testing",
    )
    _add_executor(campaign_parser)
    _add_agg(campaign_parser)
    campaign_parser.set_defaults(func=cmd_campaign)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
