"""repro — reproduction of "Should You Use the App for That?" (IMC 2016).

A complete, self-contained measurement environment: simulated handsets
and browsers, a 50-service online-service world with its tracking
ecosystem, a Meddle/mitmproxy-style interception proxy, ReCon-style PII
detection, and the analysis pipeline that regenerates the paper's
tables and figures.

Quickstart::

    from repro import run_study
    study = run_study()                 # the full 50-service campaign
    from repro.analysis import table3, render_table3
    print(render_table3(table3(study)))
"""

from .core import (
    PrivacyPreferences,
    Recommendation,
    Recommender,
    ServiceResult,
    SessionAnalysis,
    StudyResult,
    analyze_dataset,
    run_study,
)
from .experiment import Dataset, ExperimentRunner, SessionRecord
from .pii.types import PiiType
from .services import build_catalog, build_world

__version__ = "1.0.0"

__all__ = [
    "Dataset",
    "ExperimentRunner",
    "PiiType",
    "PrivacyPreferences",
    "Recommendation",
    "Recommender",
    "ServiceResult",
    "SessionAnalysis",
    "SessionRecord",
    "StudyResult",
    "analyze_dataset",
    "build_catalog",
    "build_world",
    "run_study",
    "__version__",
]
