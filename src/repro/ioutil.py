"""Atomic file-write helpers.

A killed collection, checkpoint, or dataset save must never leave a
half-written file behind: every writer in the persistence layer
(`Trace.dump`, `Dataset.save`, the streaming checkpoints) funnels
through :func:`atomic_write_text` / :func:`atomic_write_json`, which
write to a temporary sibling and :func:`os.replace` it over the target.
On POSIX the replace is atomic, so readers observe either the old
complete file or the new complete file — never a truncation.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Union


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp sibling + replace)."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path: Union[str, Path], text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically (temp sibling + replace)."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: Union[str, Path], payload, indent: int = 1) -> None:
    """Serialize ``payload`` as JSON and write it atomically to ``path``."""
    atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")


def file_fingerprint(path: Union[str, Path]):
    """``(size, mtime_ns)`` of ``path``, or ``None`` when it is missing.

    A cheap change detector for hot-reloading readers (the serving
    layer's result store): because every writer in this codebase goes
    through the atomic-replace helpers above, any content change is an
    inode swap and therefore always moves the fingerprint.
    """
    try:
        stat = os.stat(path)
    except OSError:
        return None
    return (stat.st_size, stat.st_mtime_ns)
