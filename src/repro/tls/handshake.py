"""TLS handshake semantics: SNI, interception, and pinning outcomes.

The interception proxy terminates TLS toward the client with a
certificate minted by its own CA (:data:`~repro.tls.certs.PROXY_CA`).
Whether a given connection is decryptable therefore depends on three
parties: the server (does it even speak TLS? does its app pin?), the
device (does it trust the proxy CA?), and the client app (does it
enforce a pin set?).  :func:`negotiate` centralizes that decision so the
proxy, device, and tests all agree on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .certs import (
    PROXY_CA,
    CaStore,
    Certificate,
    CertificateError,
    PinSet,
    make_certificate,
)


class HandshakeError(Exception):
    """Raised when a simulated TLS handshake fails (connection aborts)."""


@dataclass(frozen=True)
class ServerTlsProfile:
    """How a simulated server presents itself over TLS."""

    hostname: str
    certificate: Certificate
    # Pin set shipped in the service's *app*; web browsers do not pin.
    app_pins: Optional[PinSet] = None

    @classmethod
    def standard(cls, hostname: str, issuer: str = "PublicCA") -> "ServerTlsProfile":
        return cls(hostname=hostname, certificate=make_certificate(hostname, issuer))

    @classmethod
    def pinned(cls, hostname: str, issuer: str = "PublicCA") -> "ServerTlsProfile":
        from .certs import pin_for

        return cls(
            hostname=hostname,
            certificate=make_certificate(hostname, issuer),
            app_pins=pin_for(hostname, issuer),
        )


@dataclass(frozen=True)
class HandshakeResult:
    """Outcome of a (possibly intercepted) TLS handshake."""

    sni: str
    version: str
    cipher: str
    presented: Certificate
    intercepted: bool
    pinned: bool


def negotiate(
    profile: ServerTlsProfile,
    ca_store: CaStore,
    now: float,
    intercept: bool = False,
    enforce_pins: bool = False,
    version: str = "TLSv1.2",
    cipher: str = "ECDHE-RSA-AES128-GCM-SHA256",
) -> HandshakeResult:
    """Run one handshake and decide interception/pinning outcomes.

    ``intercept`` is True when the proxy is on-path and MITMing;
    ``enforce_pins`` is True for app clients that ship a pin set (web
    browsers never enforce pins).  Raises :class:`HandshakeError` when
    the client would abort — an untrusted certificate, or a pin
    mismatch — mirroring the connection failures that made the paper
    exclude pinning services like Facebook.
    """
    if intercept:
        presented = make_certificate(profile.hostname, PROXY_CA)
    else:
        presented = profile.certificate

    try:
        ca_store.validate(presented, profile.hostname, now)
    except CertificateError as exc:
        raise HandshakeError(str(exc)) from exc

    pinned = profile.app_pins is not None
    if enforce_pins and pinned and not profile.app_pins.accepts(presented):
        raise HandshakeError(
            f"certificate pin mismatch for {profile.hostname} "
            f"(presented {presented.fingerprint!r})"
        )

    return HandshakeResult(
        sni=profile.hostname,
        version=version,
        cipher=cipher,
        presented=presented,
        intercepted=intercept,
        pinned=pinned,
    )
