"""Simulated TLS layer: certificates, trust, pinning, interception."""

from .certs import (
    PROXY_CA,
    PUBLIC_CA,
    CaStore,
    Certificate,
    CertificateError,
    PinSet,
    make_certificate,
    pin_for,
)
from .handshake import HandshakeError, HandshakeResult, ServerTlsProfile, negotiate

__all__ = [
    "CaStore",
    "Certificate",
    "CertificateError",
    "HandshakeError",
    "HandshakeResult",
    "PROXY_CA",
    "PUBLIC_CA",
    "PinSet",
    "ServerTlsProfile",
    "make_certificate",
    "negotiate",
    "pin_for",
]
