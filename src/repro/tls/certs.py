"""Certificate and CA-store model for the simulated TLS layer.

Only the properties that drive the study's behaviour are modeled: who
issued a certificate (so a device can distinguish a real CA from the
interception proxy's CA), which names it covers (wildcard matching), and
validity windows on the simulated clock.  There is no actual crypto —
the security *decisions* (trust, pinning) are what matter here, not the
math underneath them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


class CertificateError(Exception):
    """Raised when certificate validation fails."""


@dataclass(frozen=True)
class Certificate:
    """A leaf or CA certificate."""

    subject: str
    issuer: str
    names: tuple = ()  # SANs, possibly with "*." wildcards
    not_before: float = 0.0
    not_after: float = float("inf")
    is_ca: bool = False
    # Stand-in for the public-key fingerprint; pinning compares this.
    fingerprint: str = ""

    def matches_host(self, hostname: str) -> bool:
        """True if any SAN covers ``hostname`` (single-label wildcards)."""
        hostname = hostname.lower()
        for name in self.names:
            name = name.lower()
            if name == hostname:
                return True
            if name.startswith("*."):
                suffix = name[1:]  # ".example.com"
                if hostname.endswith(suffix) and "." not in hostname[: -len(suffix)]:
                    return True
        return False

    def valid_at(self, now: float) -> bool:
        return self.not_before <= now <= self.not_after


def make_certificate(
    hostname: str,
    issuer: str,
    extra_names: Iterable = (),
    not_before: float = 0.0,
    not_after: float = float("inf"),
) -> Certificate:
    """Issue a leaf certificate for ``hostname`` (plus wildcard sibling)."""
    names = (hostname, f"*.{hostname}") + tuple(extra_names)
    return Certificate(
        subject=f"CN={hostname}",
        issuer=issuer,
        names=names,
        not_before=not_before,
        not_after=not_after,
        fingerprint=f"fp:{issuer}:{hostname}",
    )


@dataclass
class CaStore:
    """The set of issuer names a device trusts.

    A factory-reset phone trusts the public web PKI (modeled as the
    single issuer ``"PublicCA"``).  Installing the interception proxy's
    root — as Meddle's setup instructions require — adds its issuer here.
    """

    trusted_issuers: set = field(default_factory=lambda: {"PublicCA"})

    def trust(self, issuer: str) -> None:
        self.trusted_issuers.add(issuer)

    def distrust(self, issuer: str) -> None:
        self.trusted_issuers.discard(issuer)

    def is_trusted(self, certificate: Certificate) -> bool:
        return certificate.issuer in self.trusted_issuers

    def validate(self, certificate: Certificate, hostname: str, now: float) -> None:
        """Full chain check; raises :class:`CertificateError` on failure."""
        if not self.is_trusted(certificate):
            raise CertificateError(
                f"issuer {certificate.issuer!r} not trusted for {hostname}"
            )
        if not certificate.matches_host(hostname):
            raise CertificateError(
                f"certificate {certificate.subject!r} does not cover {hostname}"
            )
        if not certificate.valid_at(now):
            raise CertificateError(f"certificate for {hostname} expired or not yet valid")


@dataclass(frozen=True)
class PinSet:
    """An app's certificate pins: accepted public-key fingerprints."""

    fingerprints: frozenset

    def accepts(self, certificate: Certificate) -> bool:
        return certificate.fingerprint in self.fingerprints


def pin_for(hostname: str, issuer: str = "PublicCA") -> PinSet:
    """Build the pin set an app ships for its legitimate server cert."""
    return PinSet(fingerprints=frozenset({f"fp:{issuer}:{hostname}"}))


PUBLIC_CA = "PublicCA"
PROXY_CA = "ReproProxyCA"
