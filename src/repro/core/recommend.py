"""Preference-weighted app-or-web recommendations.

The paper's conclusion is that neither medium wins universally: the
right choice "depends on user preferences and priorities for controlling
access to their PII", and the authors shipped an interactive recommender
(https://recon.meddle.mobi/appvsweb/).  This module is that recommender:
given a study result and a user's :class:`PrivacyPreferences`, it scores
each medium per service and suggests the less invasive one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..experiment.dataset import APP, WEB
from ..pii.types import PiiType
from .pipeline import ServiceResult, SessionAnalysis, StudyResult

# Default severity of each identifier class (0..1); users override these.
DEFAULT_WEIGHTS = {
    PiiType.PASSWORD: 1.0,
    PiiType.UNIQUE_ID: 0.7,
    PiiType.LOCATION: 0.7,
    PiiType.PHONE: 0.6,
    PiiType.EMAIL: 0.5,
    PiiType.BIRTHDAY: 0.5,
    PiiType.NAME: 0.4,
    PiiType.USERNAME: 0.4,
    PiiType.GENDER: 0.3,
    PiiType.DEVICE_INFO: 0.3,
}


@dataclass(frozen=True)
class PrivacyPreferences:
    """What the user cares about, on a 0..1 scale per identifier class.

    ``tracker_aversion`` weighs raw exposure to A&A domains (some users
    care about tracking surface even without a detected PII leak), and
    ``plaintext_aversion`` adds extra weight when a leak travels
    unencrypted.
    """

    weights: dict = field(default_factory=lambda: dict(DEFAULT_WEIGHTS))
    tracker_aversion: float = 0.05
    plaintext_aversion: float = 0.5

    def weight(self, pii_type: PiiType) -> float:
        return self.weights.get(pii_type, 0.5)

    @classmethod
    def uniform(cls, value: float = 0.5) -> "PrivacyPreferences":
        return cls(weights={pii_type: value for pii_type in PiiType})

    @classmethod
    def only(cls, *types: PiiType) -> "PrivacyPreferences":
        """Care about nothing except the given identifier classes."""
        return cls(weights={t: (1.0 if t in types else 0.0) for t in PiiType})


def _parse_weight(pii_name, value) -> tuple:
    """Validate one ``(type name, value)`` pair into ``(PiiType, float)``."""
    try:
        pii_type = PiiType(str(pii_name).strip().lower())
    except ValueError:
        valid = ", ".join(t.value for t in PiiType)
        raise ValueError(f"unknown PII type {pii_name!r} (valid: {valid})") from None
    try:
        weight = float(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"weight for {pii_type.value} must be a number, got {value!r}"
        ) from None
    if not 0.0 <= weight <= 1.0:
        raise ValueError(f"weight for {pii_type.value} must be in [0, 1], got {weight}")
    return pii_type, weight


def parse_weight_override(text: str) -> tuple:
    """Parse one ``TYPE=VAL`` override (CLI ``--weight email=0.9``)."""
    name, sep, raw = text.partition("=")
    if not sep or not raw:
        raise ValueError(f"expected TYPE=VAL (e.g. email=0.9), got {text!r}")
    return _parse_weight(name, raw)


def _parse_aversion(name: str, value) -> float:
    try:
        aversion = float(value)
    except (TypeError, ValueError):
        raise ValueError(f"{name} must be a number, got {value!r}") from None
    if aversion < 0.0:
        raise ValueError(f"{name} must be >= 0, got {aversion}")
    return aversion


def preferences_from_dict(data: dict) -> PrivacyPreferences:
    """Build preferences from a JSON-safe dict.

    The one parser behind both scriptable surfaces: ``repro recommend
    --prefs FILE.json`` and the service's ``POST /v1/recommend`` body.
    Unlisted weights keep their :data:`DEFAULT_WEIGHTS` value; unknown
    fields or types raise ``ValueError`` rather than silently scoring 0.
    """
    if not isinstance(data, dict):
        raise ValueError(f"preferences must be a JSON object, got {type(data).__name__}")
    allowed = {"weights", "tracker_aversion", "plaintext_aversion"}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ValueError(f"unknown preference field(s): {', '.join(unknown)}")
    weights = dict(DEFAULT_WEIGHTS)
    raw_weights = data.get("weights") or {}
    if not isinstance(raw_weights, dict):
        raise ValueError("'weights' must be an object of {type: value}")
    for name, value in raw_weights.items():
        pii_type, weight = _parse_weight(name, value)
        weights[pii_type] = weight
    kwargs = {"weights": weights}
    for field_name in ("tracker_aversion", "plaintext_aversion"):
        if field_name in data:
            kwargs[field_name] = _parse_aversion(field_name, data[field_name])
    return PrivacyPreferences(**kwargs)


def apply_weight_overrides(
    preferences: PrivacyPreferences, overrides: list
) -> PrivacyPreferences:
    """Return a copy with ``TYPE=VAL`` strings folded into the weights."""
    if not overrides:
        return preferences
    weights = dict(preferences.weights)
    for override in overrides:
        pii_type, weight = parse_weight_override(override)
        weights[pii_type] = weight
    return PrivacyPreferences(
        weights=weights,
        tracker_aversion=preferences.tracker_aversion,
        plaintext_aversion=preferences.plaintext_aversion,
    )


def preferences_key(preferences: PrivacyPreferences) -> tuple:
    """Canonical hashable form (the serving cache's key component).

    Two preference objects that score every session identically map to
    the same key: the weight of *every* :class:`PiiType` is included
    (missing entries resolve through :meth:`PrivacyPreferences.weight`).
    """
    return (
        tuple(preferences.weight(t) for t in PiiType),
        preferences.tracker_aversion,
        preferences.plaintext_aversion,
    )


@dataclass(frozen=True)
class Recommendation:
    """The verdict for one service on one OS."""

    service: str
    os_name: str
    choice: str  # "app" | "web" | "either"
    app_score: float
    web_score: float

    @property
    def margin(self) -> float:
        return abs(self.app_score - self.web_score)

    def to_dict(self) -> dict:
        """JSON-safe form (the serving layer's wire format)."""
        return {
            "service": self.service,
            "os": self.os_name,
            "choice": self.choice,
            "app_score": self.app_score,
            "web_score": self.web_score,
            "margin": self.margin,
        }


def score_session(analysis: SessionAnalysis, preferences: PrivacyPreferences) -> float:
    """Privacy-invasiveness score for one cell; higher is worse."""
    score = 0.0
    for pii_type in analysis.leak_types:
        score += preferences.weight(pii_type)
    for record in analysis.leaks:
        if record.plaintext:
            score += preferences.plaintext_aversion * preferences.weight(record.pii_type)
            break  # one plaintext penalty per type set, not per event
    score += preferences.tracker_aversion * len(analysis.aa_domains)
    return score


class Recommender:
    """Scores a study and answers "should you use the app for that?"."""

    def __init__(self, study: StudyResult, preferences: Optional[PrivacyPreferences] = None) -> None:
        self.study = study
        self.preferences = preferences if preferences is not None else PrivacyPreferences()

    def recommend_service(self, result: ServiceResult, os_name: str) -> Optional[Recommendation]:
        app = result.cell(os_name, APP)
        web = result.cell(os_name, WEB)
        if app is None or web is None:
            return None
        app_score = score_session(app, self.preferences)
        web_score = score_session(web, self.preferences)
        if abs(app_score - web_score) < 1e-9:
            choice = "either"
        elif app_score < web_score:
            choice = APP
        else:
            choice = WEB
        return Recommendation(
            service=result.spec.slug,
            os_name=os_name,
            choice=choice,
            app_score=app_score,
            web_score=web_score,
        )

    def recommend(self, slug: str, os_name: str) -> Optional[Recommendation]:
        return self.recommend_service(self.study.by_slug(slug), os_name)

    def recommend_all(self, os_name: str) -> list:
        out = []
        for result in self.study.services:
            recommendation = self.recommend_service(result, os_name)
            if recommendation is not None:
                out.append(recommendation)
        return out

    def summary(self, os_name: str) -> dict:
        """How often each medium wins under these preferences."""
        counts = {"app": 0, "web": 0, "either": 0}
        for recommendation in self.recommend_all(os_name):
            counts[recommendation.choice] += 1
        return counts
