"""End-to-end study pipeline: collect → detect → classify → aggregate.

:func:`run_study` is the library's front door.  It builds the world,
runs the measurement campaign, trains the ReCon classifier on a held-out
slice of the captured traffic (labels come from ground-truth matching,
as in the controlled-experiment workflow), then produces one
:class:`SessionAnalysis` per captured cell and one
:class:`ServiceResult` per service — the structures every table, figure,
and recommendation is computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..experiment.dataset import APP, WEB, Dataset, SessionRecord
from ..experiment.filtering import filter_background
from ..experiment.runner import ExperimentRunner
from ..pii.detector import PiiDetector
from ..pii.matcher import GroundTruthMatcher
from ..pii.recon import ReconClassifier, train_from_traces
from ..services.service import ServiceSpec
from ..services.world import World, build_world
from ..trackerdb.categorize import Categorizer, THIRD_PARTY_AA
from .leaks import LeakPolicy, leak_domains, leak_types


@dataclass
class SessionAnalysis:
    """Everything the evaluation needs from one session."""

    service: str
    os_name: str
    medium: str
    flows_total: int = 0
    aa_domains: set = field(default_factory=set)
    aa_flows: int = 0
    aa_bytes: int = 0
    third_party_domains: set = field(default_factory=set)
    leaks: list = field(default_factory=list)
    recon_false_positives: int = 0

    @property
    def leak_types(self) -> set:
        return leak_types(self.leaks)

    @property
    def leak_domains(self) -> set:
        return leak_domains(self.leaks)

    @property
    def leaked(self) -> bool:
        return bool(self.leaks)

    @property
    def aa_megabytes(self) -> float:
        return self.aa_bytes / 1_000_000.0


@dataclass
class ServiceResult:
    """Per-service results across every captured cell."""

    spec: ServiceSpec
    sessions: dict = field(default_factory=dict)  # (os, medium) -> SessionAnalysis

    def cell(self, os_name: str, medium: str) -> Optional[SessionAnalysis]:
        return self.sessions.get((os_name, medium))

    def media_leak_types(self, medium: str) -> set:
        """Union of leaked types for a medium across tested OSes."""
        out: set = set()
        for (os_name, med), analysis in self.sessions.items():
            if med == medium:
                out |= analysis.leak_types
        return out

    def leaked_via(self, medium: str) -> bool:
        return bool(self.media_leak_types(medium))


@dataclass
class StudyResult:
    """The complete evaluated study."""

    services: list = field(default_factory=list)  # list[ServiceResult]
    dataset: Optional[Dataset] = None
    recon: Optional[ReconClassifier] = None

    def by_slug(self, slug: str) -> ServiceResult:
        for result in self.services:
            if result.spec.slug == slug:
                return result
        raise KeyError(f"unknown service {slug!r}")

    def analyses(self) -> list:
        out = []
        for result in self.services:
            out.extend(result.sessions.values())
        return out


def categorizer_for(spec: ServiceSpec) -> Categorizer:
    from ..device.phone import OS_SERVICE_HOSTS

    os_hosts = [h for hosts in OS_SERVICE_HOSTS.values() for h in hosts]
    return Categorizer(
        first_party_domains=spec.first_party_domains,
        os_service_hosts=os_hosts,
        sso_domains=spec.sso_domains,
    )


def analyze_session(
    record: SessionRecord,
    spec: ServiceSpec,
    recon: Optional[ReconClassifier] = None,
) -> SessionAnalysis:
    """Run detection + leak policy + A&A accounting on one session."""
    trace = filter_background(record.trace)
    categorizer = categorizer_for(spec)
    matcher = GroundTruthMatcher(record.ground_truth)
    detector = PiiDetector(matcher, recon=recon)
    report = detector.scan_trace(trace)
    policy = LeakPolicy(categorizer)
    leaks = policy.classify_all(report.observations)

    analysis = SessionAnalysis(
        service=record.service,
        os_name=record.os_name,
        medium=record.medium,
        flows_total=len(trace),
        leaks=leaks,
        recon_false_positives=report.recon_false_positives,
    )
    for flow in trace:
        category = categorizer.categorize_flow(flow)
        if category.is_third_party:
            analysis.third_party_domains.add(category.domain)
        if category.label == THIRD_PARTY_AA:
            analysis.aa_domains.add(category.domain)
            analysis.aa_flows += 1
            analysis.aa_bytes += flow.total_bytes
    return analysis


def train_recon_on_dataset(
    dataset: Dataset,
    every_nth_service: int = 4,
    rng_seed: int = 7,
) -> ReconClassifier:
    """Train ReCon on a slice of the dataset's sessions.

    Every ``every_nth_service``-th service's sessions (ordered by slug)
    become training traffic; labels come from each session's own ground
    truth, which is how the controlled experiments make ML training
    possible without manual annotation.
    """
    slugs = dataset.services()
    chosen = set(slugs[::every_nth_service])
    examples = []
    for record in dataset:
        if record.service not in chosen:
            continue
        matcher = GroundTruthMatcher(record.ground_truth)
        for flow in filter_background(record.trace):
            if not flow.decrypted:
                continue
            for txn in flow.transactions:
                labels = {m.pii_type for m in matcher.match_request(txn.request)}
                examples.append(ReconClassifier.make_example(txn.request, labels))
    import random

    classifier = ReconClassifier(rng=random.Random(rng_seed))
    return classifier.fit(examples)


def analyze_dataset(
    dataset: Dataset,
    services: list,
    recon: Optional[ReconClassifier] = None,
    train_recon: bool = True,
) -> StudyResult:
    """Evaluate a collected dataset into a :class:`StudyResult`."""
    if recon is None and train_recon:
        recon = train_recon_on_dataset(dataset)
    by_slug = {spec.slug: spec for spec in services}
    results: dict = {}
    for record in dataset:
        spec = by_slug[record.service]
        result = results.get(record.service)
        if result is None:
            result = ServiceResult(spec=spec)
            results[record.service] = result
        result.sessions[(record.os_name, record.medium)] = analyze_session(
            record, spec, recon=recon
        )
    ordered = [results[spec.slug] for spec in services if spec.slug in results]
    return StudyResult(services=ordered, dataset=dataset, recon=recon)


def run_study(
    services: Optional[list] = None,
    seed: int = 2016,
    duration: float = 240.0,
    train_recon: bool = True,
    world: Optional[World] = None,
) -> StudyResult:
    """Collect and evaluate the full study (the paper, end to end)."""
    if world is None:
        world = build_world(services)
    specs = services if services is not None else world.services
    runner = ExperimentRunner(world, seed=seed)
    dataset = runner.run_study(specs, duration=duration)
    return analyze_dataset(dataset, specs, train_recon=train_recon)
