"""End-to-end study pipeline: collect → detect → classify → aggregate.

:func:`run_study` is the library's front door.  It builds the world,
runs the measurement campaign, trains the ReCon classifier on a held-out
slice of the captured traffic (labels come from ground-truth matching,
as in the controlled-experiment workflow), then produces one
:class:`SessionAnalysis` per captured cell and one
:class:`ServiceResult` per service — the structures every table, figure,
and recommendation is computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..experiment.dataset import APP, WEB, Dataset, SessionRecord
from ..experiment.filtering import filter_background, is_background_flow
from ..experiment.runner import ExperimentRunner
from ..pii.detector import PiiDetector
from ..pii.matcher import matcher_for
from ..pii.recon import ReconClassifier, train_from_traces
from ..services.service import ServiceSpec
from ..services.world import World, build_world
from ..trackerdb.categorize import Categorizer, THIRD_PARTY_AA
from .leaks import LeakPolicy, LeakRecord, leak_domains, leak_types


@dataclass
class SessionAnalysis:
    """Everything the evaluation needs from one session."""

    service: str
    os_name: str
    medium: str
    flows_total: int = 0
    aa_domains: set = field(default_factory=set)
    aa_flows: int = 0
    aa_bytes: int = 0
    third_party_domains: set = field(default_factory=set)
    leaks: list = field(default_factory=list)
    recon_false_positives: int = 0

    @property
    def leak_types(self) -> set:
        return leak_types(self.leaks)

    @property
    def leak_domains(self) -> set:
        return leak_domains(self.leaks)

    @property
    def leaked(self) -> bool:
        return bool(self.leaks)

    @property
    def aa_megabytes(self) -> float:
        return self.aa_bytes / 1_000_000.0

    def merge(self, other: "SessionAnalysis") -> "SessionAnalysis":
        """Combine two partial analyses of the *same* cell.

        Counters add, domain sets union, and leak lists concatenate in
        operand order — every field combine is associative, so folding
        shard partials in any grouping yields the same result (pinned
        in ``tests/test_stream_merge.py``).  Neither operand is
        mutated.
        """
        if (self.service, self.os_name, self.medium) != (
            other.service,
            other.os_name,
            other.medium,
        ):
            raise ValueError(
                f"cannot merge cell ({other.service}, {other.os_name}, "
                f"{other.medium}) into ({self.service}, {self.os_name}, "
                f"{self.medium})"
            )
        return SessionAnalysis(
            service=self.service,
            os_name=self.os_name,
            medium=self.medium,
            flows_total=self.flows_total + other.flows_total,
            aa_domains=self.aa_domains | other.aa_domains,
            aa_flows=self.aa_flows + other.aa_flows,
            aa_bytes=self.aa_bytes + other.aa_bytes,
            third_party_domains=self.third_party_domains | other.third_party_domains,
            leaks=self.leaks + other.leaks,
            recon_false_positives=self.recon_false_positives
            + other.recon_false_positives,
        )

    def to_dict(self) -> dict:
        """JSON-safe form (used by streaming checkpoints and exports)."""
        return {
            "service": self.service,
            "os": self.os_name,
            "medium": self.medium,
            "flows_total": self.flows_total,
            "aa_domains": sorted(self.aa_domains),
            "aa_flows": self.aa_flows,
            "aa_bytes": self.aa_bytes,
            "third_party_domains": sorted(self.third_party_domains),
            "leaks": [leak.to_dict() for leak in self.leaks],
            "recon_false_positives": self.recon_false_positives,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SessionAnalysis":
        return cls(
            service=data["service"],
            os_name=data["os"],
            medium=data["medium"],
            flows_total=data["flows_total"],
            aa_domains=set(data["aa_domains"]),
            aa_flows=data["aa_flows"],
            aa_bytes=data["aa_bytes"],
            third_party_domains=set(data["third_party_domains"]),
            leaks=[LeakRecord.from_dict(entry) for entry in data["leaks"]],
            recon_false_positives=data["recon_false_positives"],
        )


@dataclass
class ServiceResult:
    """Per-service results across every captured cell."""

    spec: ServiceSpec
    sessions: dict = field(default_factory=dict)  # (os, medium) -> SessionAnalysis

    def cell(self, os_name: str, medium: str) -> Optional[SessionAnalysis]:
        return self.sessions.get((os_name, medium))

    def media_leak_types(self, medium: str) -> set:
        """Union of leaked types for a medium across tested OSes."""
        out: set = set()
        for (os_name, med), analysis in self.sessions.items():
            if med == medium:
                out |= analysis.leak_types
        return out

    def leaked_via(self, medium: str) -> bool:
        return bool(self.media_leak_types(medium))


@dataclass
class StudyResult:
    """The complete evaluated study."""

    services: list = field(default_factory=list)  # list[ServiceResult]
    dataset: Optional[Dataset] = None
    recon: Optional[ReconClassifier] = None

    def by_slug(self, slug: str) -> ServiceResult:
        for result in self.services:
            if result.spec.slug == slug:
                return result
        raise KeyError(f"unknown service {slug!r}")

    def analyses(self) -> list:
        out = []
        for result in self.services:
            out.extend(result.sessions.values())
        return out


# Categorizer construction recompiles the spec's domain sets on every
# call; specs are immutable for the life of a study, so one instance per
# distinct (first-party, SSO) domain profile is shared across sessions.
_CATEGORIZER_CACHE: dict = {}
_CATEGORIZER_CACHE_MAX = 256


def categorizer_for(spec: ServiceSpec) -> Categorizer:
    from ..device.phone import OS_SERVICE_HOSTS

    key = (tuple(spec.first_party_domains), tuple(spec.sso_domains))
    cached = _CATEGORIZER_CACHE.get(key)
    if cached is not None:
        return cached
    os_hosts = [h for hosts in OS_SERVICE_HOSTS.values() for h in hosts]
    categorizer = Categorizer(
        first_party_domains=spec.first_party_domains,
        os_service_hosts=os_hosts,
        sso_domains=spec.sso_domains,
    )
    if len(_CATEGORIZER_CACHE) >= _CATEGORIZER_CACHE_MAX:
        _CATEGORIZER_CACHE.clear()
    _CATEGORIZER_CACHE[key] = categorizer
    return categorizer


def analyze_session(
    record: SessionRecord,
    spec: ServiceSpec,
    recon: Optional[ReconClassifier] = None,
) -> SessionAnalysis:
    """Run detection + leak policy + A&A accounting on one session."""
    trace = filter_background(record.trace)
    categorizer = categorizer_for(spec)
    matcher = matcher_for(record.ground_truth)
    detector = PiiDetector(matcher, recon=recon)
    report = detector.scan_trace(trace)
    policy = LeakPolicy(categorizer)
    leaks = policy.classify_all(report.observations)

    analysis = SessionAnalysis(
        service=record.service,
        os_name=record.os_name,
        medium=record.medium,
        flows_total=len(trace),
        leaks=leaks,
        recon_false_positives=report.recon_false_positives,
    )
    for flow in trace:
        category = categorizer.categorize_flow(flow)
        if category.is_third_party:
            analysis.third_party_domains.add(category.domain)
        if category.label == THIRD_PARTY_AA:
            analysis.aa_domains.add(category.domain)
            analysis.aa_flows += 1
            analysis.aa_bytes += flow.total_bytes
    return analysis


def label_record(record: SessionRecord) -> list:
    """Extract one session's ReCon training examples.

    Labels come from the session's own ground truth (the
    controlled-experiment workflow); example order follows the trace,
    so the concatenation order across sessions fully determines the
    trained tree.
    """
    matcher = matcher_for(record.ground_truth)
    out = []
    for flow in filter_background(record.trace):
        if not flow.decrypted:
            continue
        for txn in flow.transactions:
            labels = {m.pii_type for m in matcher.match_request(txn.request)}
            out.append(ReconClassifier.make_example(txn.request, labels))
    return out


def rescan_session(
    record: SessionRecord,
    spec: ServiceSpec,
    recon: Optional[ReconClassifier],
) -> tuple:
    """Matching∪ReCon leak scan of one session's foreground traffic.

    Returns ``(leaks, recon_false_positives)`` — the deferred pass the
    streaming finalizer replays from the journal once the classifier
    exists (see :meth:`repro.stream.analyzer.StreamAnalyzer.finalize`).
    """
    detector = PiiDetector(matcher_for(record.ground_truth), recon=recon)
    policy = LeakPolicy(categorizer_for(spec))
    observations: list = []
    false_positives = 0
    for flow in record.trace:
        if is_background_flow(flow) or not flow.decrypted:
            continue
        for txn in flow.transactions:
            found, fps = detector.scan_transaction(flow, txn)
            observations.extend(found)
            false_positives += fps
    return policy.classify_all(observations), false_positives


def _session_order(record: SessionRecord) -> tuple:
    return (record.service, record.os_name, record.medium)


def train_recon_on_dataset(
    dataset: Dataset,
    every_nth_service: int = 4,
    rng_seed: int = 7,
    workers: int = 1,
    executor=None,
    cache=None,
) -> ReconClassifier:
    """Train ReCon on a slice of the dataset's sessions.

    Every ``every_nth_service``-th service's sessions (ordered by slug)
    become training traffic; labels come from each session's own ground
    truth, which is how the controlled experiments make ML training
    possible without manual annotation.  ``executor`` (an
    :class:`repro.par.Executor` or backend name) parallelizes label
    extraction per session; examples are concatenated in deterministic
    session order so the trained tree is identical for any backend and
    worker count.  ``cache`` (an
    :class:`repro.core.cache.AnalysisCache`) memoizes the fitted
    classifier keyed by the training slice's content.
    """
    from ..par import resolve_executor

    slugs = dataset.services()
    chosen = set(slugs[::every_nth_service])
    records = sorted(
        (record for record in dataset if record.service in chosen),
        key=_session_order,
    )
    if cache is not None:
        cached = cache.load_recon(records, every_nth_service, rng_seed)
        if cached is not None:
            return cached
    engine = resolve_executor(executor, workers)
    examples = []
    for batch in engine.map_label(records):
        examples.extend(batch)
    import random

    classifier = ReconClassifier(rng=random.Random(rng_seed))
    classifier.fit(examples)
    if cache is not None:
        cache.store_recon(records, every_nth_service, rng_seed, classifier)
    return classifier


def analyze_dataset(
    dataset: Dataset,
    services: list,
    recon: Optional[ReconClassifier] = None,
    train_recon: bool = True,
    workers: int = 1,
    executor=None,
    cache=None,
) -> StudyResult:
    """Evaluate a collected dataset into a :class:`StudyResult`.

    ``executor`` picks the fan-out backend (``"serial"``, ``"thread"``,
    ``"process"``, ``"auto"``, an :class:`repro.par.Executor`, or
    ``None`` for the legacy threads-when-``workers > 1`` behavior);
    sessions are processed in ``(service, os, medium)`` order and
    results assembled in the dataset's own order, so the study is
    byte-for-byte identical for any backend and worker count.
    ``cache`` reuses persisted per-session analyses when the trace
    content and detection config both match.
    """
    from ..par import resolve_executor

    engine = resolve_executor(executor, workers)
    if recon is None and train_recon:
        recon = train_recon_on_dataset(
            dataset, workers=workers, executor=engine, cache=cache
        )
    by_slug = {spec.slug: spec for spec in services}
    records = list(dataset)
    ordered = sorted(records, key=_session_order)
    if cache is not None:
        results = cache.analyze_all(ordered, services, recon, engine)
    else:
        results = engine.map_analyze(ordered, services, recon)
    analyses = dict(zip([_session_order(r) for r in ordered], results))
    results: dict = {}
    for record in records:
        result = results.get(record.service)
        if result is None:
            result = ServiceResult(spec=by_slug[record.service])
            results[record.service] = result
        result.sessions[(record.os_name, record.medium)] = analyses[
            _session_order(record)
        ]
    ordered = [results[spec.slug] for spec in services if spec.slug in results]
    return StudyResult(services=ordered, dataset=dataset, recon=recon)


def run_study(
    services: Optional[list] = None,
    seed: int = 2016,
    duration: float = 240.0,
    train_recon: bool = True,
    world: Optional[World] = None,
    workers: int = 1,
    streaming: bool = False,
    shards: int = 1,
    checkpoint_dir=None,
    executor=None,
    cache_dir=None,
    mitigation=None,
) -> StudyResult:
    """Collect and evaluate the full study (the paper, end to end).

    ``executor``/``workers`` pick the analysis fan-out backend (see
    :func:`analyze_dataset`); collection itself stays sequential because
    the simulated world advances a single deterministic clock.

    ``cache_dir`` enables the persistent incremental cache
    (:mod:`repro.core.cache`): the collected campaign, the trained
    classifier, and every per-session analysis are stored
    content-addressed, so an unchanged re-run skips straight to
    aggregation and any config change invalidates cleanly.

    ``streaming=True`` analyzes the capture *live* instead of post-hoc:
    a :class:`~repro.proxy.addons.StreamCapture` addon feeds each
    finalized flow into ``shards`` online analyzers while the campaign
    is still running (see :mod:`repro.stream`).  The result is
    byte-for-byte identical to the batch path; ``checkpoint_dir``
    additionally makes the run crash-resumable.

    ``mitigation`` runs the whole collection through the inline
    mitigation data plane (:mod:`repro.mitigate`): pass a
    :class:`~repro.mitigate.policy.MitigationPolicy` or a prepared
    :class:`~repro.mitigate.plane.MitigationAddon`.  Mitigated traffic
    is deterministic per seed but policy-dependent, so the campaign
    fast path of the persistent cache is bypassed (per-session analysis
    caching still applies — it is content-addressed).  With
    ``mitigation=None`` every path through this function is
    byte-identical to the pre-mitigation pipeline.
    """
    cache = None
    campaign_key = None
    if cache_dir is not None:
        from .cache import AnalysisCache

        cache = AnalysisCache(cache_dir)
    if not streaming:
        if cache is not None and world is None and services is not None and mitigation is None:
            # The campaign is a pure function of (specs, seed, duration):
            # with a cache we can skip the whole simulated collection.
            campaign_key = cache.campaign_key(services, seed, duration)
            dataset = cache.load_campaign(campaign_key)
            if dataset is not None:
                return analyze_dataset(
                    dataset,
                    services,
                    train_recon=train_recon,
                    workers=workers,
                    executor=executor,
                    cache=cache,
                )
    if world is None:
        world = build_world(services)
    specs = services if services is not None else world.services
    runner = ExperimentRunner(world, seed=seed)
    if not streaming:
        dataset = runner.run_study(specs, duration=duration, mitigation=mitigation)
        if cache is not None and campaign_key is not None:
            cache.store_campaign(campaign_key, dataset)
        return analyze_dataset(
            dataset,
            specs,
            train_recon=train_recon,
            workers=workers,
            executor=executor,
            cache=cache,
        )

    from ..proxy.addons import StreamCapture
    from ..stream.analyzer import StreamAnalyzer

    analyzer = StreamAnalyzer(
        specs, shards=shards, checkpoint_dir=checkpoint_dir, executor=executor
    )
    capture = StreamCapture(analyzer.publish)
    world.proxy.add_addon(capture)
    try:
        analyzer.start()
        dataset = runner.run_study(
            specs,
            duration=duration,
            phone_setup=capture.stage_phone,
            mitigation=mitigation,
        )
        study = analyzer.finalize(train_recon=train_recon)
    finally:
        world.proxy.remove_addon(capture)
    study.dataset = dataset
    return study
