"""App-versus-web comparison metrics (§4's per-service differences).

Everything Figure 1 plots is a per-service difference between the app
cell and the web cell on the same OS: A&A domains contacted, flows and
bytes to A&A, domains receiving PII, count of distinct leaked identifier
types, and the Jaccard similarity of the leaked-type sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..experiment.dataset import APP, WEB
from .leaks import jaccard
from .pipeline import ServiceResult, SessionAnalysis, StudyResult


@dataclass(frozen=True)
class CellDiff:
    """App-minus-web differences for one service on one OS."""

    service: str
    os_name: str
    aa_domains: int
    aa_flows: int
    aa_megabytes: float
    leak_domains: int
    leak_identifiers: int
    jaccard_identifiers: float
    app_leak_types: frozenset
    web_leak_types: frozenset


def diff_cells(app: SessionAnalysis, web: SessionAnalysis) -> CellDiff:
    """Compute the app-minus-web diff for a pair of matching cells."""
    if app.service != web.service or app.os_name != web.os_name:
        raise ValueError("cells must belong to the same service and OS")
    if app.medium != APP or web.medium != WEB:
        raise ValueError("expected one app cell and one web cell")
    app_types = frozenset(app.leak_types)
    web_types = frozenset(web.leak_types)
    return CellDiff(
        service=app.service,
        os_name=app.os_name,
        aa_domains=len(app.aa_domains) - len(web.aa_domains),
        aa_flows=app.aa_flows - web.aa_flows,
        aa_megabytes=app.aa_megabytes - web.aa_megabytes,
        leak_domains=len(app.leak_domains) - len(web.leak_domains),
        leak_identifiers=len(app_types) - len(web_types),
        jaccard_identifiers=jaccard(set(app_types), set(web_types)),
        app_leak_types=app_types,
        web_leak_types=web_types,
    )


def service_diffs(result: ServiceResult) -> list:
    """Per-OS diffs for one service (one entry per tested OS)."""
    diffs = []
    for os_name in result.spec.oses:
        app = result.cell(os_name, APP)
        web = result.cell(os_name, WEB)
        if app is None or web is None:
            continue
        diffs.append(diff_cells(app, web))
    return diffs


def study_diffs(study: StudyResult, os_name: Optional[str] = None) -> list:
    """All per-service diffs in a study, optionally filtered by OS."""
    out = []
    for result in study.services:
        for diff in service_diffs(result):
            if os_name is None or diff.os_name == os_name:
                out.append(diff)
    return out


def fraction_web_contacts_more_aa(study: StudyResult, os_name: str) -> float:
    """Fig 1a headline: fraction of services whose web side contacts
    more A&A domains than the app side (negative app-minus-web diff)."""
    diffs = study_diffs(study, os_name)
    if not diffs:
        return 0.0
    return sum(1 for d in diffs if d.aa_domains < 0) / len(diffs)


def fraction_web_more_aa_flows(study: StudyResult, os_name: str) -> float:
    """Fig 1b headline: fraction with more A&A flows on the web side."""
    diffs = study_diffs(study, os_name)
    if not diffs:
        return 0.0
    return sum(1 for d in diffs if d.aa_flows < 0) / len(diffs)
