"""Tracker-blocking countermeasures (§5 future work).

The paper closes by asking "how effective are existing browser privacy
protection tools in light of our findings?".  This module answers that
question inside the reproduction: a :class:`TrackerBlockingTransport`
plays the role of an AdBlock/Disconnect-style extension by refusing
connections to EasyList-matched hosts, and :func:`evaluate_blocking`
reruns a service's web session with and without protection to quantify
what blocking actually buys — and what it structurally cannot catch
(first-party leaks, and non-A&A third parties like Gigya).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..experiment.dataset import WEB
from ..experiment.runner import ExperimentRunner
from ..http.transport import NetworkError, Transport
from ..services.service import ServiceSpec
from ..services.world import World, build_world
from ..trackerdb.abpfilter import FilterList
from ..trackerdb.easylist import bundled_easylist
from .pipeline import SessionAnalysis, analyze_session


class BlockedRequest(NetworkError):
    """Raised when the blocker refuses a connection."""


class TrackerBlockingTransport:
    """A transport decorator that drops EasyList-matched connections.

    ``page_host`` provides first-party context (extensions know the tab's
    site), so first-party hosts are never blocked even when a rule like
    ``||facebook.com^$third-party`` exists.

    Every verdict is appended to ``decisions`` as ``(host, verdict,
    rule)`` — ``verdict`` is ``"block"`` or ``"allow"``, ``rule`` the
    raw filter text of the matching rule (``None`` for allows).  The
    ``blocked``/``allowed`` counters are derived from that log, which
    fixes two counting bugs in the original: a connection the inner
    transport then refused (TLS pin failure) no longer counts as
    allowed, and callers that swallow :class:`BlockedRequest` can still
    audit exactly which hosts were refused and why.  The mitigation
    report (:mod:`repro.mitigate.report`) consumes the same log shape,
    so blocking and mitigation baselines are directly comparable.
    """

    BLOCK = "block"
    ALLOW = "allow"

    def __init__(
        self,
        inner: Transport,
        page_host: str,
        filter_list: Optional[FilterList] = None,
    ) -> None:
        self.inner = inner
        self.page_host = page_host
        self.filter_list = filter_list if filter_list is not None else bundled_easylist()
        self.decisions: list = []  # (host, verdict, rule raw text or None)

    @property
    def blocked(self) -> int:
        return sum(1 for _, verdict, _ in self.decisions if verdict == self.BLOCK)

    @property
    def allowed(self) -> int:
        return sum(1 for _, verdict, _ in self.decisions if verdict == self.ALLOW)

    def connect(self, host: str, port: int, scheme: str, enforce_pins: bool = False):
        probe = f"{scheme}://{host}/"
        rule = self.filter_list.match(probe, page_host=self.page_host)
        if rule is not None:
            self.decisions.append((host, self.BLOCK, rule.raw))
            raise BlockedRequest(f"blocked by filter list: {host}")
        connection = self.inner.connect(host, port, scheme, enforce_pins=enforce_pins)
        # Recorded only after the inner transport accepts: a refused
        # handshake is not an allowed connection.
        self.decisions.append((host, self.ALLOW, None))
        return connection


@dataclass
class BlockingOutcome:
    """Effect of tracker blocking on one web session."""

    service: str
    os_name: str
    baseline: SessionAnalysis
    protected: SessionAnalysis
    connections_blocked: int
    # (host, verdict, rule) tuples from every blocking transport of the
    # protected run, in decision order.
    decisions: list = field(default_factory=list)

    @property
    def aa_domains_removed(self) -> int:
        return len(self.baseline.aa_domains) - len(self.protected.aa_domains)

    @property
    def leaks_prevented(self) -> int:
        return len(self.baseline.leaks) - len(self.protected.leaks)

    @property
    def residual_leak_types(self) -> set:
        """PII classes still leaking with the blocker on."""
        return self.protected.leak_types

    @property
    def residual_third_parties(self) -> set:
        """Third-party domains still receiving leaks (the Gigya gap)."""
        return {
            record.domain
            for record in self.protected.leaks
            if record.category.is_third_party
        }


def evaluate_blocking(
    spec: ServiceSpec,
    os_name: str = "android",
    seed: int = 2016,
    duration: float = 240.0,
    filter_list: Optional[FilterList] = None,
) -> BlockingOutcome:
    """Measure a web session for ``spec`` with and without blocking.

    Both runs use identical seeds and fresh worlds, so the only
    difference is the blocker.
    """
    baseline_record = _run_web(spec, os_name, seed, duration, blocker=None)
    decisions: list = []
    protected_record = _run_web(
        spec, os_name, seed, duration,
        blocker=(filter_list if filter_list is not None else bundled_easylist()),
        decisions_out=decisions,
    )
    return BlockingOutcome(
        service=spec.slug,
        os_name=os_name,
        baseline=analyze_session(baseline_record, spec),
        protected=analyze_session(protected_record, spec),
        connections_blocked=sum(1 for _, verdict, _ in decisions if verdict == "block"),
        decisions=decisions,
    )


def _run_web(spec, os_name, seed, duration, blocker, decisions_out=None):
    world = build_world([spec])
    runner = ExperimentRunner(world, seed=seed)
    if blocker is None:
        return runner.run_session(spec, os_name, WEB, duration=duration)

    transports = []

    def wrapper(transport):
        wrapped = TrackerBlockingTransport(transport, spec.www_host, filter_list=blocker)
        transports.append(wrapped)
        return wrapped

    def install_blocker(phone):
        phone.transport_wrapper = wrapper

    record = runner.run_session(
        spec, os_name, WEB, duration=duration, phone_setup=install_blocker
    )
    if decisions_out is not None:
        for transport in transports:
            decisions_out.extend(transport.decisions)
    return record


def summarize_outcomes(outcomes: list) -> dict:
    """Aggregate blocking effectiveness over several services."""
    if not outcomes:
        raise ValueError("no outcomes to summarize")
    total_baseline_leaks = sum(len(o.baseline.leaks) for o in outcomes)
    total_protected_leaks = sum(len(o.protected.leaks) for o in outcomes)
    residual_types: set = set()
    residual_parties: set = set()
    for outcome in outcomes:
        residual_types |= outcome.residual_leak_types
        residual_parties |= outcome.residual_third_parties
    return {
        "services": len(outcomes),
        "leaks_before": total_baseline_leaks,
        "leaks_after": total_protected_leaks,
        "reduction": 1.0 - (total_protected_leaks / total_baseline_leaks)
        if total_baseline_leaks
        else 0.0,
        "residual_types": residual_types,
        "residual_third_parties": residual_parties,
    }
