"""Persistent content-addressed analysis cache.

Re-running a study over an unchanged dataset re-does work whose inputs
have not moved: the simulated campaign is a pure function of
``(specs, seed, duration)``, the trained classifier of its training
slice, and each session's analysis of ``(trace content, detection
config)``.  :class:`AnalysisCache` persists all three layers under one
directory, keyed by content:

- **sessions/** — one JSON file per ``(record content hash, config
  fingerprint)`` holding ``SessionAnalysis.to_dict()``.  The record
  hash is the SHA-256 of the session's canonical codec encoding
  (:func:`repro.net.codec.record_content_hash`); the config
  fingerprint covers the session's service spec, the trained ReCon
  trees, and :data:`DETECTION_VERSION` — so editing a spec, retraining
  differently, or bumping the detector version each invalidates
  cleanly, while renaming or moving a dataset does not.
- **recon/** — the fitted classifier, pickled, keyed by the training
  slice's record hashes plus the training parameters.
- **campaigns/** — the collected dataset itself (binary trace format)
  keyed by ``(spec fingerprints, seed, duration)``, with a sidecar of
  per-session record hashes so a warm run never re-encodes traces just
  to address the session layer.

Every write goes through :mod:`repro.ioutil`'s atomic helpers and
every read treats a torn, truncated, or otherwise unreadable entry as
a miss — a crashed run can never poison the cache.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import fields, is_dataclass
from enum import Enum
from pathlib import Path
from typing import Optional, Union

from ..ioutil import atomic_write_bytes, atomic_write_json

#: Bump when detection semantics change (matcher, detector, leak
#: policy, categorizer, background filtering): every cached session
#: analysis and classifier keyed under the old version then misses.
DETECTION_VERSION = 1

#: Bump when the simulated collection changes (runner, world, device
#: behavior): cached campaigns from older versions then miss.
CAMPAIGN_VERSION = 1

_SCHEMA = 1


def _canonical(value):
    """JSON-able, order-stable form of specs/params for fingerprinting."""
    if isinstance(value, Enum):
        return value.value
    if is_dataclass(value) and not isinstance(value, type):
        return {f.name: _canonical(getattr(value, f.name)) for f in fields(value)}
    if isinstance(value, dict):
        return {str(_canonical(k)): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(str(_canonical(v)) for v in value)
    return value


def _digest(payload) -> str:
    data = json.dumps(
        _canonical(payload), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def spec_fingerprint(spec) -> str:
    """Content hash of one service spec (leaks, endpoints, domains...)."""
    return _digest(spec)


def _tree_shape(node):
    if node is None:
        return None
    return [
        node.feature,
        node.probability,
        _tree_shape(node.present),
        _tree_shape(node.absent),
    ]


def recon_fingerprint(recon) -> str:
    """Content hash of a trained classifier (full tree walk).

    Two classifiers that would predict identically fingerprint
    identically, regardless of which process trained them — the tree
    walk is over sorted keys and plain values only.
    """
    if recon is None:
        return "no-recon"
    payload = {
        "threshold": recon.threshold,
        "min_domain_samples": recon.min_domain_samples,
        "max_depth": recon.max_depth,
        "global": {
            pii_type.value: _tree_shape(recon._global[pii_type]._root)
            for pii_type in sorted(recon._global, key=lambda t: t.value)
        },
        "specialists": {
            f"{domain}|{pii_type.value}": _tree_shape(
                recon._specialists[(domain, pii_type)]._root
            )
            for domain, pii_type in sorted(
                recon._specialists, key=lambda k: (k[0], k[1].value)
            )
        },
    }
    return _digest(payload)


class AnalysisCache:
    """Three-layer persistent cache rooted at one directory.

    Instances track ``hits``/``misses`` per layer for observability;
    all lookups degrade to misses on any unreadable entry.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.sessions_dir = self.root / "sessions"
        self.recon_dir = self.root / "recon"
        self.campaigns_dir = self.root / "campaigns"
        self.hits = 0
        self.misses = 0
        self.recon_hits = 0
        self.recon_misses = 0
        self.campaign_hits = 0
        self.campaign_misses = 0
        # record-object -> content hash, so one run never encodes the
        # same session twice just to address it.  Keyed by id() with a
        # strong reference to the record to keep the id stable.
        self._hash_memo: dict = {}

    # -- content addressing ---------------------------------------------------

    def record_hash(self, record) -> str:
        memo = self._hash_memo.get(id(record))
        if memo is not None and memo[0] is record:
            return memo[1]
        from ..net.codec import record_content_hash

        digest = record_content_hash(record)
        self._hash_memo[id(record)] = (record, digest)
        return digest

    def _prime_hash(self, record, digest: str) -> None:
        self._hash_memo[id(record)] = (record, digest)

    def _session_key(self, record, spec, recon_fp: str) -> str:
        config = _digest(
            {
                "schema": _SCHEMA,
                "detection": DETECTION_VERSION,
                "spec": spec_fingerprint(spec),
                "recon": recon_fp,
            }
        )
        return f"{self.record_hash(record)}-{config[:16]}"

    # -- session layer --------------------------------------------------------

    def analyze_all(self, records: list, services: list, recon, engine) -> list:
        """Analyses for ``records`` (aligned), reusing cached entries.

        Misses fan out through ``engine`` exactly as the uncached path
        would, then persist; a warm cache therefore returns analyses
        byte-identical to a fresh run.
        """
        from .pipeline import SessionAnalysis

        by_slug = {spec.slug: spec for spec in services}
        recon_fp = recon_fingerprint(recon)
        results: list = [None] * len(records)
        miss_records, miss_indexes, miss_keys = [], [], []
        for index, record in enumerate(records):
            key = self._session_key(record, by_slug[record.service], recon_fp)
            entry = self._load_json(self.sessions_dir / f"{key}.json")
            if entry is not None:
                try:
                    results[index] = SessionAnalysis.from_dict(entry)
                    self.hits += 1
                    continue
                except (KeyError, TypeError, ValueError):
                    pass  # schema drift or corruption: recompute
            self.misses += 1
            miss_records.append(record)
            miss_indexes.append(index)
            miss_keys.append(key)
        if miss_records:
            self.sessions_dir.mkdir(parents=True, exist_ok=True)
            fresh = engine.map_analyze(miss_records, services, recon)
            for index, key, analysis in zip(miss_indexes, miss_keys, fresh):
                results[index] = analysis
                atomic_write_json(
                    self.sessions_dir / f"{key}.json", analysis.to_dict()
                )
        return results

    def _load_json(self, path: Path) -> Optional[dict]:
        try:
            with path.open("r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None

    # -- classifier layer -----------------------------------------------------

    def _recon_key(self, records: list, every_nth_service: int, rng_seed: int) -> str:
        return _digest(
            {
                "schema": _SCHEMA,
                "detection": DETECTION_VERSION,
                "every_nth_service": every_nth_service,
                "rng_seed": rng_seed,
                "slice": [self.record_hash(record) for record in records],
            }
        )

    def load_recon(self, records: list, every_nth_service: int, rng_seed: int):
        path = self.recon_dir / f"{self._recon_key(records, every_nth_service, rng_seed)}.pkl"
        try:
            data = path.read_bytes()
            classifier = pickle.loads(data)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            self.recon_misses += 1
            return None
        from ..pii.recon import ReconClassifier

        if not isinstance(classifier, ReconClassifier):
            self.recon_misses += 1
            return None
        self.recon_hits += 1
        return classifier

    def store_recon(
        self, records: list, every_nth_service: int, rng_seed: int, classifier
    ) -> None:
        self.recon_dir.mkdir(parents=True, exist_ok=True)
        key = self._recon_key(records, every_nth_service, rng_seed)
        atomic_write_bytes(
            self.recon_dir / f"{key}.pkl",
            pickle.dumps(classifier, protocol=pickle.HIGHEST_PROTOCOL),
        )

    # -- campaign layer -------------------------------------------------------

    def campaign_key(self, services: list, seed: int, duration: float) -> str:
        return _digest(
            {
                "schema": _SCHEMA,
                "campaign": CAMPAIGN_VERSION,
                "seed": seed,
                "duration": duration,
                "specs": [spec_fingerprint(spec) for spec in services],
            }
        )

    def load_campaign(self, key: str):
        """Reload a cached collected dataset, or ``None`` on any defect."""
        from ..experiment.dataset import Dataset
        from ..net.codec import CodecError
        from ..net.trace import TraceFormatError

        directory = self.campaigns_dir / key
        hashes = self._load_json(directory / "hashes.json")
        try:
            dataset = Dataset.load(directory)
        except (OSError, json.JSONDecodeError, KeyError, ValueError,
                TraceFormatError, CodecError):
            self.campaign_misses += 1
            return None
        self.campaign_hits += 1
        if hashes:
            # Pre-address every session so the session layer never has
            # to re-encode a trace the campaign layer just decoded.
            for record in dataset:
                digest = hashes.get("|".join(record.key))
                if digest:
                    self._prime_hash(record, digest)
        return dataset

    def store_campaign(self, key: str, dataset) -> None:
        directory = self.campaigns_dir / key
        dataset.save(directory)  # manifest written last, each file atomic
        atomic_write_json(
            directory / "hashes.json",
            {"|".join(record.key): self.record_hash(record) for record in dataset},
        )
