"""The PII-leak policy (§3.2 "Defining a PII Leak").

A transmitted piece of PII is a *leak* when it reduces the user's
privacy, which the paper operationalizes as:

1. transmitted unencrypted (eavesdroppers can read it), or
2. sent to a third party, encrypted or not (profiling), or
3. sent to the first party over HTTPS but *not* required for login —
   i.e. anything except username, password, and e-mail address.
   A birthday to the first party over HTTPS is still a leak.

Credentials sent to the first party — or to a single-sign-on provider
(footnote 1) — over HTTPS are the only non-leaks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..pii.detector import PiiObservation
from ..pii.types import PiiType
from ..trackerdb.categorize import Categorizer, FlowCategory, OS_SERVICE

# Types exempt when sent first-party over HTTPS (login credentials; the
# e-mail address is "often used as a username", §3.2).
CREDENTIAL_TYPES = frozenset({PiiType.USERNAME, PiiType.PASSWORD, PiiType.EMAIL})

PLAINTEXT = "plaintext"
THIRD_PARTY = "third_party"
FIRST_PARTY_NON_CREDENTIAL = "first_party_non_credential"


@dataclass(frozen=True)
class LeakRecord:
    """One confirmed PII leak."""

    observation: PiiObservation
    category: FlowCategory
    reason: str  # PLAINTEXT | THIRD_PARTY | FIRST_PARTY_NON_CREDENTIAL

    @property
    def pii_type(self) -> PiiType:
        return self.observation.pii_type

    @property
    def domain(self) -> str:
        return self.observation.domain

    @property
    def is_aa(self) -> bool:
        return self.category.is_aa

    @property
    def plaintext(self) -> bool:
        return self.observation.plaintext

    def to_dict(self) -> dict:
        return {
            "observation": self.observation.to_dict(),
            "category": self.category.to_dict(),
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LeakRecord":
        return cls(
            observation=PiiObservation.from_dict(data["observation"]),
            category=FlowCategory.from_dict(data["category"]),
            reason=data["reason"],
        )


class LeakPolicy:
    """Classifies detector observations into leaks / non-leaks."""

    def __init__(self, categorizer: Categorizer) -> None:
        self.categorizer = categorizer

    def classify(self, observation: PiiObservation) -> Optional[LeakRecord]:
        """Return a :class:`LeakRecord`, or None when not a leak."""
        category = self.categorizer.categorize_host(observation.hostname, observation.url)
        if category.label == OS_SERVICE:
            return None
        treated_first_party = category.is_first_party or self.categorizer.is_sso_host(
            observation.hostname
        )
        if observation.plaintext:
            reason = PLAINTEXT
        elif not treated_first_party:
            reason = THIRD_PARTY
        elif observation.pii_type not in CREDENTIAL_TYPES:
            reason = FIRST_PARTY_NON_CREDENTIAL
        else:
            return None
        return LeakRecord(observation=observation, category=category, reason=reason)

    def classify_all(self, observations: Iterable) -> list:
        """Classify many observations, dropping the non-leaks."""
        leaks = []
        for observation in observations:
            record = self.classify(observation)
            if record is not None:
                leaks.append(record)
        return leaks


def leak_types(leaks: Iterable) -> set:
    return {record.pii_type for record in leaks}


def leak_domains(leaks: Iterable) -> set:
    """Registrable domains receiving at least one leak."""
    return {record.domain for record in leaks}


def jaccard(set_a: set, set_b: set) -> float:
    """Jaccard index; two empty sets are identical (1.0) by convention."""
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)
