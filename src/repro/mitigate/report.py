"""Re-scoring the study under mitigation.

:func:`evaluate_mitigation` runs the measurement campaign twice from
identical seeds — once untouched, once through the inline
:class:`~repro.mitigate.plane.MitigationAddon` — and packages both
studies plus the data plane's decision log into a
:class:`MitigationOutcome`.  :func:`render_mitigation` prints the result
family the ROADMAP asks for: residual-leak and leak-reduction tables per
service/medium/PII type, recommender deltas against
:mod:`repro.core.recommend`, and a contrast with the blocking-only
baseline from :mod:`repro.core.countermeasures` (whose per-connection
``decisions`` log uses the same ``(host, verdict, rule)`` shape as the
mitigation decisions, so the two countermeasures are directly
comparable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.pipeline import analyze_dataset
from ..core.recommend import PrivacyPreferences, Recommender
from ..experiment.dataset import APP, WEB
from ..experiment.runner import ExperimentRunner
from ..pii.types import TABLE1_ORDER
from ..services.world import build_world
from .plane import MitigationAddon
from .policy import PARTIES, MitigationPolicy

OSES = ("android", "ios")


@dataclass
class MitigationOutcome:
    """Baseline vs mitigated study, plus the inline decision record."""

    policy: MitigationPolicy
    seed: int
    duration: float
    baseline: object  # StudyResult
    mitigated: object  # StudyResult
    addon: MitigationAddon
    blocking: list = field(default_factory=list)  # list[BlockingOutcome]

    # -- aggregation --------------------------------------------------------

    def leak_counts(self, study) -> dict:
        """``(service, medium) -> leak count`` summed over OSes."""
        out: dict = {}
        for analysis in study.analyses():
            key = (analysis.service, analysis.medium)
            out[key] = out.get(key, 0) + len(analysis.leaks)
        return out

    def type_counts(self, study) -> dict:
        """``(pii_type, medium) -> leak count`` over the whole study."""
        out: dict = {}
        for analysis in study.analyses():
            for leak in analysis.leaks:
                key = (leak.pii_type, analysis.medium)
                out[key] = out.get(key, 0) + 1
        return out

    def total_leaks(self, study) -> int:
        return sum(len(analysis.leaks) for analysis in study.analyses())

    @property
    def reduction(self) -> float:
        """Fraction of baseline leak events eliminated by mitigation."""
        before = self.total_leaks(self.baseline)
        if not before:
            return 0.0
        return 1.0 - self.total_leaks(self.mitigated) / before

    def residual_types(self) -> set:
        return {
            leak.pii_type
            for analysis in self.mitigated.analyses()
            for leak in analysis.leaks
        }

    def recommender_deltas(
        self, preferences: Optional[PrivacyPreferences] = None
    ) -> list:
        """``(service, os, before choice, after choice)`` for every cell,
        flipped cells first."""
        before = Recommender(self.baseline, preferences)
        after = Recommender(self.mitigated, preferences)
        rows = []
        for os_name in OSES:
            after_by_slug = {
                rec.service: rec for rec in after.recommend_all(os_name)
            }
            for rec in before.recommend_all(os_name):
                mitigated_rec = after_by_slug.get(rec.service)
                if mitigated_rec is None:
                    continue
                rows.append(
                    (rec.service, os_name, rec.choice, mitigated_rec.choice)
                )
        return sorted(rows, key=lambda row: (row[2] == row[3], row[0], row[1]))

    def recommender_summaries(
        self, preferences: Optional[PrivacyPreferences] = None
    ) -> dict:
        """``os -> (summary before, summary after)`` choice tallies."""
        before = Recommender(self.baseline, preferences)
        after = Recommender(self.mitigated, preferences)
        return {
            os_name: (before.summary(os_name), after.summary(os_name))
            for os_name in OSES
        }


def evaluate_mitigation(
    services: list,
    policy: MitigationPolicy,
    seed: int = 2016,
    duration: float = 240.0,
    train_recon: bool = True,
    workers: int = 1,
    executor=None,
    blocking: bool = True,
    record_latency: bool = True,
) -> MitigationOutcome:
    """Run the study with and without the policy from identical seeds.

    Both campaigns use fresh worlds and the same seed, so the only
    difference between the two studies is the data plane.  ``blocking``
    additionally runs the EasyList blocking-only web baseline per
    service (two extra web sessions each) for the contrast table.
    """
    baseline_world = build_world(services)
    baseline_runner = ExperimentRunner(baseline_world, seed=seed)
    baseline_dataset = baseline_runner.run_study(services, duration=duration)
    baseline = analyze_dataset(
        baseline_dataset,
        services,
        train_recon=train_recon,
        workers=workers,
        executor=executor,
    )

    mitigated_world = build_world(services)
    mitigated_runner = ExperimentRunner(mitigated_world, seed=seed)
    addon = MitigationAddon(
        policy, services, seed=seed, record_latency=record_latency
    )
    mitigated_dataset = mitigated_runner.run_study(
        services, duration=duration, mitigation=addon
    )
    mitigated = analyze_dataset(
        mitigated_dataset,
        services,
        train_recon=train_recon,
        workers=workers,
        executor=executor,
    )

    outcomes = []
    if blocking:
        from ..core.countermeasures import evaluate_blocking

        for spec in services:
            os_name = "android" if "android" in spec.oses else spec.oses[0]
            outcomes.append(
                evaluate_blocking(spec, os_name, seed=seed, duration=duration)
            )

    return MitigationOutcome(
        policy=policy,
        seed=seed,
        duration=duration,
        baseline=baseline,
        mitigated=mitigated,
        addon=addon,
        blocking=outcomes,
    )


# -- rendering ---------------------------------------------------------------


def _render_policy(policy: MitigationPolicy) -> list:
    lines = [f"policy: {policy.label} (default action: {policy.default_action})"]
    header = f"  {'type':12s}" + "".join(f"{party:>14s}" for party in PARTIES)
    lines.append(header)
    for pii_type in TABLE1_ORDER:
        actions = [policy.action_for(pii_type, party) for party in PARTIES]
        if all(action == policy.default_action for action in actions):
            continue
        lines.append(
            f"  {pii_type.value:12s}" + "".join(f"{action:>14s}" for action in actions)
        )
    return lines


def _render_reduction(outcome: MitigationOutcome) -> list:
    before = outcome.leak_counts(outcome.baseline)
    after = outcome.leak_counts(outcome.mitigated)
    services = sorted({service for service, _ in before} | {s for s, _ in after})
    lines = ["leak events per service/medium (baseline -> mitigated):"]
    lines.append(f"  {'service':16s}{'app':>16s}{'web':>16s}")
    for service in services:
        cells = []
        for medium in (APP, WEB):
            b = before.get((service, medium), 0)
            a = after.get((service, medium), 0)
            cells.append(f"{b:5d} -> {a:4d}")
        lines.append(f"  {service:16s}{cells[0]:>16s}{cells[1]:>16s}")
    total_before = outcome.total_leaks(outcome.baseline)
    total_after = outcome.total_leaks(outcome.mitigated)
    lines.append(
        f"  total: {total_before} -> {total_after} "
        f"({100 * outcome.reduction:.0f}% reduction)"
    )
    return lines


def _render_residual(outcome: MitigationOutcome) -> list:
    before = outcome.type_counts(outcome.baseline)
    after = outcome.type_counts(outcome.mitigated)
    lines = ["residual leaks per PII type (baseline -> mitigated):"]
    lines.append(f"  {'type':12s}{'app':>16s}{'web':>16s}")
    for pii_type in TABLE1_ORDER:
        row_before = [before.get((pii_type, medium), 0) for medium in (APP, WEB)]
        row_after = [after.get((pii_type, medium), 0) for medium in (APP, WEB)]
        if not any(row_before) and not any(row_after):
            continue
        cells = [
            f"{b:5d} -> {a:4d}" for b, a in zip(row_before, row_after)
        ]
        lines.append(f"  {pii_type.value:12s}{cells[0]:>16s}{cells[1]:>16s}")
    residual = sorted(t.value for t in outcome.residual_types())
    lines.append(f"  residual types: {', '.join(residual) if residual else 'none'}")
    return lines


def _render_decisions(outcome: MitigationOutcome) -> list:
    summary = outcome.addon.decision_summary()
    latency = outcome.addon.latency_percentiles()
    lines = ["inline decisions:"]
    lines.append(
        f"  requests seen {summary['requests_seen']}, "
        f"rewritten {summary['requests_rewritten']}, "
        f"blocked {summary['requests_blocked']}"
    )
    by_action = ", ".join(
        f"{action}={count}" for action, count in summary["by_action"].items()
    )
    by_party = ", ".join(
        f"{party}={count}" for party, count in summary["by_party"].items()
    )
    lines.append(f"  verdicts by action: {by_action or 'none'}")
    lines.append(f"  verdicts by party: {by_party or 'none'}")
    if latency["count"]:
        lines.append(
            f"  decision latency: p50 {latency['p50_us']:.1f}us, "
            f"p99 {latency['p99_us']:.1f}us over {latency['count']} requests"
        )
    return lines


def _render_blocking_contrast(outcome: MitigationOutcome) -> list:
    if not outcome.blocking:
        return []
    mitigated_web = outcome.leak_counts(outcome.mitigated)
    lines = ["blocking-only contrast (web medium):"]
    lines.append(
        f"  {'service':16s}{'baseline':>10s}{'blocking':>10s}{'mitigation':>12s}"
        f"{'conns blocked':>15s}"
    )
    for blocking_outcome in outcome.blocking:
        service = blocking_outcome.service
        lines.append(
            f"  {service:16s}"
            f"{len(blocking_outcome.baseline.leaks):>10d}"
            f"{len(blocking_outcome.protected.leaks):>10d}"
            f"{mitigated_web.get((service, WEB), 0):>12d}"
            f"{blocking_outcome.connections_blocked:>15d}"
        )
    lines.append(
        "  (blocking counts one web session; mitigation counts every web "
        "cell of the study)"
    )
    return lines


def _render_recommender(outcome: MitigationOutcome) -> list:
    lines = ["recommender deltas:"]
    for os_name, (before, after) in sorted(outcome.recommender_summaries().items()):
        lines.append(f"  {os_name}: before {before} -> after {after}")
    flips = [row for row in outcome.recommender_deltas() if row[2] != row[3]]
    if flips:
        lines.append("  flipped choices:")
        for service, os_name, was, now in flips:
            lines.append(f"    {service:16s}{os_name:8s}{was} -> {now}")
    else:
        lines.append("  flipped choices: none")
    return lines


def render_mitigation(outcome: MitigationOutcome) -> str:
    """Human-readable mitigation report (``repro mitigate``)."""
    sections = [
        _render_policy(outcome.policy),
        _render_reduction(outcome),
        _render_residual(outcome),
        _render_decisions(outcome),
        _render_blocking_contrast(outcome),
        _render_recommender(outcome),
    ]
    return "\n\n".join("\n".join(lines) for lines in sections if lines)
