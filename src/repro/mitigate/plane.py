"""The inline mitigation data plane.

:class:`MitigationAddon` rides the proxy's request-rewrite stage (see
``proxy/meddle.py``): for every decryptable request it runs the PR 1
Aho–Corasick ground-truth matcher over the outgoing bytes, looks the
matches up in a :class:`~repro.mitigate.policy.MitigationPolicy`, and
rewrites the URL, headers, cookies, and body in place before the
request reaches the (simulated) network.

Rewrites are *shape-preserving*: every encoded variant of a value is
replaced by a same-length string drawn from the same alphabet — hex
digests stay hex-parseable, base64 blobs stay decodable, URL-encoded
fields stay unreserved — so the carrying document survives.  Hash
replacements are keyed by ``(seed, type, value)``, giving analytics a
stable per-run pseudonym; the digest alphabet is folded to letters so a
replacement can never re-trigger the digit-boundary or GPS-tolerance
detectors.  Blocked requests are answered with a synthetic ``403``
without touching the network, and the recorded copy is scrubbed so a
blocked value never lands in a trace.
"""

from __future__ import annotations

import hashlib
import re
import time
from dataclasses import dataclass

from ..net.flow import CapturedRequest
from ..http.body import gzip_compress, gzip_decompress
from ..http.headers import Headers
from ..http.message import Response
from ..http.url import parse_url
from ..pii import encodings
from ..pii.matcher import _COORD_RE, GPS_TOLERANCE, matcher_for
from ..pii.types import PiiType
from ..trackerdb.categorize import OS_SERVICE
from .policy import (
    ACTION_ALLOW,
    ACTION_BLOCK,
    ACTION_HASH,
    ACTION_SCRUB,
    FIRST_PARTY,
    THIRD_PARTY,
    MitigationPolicy,
)

# Encodings whose forms must stay hex-parseable after rewriting.
_HEX_ENCODINGS = frozenset(
    {encodings.HEX, encodings.MD5, encodings.SHA1, encodings.SHA256}
)

# Digest folding: replacements must never contain digits, or a slice of
# a pseudonym could satisfy the matcher's digit-boundary forms (ZIPs,
# phone fragments) or parse as a GPS token.  Hex-class replacements fold
# digits into a-f (still valid hex); everything else folds past 'f' so
# the result cannot collide with a real digest either.
_HEX_FOLD = str.maketrans("0123456789", "abcdefabcd")
_TEXT_FOLD = str.maketrans("0123456789", "ghijklmnop")

# Stop recording per-flow latencies past this point; the benchmark only
# needs a bounded sample and studies can see millions of flows.
_LATENCY_CAP = 1_000_000

_BLOCK_BODY = b"blocked by mitigation policy\n"


def scrub_replacement(form: str, encoding: str) -> str:
    """Same-length redaction in the form's own alphabet."""
    fill = "0" if encoding in _HEX_ENCODINGS else "x"
    return fill * len(form)


def _pseudonym(seed: int, pii_type: PiiType, value: str) -> str:
    return hashlib.sha256(
        f"repro-mitigate:{seed}:{pii_type.value}:{value}".encode()
    ).hexdigest()


def hash_replacement(
    form: str, encoding: str, pii_type: PiiType, value: str, seed: int
) -> str:
    """Deterministic same-length pseudonym for one encoded form.

    Keyed by ``(seed, type, value)`` — not by the form — so every
    encoding of the same value maps onto slices of one pseudonym and
    cross-encoding linkability survives mitigation.
    """
    digest = _pseudonym(seed, pii_type, value)
    digest = digest.translate(_HEX_FOLD if encoding in _HEX_ENCODINGS else _TEXT_FOLD)
    repeats = len(form) // len(digest) + 1
    return (digest * repeats)[: len(form)]


@dataclass(frozen=True)
class RewritePlan:
    """Compiled substitutions for one set of (value, action) targets.

    ``substitutions`` holds ``(lowered form, pattern, replacement)``
    triples sorted longest-form-first so nested forms (a value inside
    its own URL-encoding, digits inside a formatted phone number) are
    consumed by the outermost match.  ``coords`` holds
    ``(coordinate, pseudonym-or-None)`` pairs handled by GPS-tolerance
    token replacement.
    """

    substitutions: tuple
    coords: tuple

    @property
    def empty(self) -> bool:
        return not self.substitutions and not self.coords


def build_rewrite_plan(targets, seed: int) -> RewritePlan:
    """Compile ``(pii_type, value, is_coordinate, action)`` targets.

    ``block`` targets are planned as scrubs: the blocked request is
    still recorded in the trace, and nothing blocked may survive in it.
    """
    subs: dict = {}
    coords: list = []
    for pii_type, value, is_coordinate, action in targets:
        fill_action = ACTION_SCRUB if action == ACTION_BLOCK else action
        if is_coordinate:
            pseudonym = None
            if fill_action == ACTION_HASH:
                pseudonym = _pseudonym(seed, pii_type, value).translate(_TEXT_FOLD)
            coords.append((float(value), pseudonym))
            continue
        for form, encoding in encodings.variants(value, include_hashes=True).items():
            lowered = form.lower()
            if lowered in subs:
                continue
            if fill_action == ACTION_HASH:
                replacement = hash_replacement(form, encoding, pii_type, value, seed)
            else:
                replacement = scrub_replacement(form, encoding)
            subs[lowered] = (form, replacement)
    ordered = sorted(subs.items(), key=lambda item: (-len(item[0]), item[0]))
    compiled = tuple(
        (lowered, re.compile(re.escape(form), re.IGNORECASE), replacement)
        for lowered, (form, replacement) in ordered
    )
    return RewritePlan(substitutions=compiled, coords=tuple(sorted(set(coords))))


def rewrite_text(text: str, plan: RewritePlan) -> str:
    """Apply a plan to one text; replacements preserve length."""
    if not text:
        return text
    lowered = text.lower()
    for low_form, pattern, replacement in plan.substitutions:
        if low_form in lowered:
            text = pattern.sub(replacement, text)
            lowered = text.lower()
    if plan.coords and "." in text:
        text = _COORD_RE.sub(lambda match: _coord_token(match, plan.coords), text)
    return text


def _coord_token(match: "re.Match", coords: tuple) -> str:
    token = match.group(0)
    try:
        number = float(token)
    except ValueError:
        return token
    for coordinate, pseudonym in coords:
        if abs(number - coordinate) <= GPS_TOLERANCE:
            if pseudonym is None:
                return "x" * len(token)
            repeats = len(token) // len(pseudonym) + 1
            return (pseudonym * repeats)[: len(token)]
    return token


@dataclass(frozen=True)
class MitigationDecision:
    """One inline verdict: what was done to one value on one flow."""

    service: str
    os_name: str
    medium: str
    host: str
    party: str
    pii_type: PiiType
    action: str
    encoding: str

    def as_tuple(self) -> tuple:
        """``(host, verdict, rule)`` — the blocking decisions-log shape."""
        return (
            self.host,
            self.action,
            f"{self.pii_type.value}:{self.encoding}@{self.party}",
        )


class MitigationAddon:
    """Proxy addon implementing the mitigation data plane.

    Staging mirrors :class:`~repro.proxy.addons.StreamCapture`: install
    via ``phone_setup`` (``stage_phone``) so the matcher is built from
    the device's ground truth, and let ``capture_start`` select the
    service spec whose categorizer decides first- vs third-party.
    """

    def __init__(
        self,
        policy: MitigationPolicy,
        services=(),
        seed: int = 0,
        record_latency: bool = True,
    ) -> None:
        self.policy = policy
        self.seed = seed
        self._specs = {spec.slug: spec for spec in services}
        self._enabled = bool(policy.active_types())
        if not self._enabled:
            # An all-allow policy never rewrites: unpublish the hot-path
            # hook (add_addon skips None callbacks) so the proxy's
            # rewrite stage stays a single dict lookup per request.
            self.rewrite_request = None
        self._matcher = None
        self._categorizer = None
        self._session = ("", "", "")
        self._plan_cache: dict = {}
        self.decisions: list = []
        self.flows_seen = 0
        self.requests_seen = 0
        self.requests_rewritten = 0
        self.requests_blocked = 0
        self.latencies_ns: list = [] if record_latency else None

    # -- study lifecycle ----------------------------------------------------

    def stage_phone(self, phone) -> None:
        """``phone_setup`` hook: build the matcher from device truth."""
        self.stage_ground_truth(phone.ground_truth())

    def stage_ground_truth(self, ground_truth: dict) -> None:
        self._matcher = matcher_for(ground_truth) if self._enabled else None

    def capture_start(self, meta) -> None:
        self._session = (meta.service, meta.os_name, meta.medium)
        spec = self._specs.get(meta.service)
        if spec is None:
            self._categorizer = None
        else:
            from ..core.pipeline import categorizer_for

            self._categorizer = categorizer_for(spec)

    def capture_stop(self, trace) -> None:
        self._session = ("", "", "")
        self._categorizer = None

    # -- the hot path -------------------------------------------------------

    def rewrite_request(self, flow, request):
        """Proxy rewrite-stage hook; see ``InterceptionProxy``."""
        matcher = self._matcher
        if matcher is None:
            return None
        if self.latencies_ns is None:
            return self._decide(matcher, flow, request)
        started = time.perf_counter_ns()
        try:
            return self._decide(matcher, flow, request)
        finally:
            if len(self.latencies_ns) < _LATENCY_CAP:
                self.latencies_ns.append(time.perf_counter_ns() - started)

    def _decide(self, matcher, flow, request):
        self.requests_seen += 1
        tags = flow.tags
        if tags and ("background" in tags or "os-service" in tags):
            # The leak policy never counts OS/background traffic; the
            # data plane leaves it untouched for the same reason.
            return None
        view = CapturedRequest(
            method=request.method,
            url=str(request.url),
            headers=request.headers.items(),
            body=request.body,
        )
        matches = matcher.match_request(view)
        if not matches:
            return None
        party = self._party(flow, request)
        if party is None:
            return None
        policy = self.policy
        targets = []
        blocked = False
        for match in sorted(
            matches, key=lambda m: (m.pii_type.value, m.value, m.encoding)
        ):
            action = policy.action_for(match.pii_type, party)
            if action == ACTION_ALLOW:
                continue
            targets.append((match, action))
            if action == ACTION_BLOCK:
                blocked = True
        if not targets:
            return None
        plan = self._plan_for(targets)
        rewritten = apply_plan(request, plan)
        service, os_name, medium = self._session
        host = flow.hostname
        for match, action in targets:
            self.decisions.append(
                MitigationDecision(
                    service=service,
                    os_name=os_name,
                    medium=medium,
                    host=host,
                    party=party,
                    pii_type=match.pii_type,
                    action=action,
                    encoding=match.encoding,
                )
            )
        flow.tags.add("mitigated")
        if blocked:
            self.requests_blocked += 1
            response = Response.build(
                403,
                body=_BLOCK_BODY,
                content_type="text/plain",
                headers=[("X-Mitigation", "block")],
            )
            return (rewritten, response)
        self.requests_rewritten += 1
        return rewritten if rewritten is not request else None

    def _party(self, flow, request):
        """First/third-party from the study categorizer, or None to skip."""
        categorizer = self._categorizer
        if categorizer is None:
            # Outside a staged session there is no first-party notion;
            # privacy-conservative default is to treat hosts as third
            # parties.
            return THIRD_PARTY
        host = flow.hostname
        category = categorizer.categorize_host(host, str(request.url))
        if category.label == OS_SERVICE:
            return None
        if category.is_first_party or categorizer.is_sso_host(host):
            return FIRST_PARTY
        return THIRD_PARTY

    def _plan_for(self, targets) -> RewritePlan:
        key = tuple(
            (match.pii_type.value, match.value, match.encoding == "coordinate", action)
            for match, action in targets
        )
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = build_rewrite_plan(
                (
                    (match.pii_type, match.value, match.encoding == "coordinate", action)
                    for match, action in targets
                ),
                self.seed,
            )
            self._plan_cache[key] = plan
        return plan

    # -- reporting ----------------------------------------------------------

    def tcp_connect(self, flow) -> None:
        self.flows_seen += 1

    def decision_summary(self) -> dict:
        """Counts by action, party, and PII type, plus flow totals."""
        by_action: dict = {}
        by_party: dict = {}
        by_type: dict = {}
        for decision in self.decisions:
            by_action[decision.action] = by_action.get(decision.action, 0) + 1
            by_party[decision.party] = by_party.get(decision.party, 0) + 1
            key = decision.pii_type.value
            by_type[key] = by_type.get(key, 0) + 1
        return {
            "decisions": len(self.decisions),
            "by_action": dict(sorted(by_action.items())),
            "by_party": dict(sorted(by_party.items())),
            "by_type": dict(sorted(by_type.items())),
            "requests_seen": self.requests_seen,
            "requests_rewritten": self.requests_rewritten,
            "requests_blocked": self.requests_blocked,
        }

    def latency_percentiles(self) -> dict:
        """p50/p99 (and mean/max) of recorded per-request decision time."""
        sample = self.latencies_ns or []
        if not sample:
            return {"count": 0, "p50_us": 0.0, "p99_us": 0.0, "mean_us": 0.0, "max_us": 0.0}
        ordered = sorted(sample)
        count = len(ordered)

        def at(q: float) -> float:
            index = min(count - 1, int(q * count))
            return ordered[index] / 1000.0

        return {
            "count": count,
            "p50_us": at(0.50),
            "p99_us": at(0.99),
            "mean_us": sum(ordered) / count / 1000.0,
            "max_us": ordered[-1] / 1000.0,
        }


def apply_plan(request, plan: RewritePlan):
    """Rewrite one outgoing request under a compiled plan.

    Returns the original object untouched when nothing matches;
    otherwise a fresh :class:`~repro.http.message.Request` (the caller's
    object is never mutated — the client may reuse it for redirects).
    The URL rewrite is limited to the request-target so the origin, and
    therefore routing, can never change; the ``Host`` header is skipped
    for the same reason.
    """
    if plan.empty:
        return request
    url = request.url
    target = url.request_target
    new_target = rewrite_text(target, plan)
    url_changed = new_target != target

    headers_changed = False
    rewritten_items = []
    for name, value in request.headers.items():
        if name.lower() == "host":
            rewritten_items.append((name, value))
            continue
        new_value = rewrite_text(value, plan)
        if new_value != value:
            headers_changed = True
        rewritten_items.append((name, new_value))

    new_body = request.body
    if request.body:
        content_encoding = (request.headers.get("Content-Encoding") or "").lower()
        if content_encoding == "gzip":
            inflated = gzip_decompress(request.body)
            if inflated is not None:
                text = inflated.decode("latin-1")
                new_text = rewrite_text(text, plan)
                if new_text != text:
                    new_body = gzip_compress(new_text.encode("latin-1"))
            # Invalid gzip stays opaque — the analyzer cannot read it
            # either, so nothing inside it is detectable.
        else:
            text = request.body.decode("latin-1")
            new_text = rewrite_text(text, plan)
            if new_text != text:
                new_body = new_text.encode("latin-1")
    body_changed = new_body is not request.body

    if not (url_changed or headers_changed or body_changed):
        return request
    rewritten = request.copy()
    if url_changed:
        rewritten.url = parse_url(url.origin + new_target)
    if headers_changed:
        rewritten.headers = Headers(rewritten_items)
    if body_changed:
        rewritten.body = new_body
        if len(new_body) != len(request.body) and "Content-Length" in rewritten.headers:
            rewritten.headers.set("Content-Length", str(len(new_body)))
    return rewritten
