"""Mitigation policy model: per-PII-type, per-party actions.

A policy maps every ``(PiiType, party)`` cell to one of four actions:

``allow``
    Leave the value on the wire untouched.
``block``
    Refuse the request outright: the proxy answers with a synthetic
    ``403`` and the upstream never sees the flow.  The recorded copy of
    the request is scrubbed so a blocked value never lands in a trace.
``scrub``
    Replace every encoded variant of the value with a same-length
    redaction in the same alphabet, so the carrying document (query
    string, JSON, base64 blob, hex digest) still parses.
``hash``
    Replace the value with a deterministic, seed-keyed digest rendered
    at the same length — linkability without identity, reproducible
    across runs with the same seed.

Parties are the paper's two destinations that matter for leak policy:
``first_party`` (the service itself, SSO endpoints included) and
``third_party`` (everything else).  OS-service and background flows are
never touched — the analysis layer excludes them from leak accounting,
and the data plane mirrors that exclusion exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

from ..pii.types import ALL_PII_TYPES, PiiType

ACTION_ALLOW = "allow"
ACTION_BLOCK = "block"
ACTION_SCRUB = "scrub"
ACTION_HASH = "hash"
ACTIONS = (ACTION_ALLOW, ACTION_BLOCK, ACTION_SCRUB, ACTION_HASH)

FIRST_PARTY = "first_party"
THIRD_PARTY = "third_party"
PARTIES = (FIRST_PARTY, THIRD_PARTY)

POLICY_FORMAT = "repro-mitigation-policy/1"


def _normalize_rules(rules: Mapping) -> Dict[PiiType, Dict[str, str]]:
    normalized: Dict[PiiType, Dict[str, str]] = {}
    for raw_type, cells in rules.items():
        pii_type = PiiType(raw_type)
        row: Dict[str, str] = {}
        for party, action in cells.items():
            if party not in PARTIES:
                raise ValueError(f"unknown party {party!r}")
            if action not in ACTIONS:
                raise ValueError(f"unknown action {action!r}")
            row[party] = action
        normalized[pii_type] = row
    return normalized


@dataclass(frozen=True)
class MitigationPolicy:
    """An immutable action table over ``PiiType`` x party.

    Missing cells fall back to ``default_action`` (``allow`` unless
    stated otherwise), so a policy only needs to spell out the types it
    cares about.
    """

    rules: Mapping = field(default_factory=dict)
    default_action: str = ACTION_ALLOW
    label: str = "custom"

    def __post_init__(self) -> None:
        if self.default_action not in ACTIONS:
            raise ValueError(f"unknown action {self.default_action!r}")
        object.__setattr__(self, "rules", _normalize_rules(self.rules))

    # -- lookup -------------------------------------------------------------

    def action_for(self, pii_type: PiiType, party: str) -> str:
        """The action for one ``(type, party)`` cell."""
        row = self.rules.get(pii_type)
        if row is None:
            return self.default_action
        return row.get(party, self.default_action)

    def active_types(self) -> Tuple[PiiType, ...]:
        """Types with at least one non-``allow`` cell, in Table-1 order."""
        out = []
        for pii_type in ALL_PII_TYPES:
            if any(
                self.action_for(pii_type, party) != ACTION_ALLOW for party in PARTIES
            ):
                out.append(pii_type)
        return tuple(out)

    def covered_types(self) -> Tuple[PiiType, ...]:
        """Types mitigated at *every* party — nothing of these may leak."""
        out = []
        for pii_type in ALL_PII_TYPES:
            if all(
                self.action_for(pii_type, party) != ACTION_ALLOW for party in PARTIES
            ):
                out.append(pii_type)
        return tuple(out)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": POLICY_FORMAT,
            "label": self.label,
            "default_action": self.default_action,
            "rules": {
                pii_type.value: {party: row[party] for party in PARTIES if party in row}
                for pii_type, row in sorted(
                    self.rules.items(), key=lambda item: item[0].value
                )
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "MitigationPolicy":
        if payload.get("format", POLICY_FORMAT) != POLICY_FORMAT:
            raise ValueError(f"unknown policy format {payload.get('format')!r}")
        return cls(
            rules=payload.get("rules", {}),
            default_action=payload.get("default_action", ACTION_ALLOW),
            label=payload.get("label", "custom"),
        )

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")

    @classmethod
    def load(cls, path) -> "MitigationPolicy":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def _uniform(action: str, types: Iterable[PiiType]) -> dict:
    return {pii_type: {FIRST_PARTY: action, THIRD_PARTY: action} for pii_type in types}


def default_policy() -> MitigationPolicy:
    """The calibrated default: the ReCon-shaped trade-off.

    - ``password`` is never allowed past the proxy in the clear: blocked
      toward third parties, scrubbed even toward the first party (the
      simulated services do not validate credential payloads, and a
      plaintext first-party login is itself a leak in the paper's
      policy).
    - Profile identity (``email``/``username``/``name``/``gender``/
      ``birthday``/``phone``/``location``) is scrubbed everywhere: same
      length, same alphabet, so form posts and JSON bodies stay valid.
    - ``unique_id`` is hash-replaced at both parties and
      ``device_info`` toward third parties: analytics keep a stable
      per-seed pseudonym but lose the real identifier.
    - ``device_info`` stays allowed toward the first party — the one
      residual channel, so mitigated studies retain a visible (and
      low-sensitivity) leak family instead of a trivially empty report.
    """
    rules: dict = _uniform(
        ACTION_SCRUB,
        (
            PiiType.EMAIL,
            PiiType.USERNAME,
            PiiType.NAME,
            PiiType.GENDER,
            PiiType.BIRTHDAY,
            PiiType.PHONE,
            PiiType.LOCATION,
        ),
    )
    rules[PiiType.PASSWORD] = {FIRST_PARTY: ACTION_SCRUB, THIRD_PARTY: ACTION_BLOCK}
    rules[PiiType.UNIQUE_ID] = {FIRST_PARTY: ACTION_HASH, THIRD_PARTY: ACTION_HASH}
    rules[PiiType.DEVICE_INFO] = {FIRST_PARTY: ACTION_ALLOW, THIRD_PARTY: ACTION_HASH}
    return MitigationPolicy(rules=rules, default_action=ACTION_ALLOW, label="default")
