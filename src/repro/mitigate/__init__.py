"""Inline leak mitigation: block / scrub / hash PII on the proxy hot path.

The paper *measures* leaks; ReCon (PAPERS.md) both reveals **and
controls** them by rewriting traffic inline.  This package is that
controlling half: a :class:`MitigationPolicy` (per-PII-type, per-party
actions), a :class:`MitigationAddon` data plane that hooks the proxy's
request-rewrite stage, and a report layer that re-scores the study under
mitigation (`repro mitigate`).
"""

from .plane import (
    MitigationAddon,
    MitigationDecision,
    build_rewrite_plan,
    hash_replacement,
    rewrite_text,
    scrub_replacement,
)
from .policy import (
    ACTION_ALLOW,
    ACTION_BLOCK,
    ACTION_HASH,
    ACTION_SCRUB,
    ACTIONS,
    FIRST_PARTY,
    PARTIES,
    THIRD_PARTY,
    MitigationPolicy,
    default_policy,
)
from .report import MitigationOutcome, evaluate_mitigation, render_mitigation

__all__ = [
    "ACTIONS",
    "ACTION_ALLOW",
    "ACTION_BLOCK",
    "ACTION_HASH",
    "ACTION_SCRUB",
    "FIRST_PARTY",
    "MitigationAddon",
    "MitigationDecision",
    "MitigationOutcome",
    "MitigationPolicy",
    "PARTIES",
    "THIRD_PARTY",
    "build_rewrite_plan",
    "default_policy",
    "evaluate_mitigation",
    "hash_replacement",
    "render_mitigation",
    "rewrite_text",
    "scrub_replacement",
]
