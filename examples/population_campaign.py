"""Population campaign: leak exposure across a simulated user base.

The paper measures one tester per service; this walkthrough simulates a
small *population* instead — users drawn from configurable
distributions (OS share, app-vs-web preference, usage intensity,
permission grant rates) — and reports leak prevalence per cohort with
confidence intervals.  It also demonstrates the property the engine is
built around: shard partials merge exactly, in any order, to the same
canonical bytes.

Run:  python examples/population_campaign.py [--population N]
"""

import argparse

from repro.campaign import (
    CampaignContext,
    PopulationSpec,
    merge_campaigns,
    plan_shards,
    run_campaign,
)
from repro.services import build_catalog

SERVICES = ("weather", "yelp", "grubhub", "cnn", "priceline")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--population",
        type=int,
        default=16,
        help="number of simulated users (memory stays flat at any size)",
    )
    args = parser.parse_args()

    catalog = {spec.slug: spec for spec in build_catalog()}
    services = [catalog[slug] for slug in SERVICES]

    # A population: mostly-Android, app-leaning, privacy-mixed.  The
    # calibrated default is PopulationSpec(); every field is a
    # distribution, and .save()/.load() round-trip through plain JSON.
    spec = PopulationSpec(
        os_share={"android": 0.7, "ios": 0.3},
        app_preference=0.62,
        services_per_user=(1, 3),
        sessions_per_service=(1, 2),
        session_duration=30.0,
        bootstrap_replicates=50,
    )

    print(
        f"Simulating {args.population} users over {len(services)} services "
        f"(cohorts by OS x preferred medium)..."
    )
    campaign = run_campaign(
        args.population,
        seed=7,
        population_spec=spec,
        services=services,
        cohorts="os,medium",
        executor="serial",
    )

    overall = campaign.overall()
    low, high = overall.leak_interval()
    print(
        f"\npopulation: {overall.users} users, {overall.sessions} sessions; "
        f"{overall.users_leaking}/{overall.users} leaked PII "
        f"(95% Wilson CI [{100 * low:.1f}, {100 * high:.1f}]%)"
    )
    for cohort in campaign.ordered_cohorts():
        mean = cohort.user_moments["leak_events"].mean()
        blow, bhigh = cohort.metric_interval("leak_events")
        print(
            f"  {cohort.label:14s} {cohort.users:3d} users, "
            f"{cohort.users_leaking:3d} leaking, "
            f"leak events/user {mean:5.2f} "
            f"(bootstrap CI [{blow:.2f}, {bhigh:.2f}])"
        )

    # The merge algebra: simulate the same population as independent
    # shards, merge them forwards and backwards — identical bytes, and
    # identical to the single-pass run above.
    context = CampaignContext(spec, services, 7, dims=("os", "medium"))
    partials = [
        context.run_shard(start, stop)
        for start, stop in plan_shards(args.population, 4)
    ]
    forward = merge_campaigns(partials)
    backward = merge_campaigns(list(reversed(partials)))
    assert forward.canonical_bytes() == campaign.canonical_bytes()
    assert backward.canonical_bytes() == campaign.canonical_bytes()
    print(
        f"\n{len(partials)} shard partials merged forwards and backwards: "
        f"byte-identical (digest {campaign.digest()[:16]}...)"
    )


if __name__ == "__main__":
    main()
