"""Explore the web tracking ecosystem around a news site.

News sites are the paper's extreme case: tens of A&A domains, thousands
of extra TCP connections, real-time-bidding redirect chains that bounce
the browser through several exchanges (§4.1).  This example loads the
simulated CNN front page through the browser engine, then dissects what
happened: which hosts were contacted, which EasyList rules fired, and
one complete RTB cookie-sync chain hop by hop.

Run:  python examples/tracker_ecosystem.py
"""

import random
from collections import Counter

from repro.device import Browser, Phone, PhoneSpec
from repro.device.persona import generate_persona
from repro.experiment import SessionRecord
from repro.net import SessionMeta
from repro.services import build_catalog, build_world
from repro.trackerdb import Categorizer, bundled_easylist


def main() -> None:
    catalog = [s for s in build_catalog() if s.slug == "cnn"]
    world = build_world(catalog)
    spec = catalog[0]

    rng = random.Random(7)
    phone = Phone(PhoneSpec.nexus5(), world.network, rng)
    phone.sign_in(generate_persona(rng))
    phone.connect_vpn(world.proxy)

    world.proxy.start_capture(SessionMeta(service="cnn", os_name="android", medium="web"))
    browser = Browser(phone)
    with browser.session(private=True, now_fn=world.clock.now) as session:
        page = session.load_page("http://www.cnn.com/")
        print(f"Loaded {page.url} with {len(page.resources)} subresources "
              f"({page.total_requests} requests incl. redirects)")
    trace = world.proxy.stop_capture()

    categorizer = Categorizer(spec.first_party_domains)
    buckets = categorizer.split(trace)
    print(f"\nFlows: {len(trace)} total")
    for label, flows in buckets.items():
        domains = Counter(categorizer.categorize_flow(f).domain for f in flows)
        print(f"  {label:18s} {len(flows):4d} flows across {len(domains):2d} domains")

    print("\nA&A domains contacted (EasyList matches):")
    easylist = bundled_easylist()
    seen = set()
    for flow in trace:
        category = categorizer.categorize_flow(flow)
        if category.is_aa and category.domain not in seen:
            seen.add(category.domain)
            print(f"  {category.domain:24s} rule: {category.matched_rule}")

    # Dissect one RTB chain: request an ad slot directly and follow it.
    print("\nOne real-time-bidding redirect chain:")
    client = browser.session(private=True, now_fn=world.clock.now).client
    result = client.get("https://ad.doubleclick.net/ad?slot=0&pub=cnn.com&pg=demo")
    for hop_url, response in result.hops:
        print(f"  {hop_url} -> {response.status} {response.headers.get('Location')}")
    print(f"  final: {result.url} ({result.response.content_type}, "
          f"{len(result.response.body)} bytes)")
    print(f"\nCookies accumulated along the chain: {len(client.cookie_jar)}")
    for cookie in client.cookie_jar.all():
        print(f"  {cookie.domain:24s} {cookie.name}={cookie.value}")


if __name__ == "__main__":
    main()
