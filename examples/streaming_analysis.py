"""Streaming capture: analyze leaks while the campaign is still running.

Three acts:

1. run a study with ``streaming=True`` — every flow is analyzed the
   moment its connection closes, by sharded online analyzers fed from
   the interception proxy;
2. re-analyze the same capture with the batch reference path and show
   the results are *identical*;
3. kill a checkpointed streaming run mid-flight and resume it, again
   landing on the exact same numbers.

Run:  python examples/streaming_analysis.py
"""

import tempfile

from repro import run_study
from repro.core.pipeline import analyze_dataset
from repro.services import build_catalog
from repro.stream import DatasetStreamer


def cells(study):
    return {(a.service, a.os_name, a.medium): a for a in study.analyses()}


def main() -> None:
    catalog = {spec.slug: spec for spec in build_catalog()}
    chosen = [catalog[slug] for slug in ("weather", "cnn")]

    print("Act 1: live streaming study (2 shards, online analysis)...")
    streamed = run_study(
        services=chosen, duration=60.0, train_recon=False, streaming=True, shards=2
    )
    for key, cell in sorted(cells(streamed).items()):
        types = ", ".join(sorted(t.code for t in cell.leak_types)) or "none"
        print(
            f"  {key[0]:8s} {key[1]:7s} {key[2]:3s}: {cell.flows_total:3d} flows, "
            f"{len(cell.aa_domains):2d} A&A domains, leaked: {types}"
        )

    print("\nAct 2: batch re-analysis of the same capture...")
    batch = analyze_dataset(streamed.dataset, chosen, train_recon=False)
    matches = sum(
        1 for key, cell in cells(batch).items() if cells(streamed)[key] == cell
    )
    print(f"  {matches}/{len(cells(batch))} sessions identical to the streaming result")

    print("\nAct 3: kill a checkpointed replay mid-stream, then resume...")
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        first = DatasetStreamer(
            streamed.dataset,
            chosen,
            shards=2,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=50,
        )
        killed_at = first.run(limit=150)
        first.analyzer.abort()
        print(f"  killed after {killed_at} events (snapshots + journal survive)")

        resumed = DatasetStreamer(
            streamed.dataset,
            chosen,
            shards=2,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=50,
            resume=True,
        )
        resumed.run()
        recovered = resumed.finalize(train_recon=False)
    matches = sum(
        1 for key, cell in cells(batch).items() if cells(recovered)[key] == cell
    )
    print(f"  resumed run: {matches}/{len(cells(batch))} sessions identical to batch")


if __name__ == "__main__":
    main()
