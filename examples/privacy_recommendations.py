"""The app-or-web recommender under different privacy preferences.

The paper's conclusion — "the answer depends on user preferences and
priorities" — shipped as an interactive recommender.  This example runs
it three ways over a cross-section of services:

1. default preferences (balanced weights);
2. a location-sensitive user (e.g. avoiding geo profiling);
3. a tracking-averse user who mostly cares about A&A exposure.

The same service can flip between app and web across profiles, which is
exactly the paper's point.

Run:  python examples/privacy_recommendations.py
"""

from repro import PiiType, PrivacyPreferences, Recommender, run_study
from repro.services import build_catalog


def show(recommender: Recommender, label: str) -> None:
    print(f"\n--- {label} ---")
    for rec in recommender.recommend_all("android"):
        marker = {"app": "[APP]", "web": "[WEB]", "either": "[ = ]"}[rec.choice]
        print(
            f"  {marker} {rec.service:12s} app={rec.app_score:5.2f} web={rec.web_score:5.2f}"
        )
    print(" ", recommender.summary("android"))


def main() -> None:
    catalog = {spec.slug: spec for spec in build_catalog()}
    chosen = [
        catalog[slug]
        for slug in ("weather", "accuweather", "yelp", "grubhub", "cnn", "priceline", "reddit", "uber")
    ]
    study = run_study(services=chosen, train_recon=False)

    show(Recommender(study), "balanced (default weights)")

    location_sensitive = PrivacyPreferences.only(PiiType.LOCATION)
    show(Recommender(study, location_sensitive), "location-sensitive user")

    tracking_averse = PrivacyPreferences(
        weights={t: 0.1 for t in PiiType}, tracker_aversion=0.5
    )
    show(Recommender(study, tracking_averse), "tracking-averse user (A&A exposure dominates)")


if __name__ == "__main__":
    main()
