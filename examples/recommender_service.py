"""The recommender served over HTTP: launch, query, compare profiles.

`repro.serve` packages the app-or-web recommender as a small HTTP API
over precomputed study results — the same scoring `Recommender` does
in-process, but behind endpoints a dashboard or script can hit.  This
example:

1. runs a 3-service study and saves it the way `repro collect` would;
2. boots the server in-process on an ephemeral port (`BackgroundServer`
   — the production path is `repro serve --result DIR --port N`);
3. queries `/healthz`, `/v1/services`, and `/v1/recommend`
   programmatically with plain `urllib`;
4. re-asks with a location-sensitive preference profile, showing the
   same services flip verdicts — the paper's "it depends" conclusion,
   now one POST body away.

Run:  python examples/recommender_service.py
"""

import json
import tempfile
import urllib.request
from pathlib import Path

from repro.core.pipeline import run_study
from repro.serve import BackgroundServer, LruTtlCache, ResultStore, ServeApp
from repro.services import build_catalog

SERVICES = ("weather", "grubhub", "cnn")


def get(url: str) -> dict:
    with urllib.request.urlopen(url) as response:
        return json.load(response)


def post(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request) as response:
        return json.load(response)


def show(answer: dict, label: str) -> None:
    print(f"\n--- {label} ---")
    for rec in answer["recommendations"]:
        marker = {"app": "[APP]", "web": "[WEB]", "either": "[ = ]"}[rec["choice"]]
        print(
            f"  {marker} {rec['service']:12s} "
            f"app={rec['app_score']:5.2f} web={rec['web_score']:5.2f}"
        )
    summary = answer["summary"]
    print(f"  summary: app={summary['app']} web={summary['web']} either={summary['either']}")


def main() -> None:
    catalog = {spec.slug: spec for spec in build_catalog()}
    study = run_study(
        services=[catalog[slug] for slug in SERVICES],
        seed=2016,
        duration=120.0,
        train_recon=False,
    )

    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "study"
        study.dataset.save(directory)

        store = ResultStore(directory, train_recon=False)
        app = ServeApp(store, cache=LruTtlCache(maxsize=1024, ttl=300.0))
        with BackgroundServer(app) as server:
            base = f"http://{server.host}:{server.port}"
            health = get(f"{base}/healthz")
            print(
                f"serving {health['services']} services from a {health['source']} "
                f"(etag {health['etag']}, status {health['status']})"
            )

            listed = get(f"{base}/v1/services")["services"]
            for entry in listed:
                leaks = []
                if entry["leaks_via_app"]:
                    leaks.append("app")
                if entry["leaks_via_web"]:
                    leaks.append("web")
                print(f"  {entry['service']:12s} {entry['name']} (leaks via: {', '.join(leaks)})")

            show(post(f"{base}/v1/recommend", {"os": "android"}), "balanced (default weights)")

            location_sensitive = {
                "os": "android",
                "preferences": {"weights": {"location": 1.0, "unique_id": 0.0, "email": 0.0}},
            }
            show(
                post(f"{base}/v1/recommend", location_sensitive),
                "location-sensitive user",
            )

            # Same question again: this one is answered from the cache.
            cached = post(f"{base}/v1/recommend", {"os": "android"})
            stats = app.cache.stats()
            print(
                f"\nrepeat query served from cache "
                f"(hits={stats['hits']}, misses={stats['misses']}), "
                f"answer unchanged: {cached['summary']}"
            )

    print("\nserver drained cleanly; same scores as calling Recommender in-process.")


if __name__ == "__main__":
    main()
