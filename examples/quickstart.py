"""Quickstart: measure a handful of services and compare app vs. web.

Runs the full pipeline — simulated phones, interception proxy, ReCon +
string-matching PII detection, EasyList categorization, leak policy —
over five well-known services, then prints what each medium exposed.

Run:  python examples/quickstart.py [--workers N]
"""

import argparse

from repro import run_study
from repro.services import build_catalog


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="analysis threads (results are identical for any value)",
    )
    args = parser.parse_args()

    catalog = {spec.slug: spec for spec in build_catalog()}
    chosen = [catalog[slug] for slug in ("weather", "yelp", "grubhub", "cnn", "priceline")]

    print(f"Running {len(chosen)} services x (app, web) x (android, ios)...")
    study = run_study(services=chosen, train_recon=False, workers=args.workers)

    for result in study.services:
        spec = result.spec
        print(f"\n=== {spec.name} ({spec.category}) ===")
        for os_name in spec.oses:
            for medium in ("app", "web"):
                cell = result.cell(os_name, medium)
                if cell is None:
                    continue
                types = ", ".join(sorted(t.code for t in cell.leak_types)) or "none"
                print(
                    f"  {os_name:7s} {medium:3s}: "
                    f"{len(cell.aa_domains):3d} A&A domains, "
                    f"{cell.aa_flows:4d} A&A flows, "
                    f"{cell.aa_megabytes:5.2f} MB to A&A, "
                    f"leaked PII: {types}"
                )

    print("\nHeadline: does the web side contact more trackers?")
    from repro.core.compare import fraction_web_contacts_more_aa

    for os_name in ("android", "ios"):
        pct = 100 * fraction_web_contacts_more_aa(study, os_name)
        print(f"  {os_name}: web contacts more A&A domains for {pct:.0f}% of services")


if __name__ == "__main__":
    main()
