"""What if the proxy didn't just watch the leaks, but stopped them?

The paper measures *who* receives your PII; this example turns the same
interception proxy into an inline mitigation device.  A calibrated
default policy scrubs identity PII, hashes device identifiers into
stable pseudonyms, and blocks third-party password exfiltration — all
on the request path, before a byte reaches the (simulated) network.
The study is then re-scored: leak counts per medium, what survives (and
why it is allowed to), and which app-vs-web recommendations flip once
the data plane levels the field.

Run:  python examples/mitigated_study.py
"""

from repro.mitigate import default_policy, evaluate_mitigation
from repro.services import build_catalog


def main() -> None:
    catalog = {spec.slug: spec for spec in build_catalog()}
    chosen = [catalog[slug] for slug in ("weather", "grubhub", "cnn")]
    policy = default_policy()

    print(f"policy: {policy.label!r} — covers "
          f"{len(policy.covered_types())}/{len(policy.active_types())} active PII types")
    outcome = evaluate_mitigation(chosen, policy, seed=2016, blocking=False)

    before = outcome.leak_counts(outcome.baseline)
    after = outcome.leak_counts(outcome.mitigated)
    print(f"\n{'service':12s} {'app leaks':>16s} {'web leaks':>16s}")
    for spec in chosen:
        cells = []
        for medium in ("app", "web"):
            cells.append(
                f"{before.get((spec.slug, medium), 0):5d} -> "
                f"{after.get((spec.slug, medium), 0):3d}"
            )
        print(f"{spec.slug:12s} {cells[0]:>16s} {cells[1]:>16s}")
    print(
        f"\nmitigation removed {100 * outcome.reduction:.0f}% of leak events "
        f"({outcome.total_leaks(outcome.baseline)} -> "
        f"{outcome.total_leaks(outcome.mitigated)})"
    )

    residual = sorted(t.value for t in outcome.residual_types())
    print("still leaking:", ", ".join(residual) if residual else "(nothing)")
    print(
        "every residual leak is a (type, party) cell the policy explicitly\n"
        "allows — here device_info to first parties, kept for analytics."
    )

    summary = outcome.addon.decision_summary()
    latency = outcome.addon.latency_percentiles()
    print(
        f"\ninline decisions: {summary['decisions']} verdicts over "
        f"{summary['requests_seen']} requests "
        f"({summary['requests_rewritten']} rewritten, "
        f"{summary['requests_blocked']} blocked)"
    )
    print(
        f"decision latency: p50 {latency['p50_us']:.1f}us, "
        f"p99 {latency['p99_us']:.1f}us — microsecond budget held"
    )
    sample = outcome.addon.decisions[0]
    print(
        "sample decision:",
        f"{sample.action} {sample.pii_type.value} ({sample.encoding}) "
        f"to {sample.host} [{sample.party}]",
    )

    flips = [row for row in outcome.recommender_deltas() if row[2] != row[3]]
    print(f"\nrecommendation flips under mitigation: {len(flips)}")
    for service, os_name, was, now in flips:
        print(f"  {service:12s} {os_name:8s} {was} -> {now}")
    if flips:
        print(
            "with the data plane scrubbing both mediums, the choice is no\n"
            "longer about who leaks less — residual surface decides."
        )


if __name__ == "__main__":
    main()
