"""How much does an ad-blocker actually protect you? (§5 future work)

The paper's closing questions include "how effective are existing
browser privacy protection tools in light of our findings?".  This
example answers it inside the reproduction: each service's web session
is run twice — bare, and behind an EasyList-driven blocking extension —
and the leak counts are compared.

Two structural limits of blocking show up clearly:

1. first-party leaks survive (your location still goes to weather.com);
2. non-A&A third parties survive — the Gigya credential flow is
   invisible to EasyList, exactly why the paper had to find those
   password leaks with a PII detector rather than a filter list.

Run:  python examples/blocking_effectiveness.py
"""

from repro.core.countermeasures import evaluate_blocking, summarize_outcomes
from repro.services import build_catalog


def main() -> None:
    catalog = {spec.slug: spec for spec in build_catalog()}
    chosen = ["cnn", "accuweather", "grubhub", "foodnetwork", "priceline"]

    print(f"{'service':14s} {'A&A domains':>14s} {'leak events':>14s}  residual third parties")
    outcomes = []
    for slug in chosen:
        outcome = evaluate_blocking(catalog[slug], "android", duration=180)
        outcomes.append(outcome)
        print(
            f"{slug:14s} {len(outcome.baseline.aa_domains):5d} -> {len(outcome.protected.aa_domains):3d}"
            f" {len(outcome.baseline.leaks):8d} -> {len(outcome.protected.leaks):3d}"
            f"   {sorted(outcome.residual_third_parties) or '(none)'}"
        )

    summary = summarize_outcomes(outcomes)
    print(f"\nOverall: blocking removed {100 * summary['reduction']:.0f}% of leak events.")
    print(
        "Still leaking with the blocker enabled:",
        ", ".join(sorted(t.label for t in summary["residual_types"])),
    )
    if "gigya.com" in summary["residual_third_parties"]:
        print(
            "\nNote the survivor: gigya.com — a credential manager, not an\n"
            "advertiser, so no filter list stops the password from leaving."
        )


if __name__ == "__main__":
    main()
